//! Quickstart: mine maximal quasi-cliques from an edge list with `Session`.
//!
//! ```text
//! cargo run --release -p qcm --example quickstart [path/to/edge_list.txt] [gamma] [min_size]
//! ```
//!
//! Without arguments the example builds the paper's Figure 4 graph, mines it
//! with γ = 0.6 and τ_size = 5, and prints the single maximal quasi-clique
//! {a, b, c, d, e} — then repeats the run on the parallel backend to show that
//! both paths return the same answer through one unified API.

use qcm::prelude::*;
use qcm_sync::Arc;

fn figure4() -> Graph {
    Graph::from_edges(
        9,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ],
    )
    .expect("static edge list is valid")
}

fn main() -> Result<(), QcmError> {
    let args: Vec<String> = std::env::args().collect();
    let (graph, gamma, min_size) = if args.len() >= 2 {
        let graph = qcm::graph::io::read_edge_list_file(&args[1])?;
        let gamma: f64 = args
            .get(2)
            .map(|s| s.parse().expect("gamma"))
            .unwrap_or(0.9);
        let min_size: usize = args
            .get(3)
            .map(|s| s.parse().expect("min_size"))
            .unwrap_or(10);
        (graph, gamma, min_size)
    } else {
        (figure4(), 0.6, 5)
    };

    println!(
        "Mining maximal {gamma}-quasi-cliques with at least {min_size} vertices from a graph \
         with {} vertices and {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let graph = Arc::new(graph);

    // Serial reference run (Algorithm 2 of the paper). Invalid configurations
    // fail here, at build(), with a typed QcmError.
    let serial = Session::builder()
        .gamma(gamma)
        .min_size(min_size)
        .backend(Backend::Serial)
        .build()?
        .run(&graph)?;
    let stats = serial.serial_stats().expect("serial backend");
    println!(
        "serial:   {} maximal quasi-cliques in {:?} ({} set-enumeration nodes expanded)",
        serial.maximal.len(),
        serial.elapsed,
        stats.nodes_expanded,
    );

    // Parallel run on the reforged task engine — same Session API.
    let parallel = Session::builder()
        .gamma(gamma)
        .min_size(min_size)
        .backend(Backend::parallel(4, 1))
        .build()?
        .run(&graph)?;
    let metrics = parallel.engine_metrics().expect("parallel backend");
    println!(
        "parallel: {} maximal quasi-cliques in {:?} ({} tasks spawned, {} decomposed)",
        parallel.maximal.len(),
        parallel.elapsed,
        metrics.tasks_spawned,
        metrics.tasks_decomposed
    );
    assert_eq!(serial.maximal, parallel.maximal);
    assert!(serial.is_complete() && parallel.is_complete());

    println!("\nResults:");
    for (i, members) in parallel.maximal.iter().enumerate() {
        let ids: Vec<String> = members.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{:<3} |S| = {:<3} S = {{{}}}",
            i + 1,
            members.len(),
            ids.join(", ")
        );
        if i >= 19 {
            println!("  … ({} more)", parallel.maximal.len() - 20);
            break;
        }
    }
    Ok(())
}
