//! Sweeping the task-decomposition hyperparameters (τ_time, τ_split).
//!
//! Tables 3 and 4 of the paper study how the timeout τ_time and the big-task
//! threshold τ_split affect running time and the number of (pre-postprocessing)
//! reported results. This example runs a small version of that grid on one
//! dataset stand-in — one `Session` per cell — and prints the same two
//! matrices, so users can calibrate the hyperparameters for their own graphs.
//!
//! ```text
//! cargo run --release -p qcm --example hyperparameter_sweep [dataset]
//! ```
//!
//! `dataset` is one of the Table 1 names (default: `CX_GSE10158`).

use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

fn main() -> Result<(), QcmError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "CX_GSE10158".to_string());
    let spec = qcm::gen::datasets::all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name}, using CX_GSE10158");
            qcm::gen::datasets::cx_gse10158()
        });
    let dataset = spec.generate();
    let graph = Arc::new(dataset.graph.clone());
    println!(
        "dataset {}: {} vertices, {} edges — γ = {}, τ_size = {}\n",
        spec.name,
        graph.num_vertices(),
        graph.num_edges(),
        spec.gamma,
        spec.min_size
    );

    let tau_times_ms: Vec<u64> = vec![50, 10, 5, 1, 0];
    let tau_splits: Vec<usize> = vec![1000, 500, 200, 100, 50];

    let mut time_rows = Vec::new();
    let mut result_rows = Vec::new();
    for &tau_time in &tau_times_ms {
        let mut time_row = Vec::new();
        let mut result_row = Vec::new();
        for &tau_split in &tau_splits {
            let report = Session::builder()
                .gamma(spec.gamma)
                .min_size(spec.min_size)
                .backend(Backend::parallel(8, 1))
                .tau_split(tau_split)
                .tau_time(Duration::from_millis(tau_time))
                .build()?
                .run(&graph)?;
            time_row.push(report.elapsed.as_secs_f64());
            result_row.push(report.raw_reported);
        }
        time_rows.push(time_row);
        result_rows.push(result_row);
    }

    let header: Vec<String> = tau_splits.iter().map(|s| format!("{s:>9}")).collect();
    println!("(a) running time (seconds), rows = τ_time, columns = τ_split");
    println!("  τ_time\\τ_split {}", header.join(" "));
    for (i, row) in time_rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|t| format!("{t:>9.3}")).collect();
        println!("  {:>11} ms {}", tau_times_ms[i], cells.join(" "));
    }

    println!("\n(b) number of reported quasi-cliques before post-processing");
    println!("  τ_time\\τ_split {}", header.join(" "));
    for (i, row) in result_rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|c| format!("{c:>9}")).collect();
        println!("  {:>11} ms {}", tau_times_ms[i], cells.join(" "));
    }

    println!(
        "\nReading the grid: smaller τ_time decomposes more tasks, which raises concurrency on \
         expensive datasets but also increases the number of non-maximal reports (the extra \
         G(S') checks of Algorithm 10); τ_split mainly controls how many tasks are classified \
         as big. This mirrors Tables 3–4 of the paper."
    );
    Ok(())
}
