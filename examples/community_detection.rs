//! Community detection in a synthetic social network.
//!
//! The paper motivates quasi-clique mining with dense-community detection in
//! online interaction networks (cybercriminal rings, botnets, spam sources).
//! This example generates a power-law "social network" with planted
//! communities of different densities, mines it at two γ levels through one
//! reusable `Session` builder, and shows how the threshold trades recall for
//! strictness — the reason the paper's experiments pick γ per dataset.
//!
//! ```text
//! cargo run --release -p qcm --example community_detection
//! ```

use qcm::prelude::*;
use qcm_sync::Arc;

fn main() -> Result<(), QcmError> {
    // A 5,000-vertex power-law background with six planted communities:
    // three tight ones (95% internal density) and three looser ones (80%).
    let spec = PlantedGraphSpec {
        num_vertices: 5_000,
        background_avg_degree: 6.0,
        background_beta: 2.4,
        background_max_degree: 150.0,
        community_sizes: vec![14, 12, 11, 13, 12, 11],
        community_density: 0.95,
        seed: 2020,
    };
    let (graph, tight_communities) = qcm::gen::plant_quasi_cliques(&spec);
    let (graph, loose_communities) = qcm::gen::plant_into(&graph, &[13, 12, 11], 0.8, 4242);
    let graph = Arc::new(graph);
    let stats = GraphStats::compute(&graph);
    println!(
        "social network: {} vertices, {} edges, max degree {}, degeneracy {}",
        stats.num_vertices, stats.num_edges, stats.max_degree, stats.degeneracy
    );
    println!(
        "planted: {} tight (0.95-dense) and {} loose (0.80-dense) communities\n",
        tight_communities.len(),
        loose_communities.len()
    );

    for gamma in [0.9, 0.75] {
        let report = Session::builder()
            .gamma(gamma)
            .min_size(10)
            .backend(Backend::parallel(8, 1))
            .build()?
            .run(&graph)?;
        let tight_found = tight_communities
            .iter()
            .filter(|c| report.maximal.contains_superset_of(&c.members))
            .count();
        let loose_found = loose_communities
            .iter()
            .filter(|c| report.maximal.contains_superset_of(&c.members))
            .count();
        println!(
            "γ = {gamma:<4}: {:>4} maximal quasi-cliques in {:>9.3?} — recovered {tight_found}/{} \
             tight and {loose_found}/{} loose communities",
            report.maximal.len(),
            report.elapsed,
            tight_communities.len(),
            loose_communities.len()
        );
        let mut sizes: Vec<usize> = report.maximal.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let preview: Vec<String> = sizes.iter().take(10).map(|s| s.to_string()).collect();
        println!("          largest result sizes: {}", preview.join(", "));
    }

    println!(
        "\nA stricter γ only accepts the tightest communities; lowering it recovers the looser \
         ones at the cost of more (and less significant) results — matching the paper's guidance \
         on choosing selective parameters."
    );
    Ok(())
}
