//! Scaling quasi-clique mining on the simulated cluster.
//!
//! Reproduces the spirit of Table 5 of the paper interactively: the same
//! workload is mined with increasing thread counts (vertical scalability) and
//! machine counts (horizontal scalability) through one `Session` per shape,
//! printing the speedups plus the engine-level metrics that explain them
//! (task counts, decompositions, stealing, spilling).
//!
//! ```text
//! cargo run --release -p qcm --example parallel_cluster
//! ```

use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

fn main() -> Result<(), QcmError> {
    // The Enron stand-in: a mid-sized graph with a dense hard core that keeps
    // the cluster busy (see qcm-gen's dataset documentation).
    let spec = qcm::gen::datasets::enron();
    let dataset = spec.generate();
    let graph = Arc::new(dataset.graph.clone());
    println!(
        "dataset {}: {} vertices, {} edges — γ = {}, τ_size = {}, τ_split = {}, τ_time = {} ms\n",
        spec.name,
        graph.num_vertices(),
        graph.num_edges(),
        spec.gamma,
        spec.min_size,
        spec.tau_split,
        spec.tau_time_ms
    );

    let run = |machines: usize, threads: usize| -> Result<MiningReport, QcmError> {
        Session::builder()
            .gamma(spec.gamma)
            .min_size(spec.min_size)
            .backend(Backend::parallel(threads, machines))
            .tau_split(spec.tau_split)
            .tau_time(Duration::from_millis(spec.tau_time_ms))
            .balance_period(Duration::from_millis(5))
            .build()?
            .run(&graph)
    };

    println!("vertical scalability (1 machine, varying threads):");
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let out = run(1, threads)?;
        let metrics = out.engine_metrics().expect("parallel backend");
        let secs = out.elapsed.as_secs_f64();
        let speedup = baseline.get_or_insert(secs);
        println!(
            "  {threads:>2} threads: {secs:>8.3} s  (speedup {:>4.2}×)  results={} tasks={} \
             decomposed={}",
            *speedup / secs,
            out.maximal.len(),
            metrics.tasks_processed,
            metrics.tasks_decomposed
        );
    }

    println!("\nhorizontal scalability (2 threads per machine, varying machines):");
    let mut baseline = None;
    for machines in [1usize, 2, 4, 8] {
        let out = run(machines, 2)?;
        let metrics = out.engine_metrics().expect("parallel backend");
        let secs = out.elapsed.as_secs_f64();
        let speedup = baseline.get_or_insert(secs);
        println!(
            "  {machines:>2} machines: {secs:>8.3} s  (speedup {:>4.2}×)  stolen={} remote \
             fetches={} cache hits={}",
            *speedup / secs,
            metrics.stolen_tasks,
            metrics.remote_fetches,
            metrics.cache_hits
        );
    }

    let out = run(2, 4)?;
    let metrics = out.engine_metrics().expect("parallel backend");
    println!(
        "\nworkload profile on 2×4: mining time {:?} vs materialisation {:?} (ratio {:.0}:1), \
         peak task memory {} KiB, spilled {} KiB",
        metrics.total_mining_time,
        metrics.total_materialization_time,
        metrics
            .mining_materialization_ratio()
            .unwrap_or(f64::INFINITY),
        metrics.peak_memory_bytes() / 1024,
        metrics.spill_bytes_written / 1024
    );
    Ok(())
}
