//! Scaling quasi-clique mining on the simulated cluster.
//!
//! Reproduces the spirit of Table 5 of the paper interactively: the same
//! workload is mined with increasing thread counts (vertical scalability) and
//! machine counts (horizontal scalability), printing the speedups plus the
//! engine-level metrics that explain them (task counts, decompositions,
//! stealing, spilling).
//!
//! ```text
//! cargo run --release -p qcm --example parallel_cluster
//! ```

use qcm::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The Enron stand-in: a mid-sized graph with a dense hard core that keeps
    // the cluster busy (see qcm-gen's dataset documentation).
    let spec = qcm::gen::datasets::enron();
    let dataset = spec.generate();
    let graph = Arc::new(dataset.graph.clone());
    let params = MiningParams::new(spec.gamma, spec.min_size);
    println!(
        "dataset {}: {} vertices, {} edges — γ = {}, τ_size = {}, τ_split = {}, τ_time = {} ms\n",
        spec.name,
        graph.num_vertices(),
        graph.num_edges(),
        spec.gamma,
        spec.min_size,
        spec.tau_split,
        spec.tau_time_ms
    );

    let run = |machines: usize, threads: usize| -> ParallelMiningOutput {
        let mut config = EngineConfig::cluster(machines, threads)
            .with_decomposition(spec.tau_split, Duration::from_millis(spec.tau_time_ms));
        config.balance_period = Duration::from_millis(5);
        ParallelMiner::new(params, config).mine(graph.clone())
    };

    println!("vertical scalability (1 machine, varying threads):");
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let out = run(1, threads);
        let secs = out.elapsed().as_secs_f64();
        let speedup = baseline.get_or_insert(secs);
        println!(
            "  {threads:>2} threads: {secs:>8.3} s  (speedup {:>4.2}×)  results={} tasks={} \
             decomposed={}",
            *speedup / secs,
            out.maximal.len(),
            out.metrics.tasks_processed,
            out.metrics.tasks_decomposed
        );
    }

    println!("\nhorizontal scalability (2 threads per machine, varying machines):");
    let mut baseline = None;
    for machines in [1usize, 2, 4, 8] {
        let out = run(machines, 2);
        let secs = out.elapsed().as_secs_f64();
        let speedup = baseline.get_or_insert(secs);
        println!(
            "  {machines:>2} machines: {secs:>8.3} s  (speedup {:>4.2}×)  stolen={} remote \
             fetches={} cache hits={}",
            *speedup / secs,
            out.metrics.stolen_tasks,
            out.metrics.remote_fetches,
            out.metrics.cache_hits
        );
    }

    let out = run(2, 4);
    println!(
        "\nworkload profile on 2×4: mining time {:?} vs materialisation {:?} (ratio {:.0}:1), \
         peak task memory {} KiB, spilled {} KiB",
        out.metrics.total_mining_time,
        out.metrics.total_materialization_time,
        out.metrics
            .mining_materialization_ratio()
            .unwrap_or(f64::INFINITY),
        out.metrics.peak_memory_bytes() / 1024,
        out.metrics.spill_bytes_written / 1024
    );
}
