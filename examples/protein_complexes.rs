//! Protein-complex-style mining on a small interaction network.
//!
//! Quick [27] was evaluated on protein–protein interaction networks (a yeast
//! network with ~5k proteins); quasi-cliques there correspond to protein
//! complexes or functional modules. This example builds a synthetic
//! interaction network of that scale, compares the paper's fixed algorithm
//! (driven through `Session`) against the Quick-style baseline (no k-core
//! preprocessing, missed-result omissions), and prints the workload
//! difference that the k-core shrink of Theorem 2 buys — the paper's topic
//! (T1). It also demonstrates streaming delivery through a `ResultSink`.
//!
//! ```text
//! cargo run --release -p qcm --example protein_complexes
//! ```

use qcm::prelude::*;
use qcm_sync::Arc;

fn main() -> Result<(), QcmError> {
    // ~5k proteins, sparse power-law interactions, plus a handful of planted
    // "complexes" of 8–12 proteins with high internal connectivity.
    let spec = PlantedGraphSpec {
        num_vertices: 4_900,
        background_avg_degree: 7.0,
        background_beta: 2.6,
        background_max_degree: 120.0,
        community_sizes: vec![12, 11, 10, 9, 8, 8],
        community_density: 0.9,
        seed: 17_201,
    };
    let (graph, complexes) = qcm::gen::plant_quasi_cliques(&spec);
    println!(
        "interaction network: {} proteins, {} interactions, {} planted complexes",
        graph.num_vertices(),
        graph.num_edges(),
        complexes.len()
    );

    let params = MiningParams::new(0.85, 8);
    println!(
        "mining maximal {}-quasi-cliques with ≥ {} proteins (k-core threshold k = {})\n",
        params.gamma,
        params.min_size,
        params.kcore_threshold()
    );
    let shared = Arc::new(graph.clone());

    // The paper's algorithm (all pruning rules + k-core preprocessing),
    // streaming each complex into a sink as it is proven maximal.
    let session = Session::builder().params(params).build()?;
    let mut sink = CollectingSink::default();
    let fixed = session.run_streaming(&shared, &mut sink)?;
    let fixed_stats = *fixed.serial_stats().expect("serial backend");
    println!(
        "paper's algorithm : {:>4} complexes in {:>9.3?} — {} raw candidates streamed, \
         {} search nodes expanded",
        sink.maximal.len(),
        fixed.elapsed,
        sink.candidates,
        fixed_stats.nodes_expanded
    );

    // Quick-style baseline: no k-core preprocessing, original result-missing
    // behaviour (kept as a library baseline, not a Session backend).
    let quick = quick_mine(&graph, params);
    println!(
        "Quick baseline    : {:>4} complexes in {:>9.3?} — no k-core shrink ({} vertices kept), \
         {} search nodes expanded",
        quick.maximal.len(),
        quick.elapsed,
        quick.kcore_vertices,
        quick.stats.nodes_expanded
    );

    let recovered = complexes
        .iter()
        .filter(|c| fixed.maximal.contains_superset_of(&c.members))
        .count();
    println!(
        "\nplanted complexes recovered by the paper's algorithm: {recovered}/{}",
        complexes.len()
    );
    let missed_by_quick: usize = fixed
        .maximal
        .iter()
        .filter(|s| !quick.maximal.contains(s))
        .count();
    println!(
        "maximal results reported by the fixed algorithm but absent from the Quick baseline: \
         {missed_by_quick}"
    );
    println!(
        "search-space ratio (Quick nodes / fixed nodes): {:.2}×",
        quick.stats.nodes_expanded as f64 / fixed_stats.nodes_expanded.max(1) as f64
    );
    Ok(())
}
