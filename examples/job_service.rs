//! Serving mining queries as jobs: a mixed hot/cold workload across tenants.
//!
//! A `MiningService` runs a worker pool over the `Session` front door and
//! memoises completed answers in a result cache, so repeated ("hot") queries
//! are served in microseconds while distinct ("cold") queries are mined,
//! scheduled fairly across tenants with priorities, deadlines and admission
//! control. Run with:
//!
//! ```text
//! cargo run --release -p qcm-service --example job_service
//! ```

use qcm_service::{
    JobId, JobRequest, JobResult, MiningService, Priority, ServiceConfig, ServiceError,
};
use qcm_sync::Arc;
use std::time::Duration;

/// Long-polls until the job goes terminal (the deadline-free blocking
/// `fetch` is deprecated; real clients poll with a bounded wait).
fn await_job(service: &MiningService, job: JobId) -> Result<JobResult, ServiceError> {
    loop {
        if let Some(result) = service.poll_fetch(job, Duration::from_secs(30))? {
            return Ok(result);
        }
    }
}

fn main() -> Result<(), ServiceError> {
    // Two graphs stand in for two customer datasets.
    let social = qcm::gen::datasets::tiny_test_dataset(21);
    let protein = qcm::gen::datasets::tiny_test_dataset(87);
    let social_graph = Arc::new(social.graph.clone());
    let protein_graph = Arc::new(protein.graph.clone());

    let service = MiningService::start(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    println!("service up: 4 workers, default admission limits\n");

    // A mixed workload: tenant "social-app" asks the same two queries over
    // and over (a dashboard refreshing — each refresh waits for the previous
    // one, so rounds after the first are served hot), tenant "bio-lab"
    // explores with distinct parameters (all cold), and one exploratory
    // query gets a tight deadline.
    let mut jobs = Vec::new();
    let dashboard = [(social.spec.gamma, social.spec.min_size), (0.75, 5)];
    for round in 0..3 {
        let refresh: Vec<_> = dashboard
            .iter()
            .map(|&(gamma, min_size)| {
                service.submit(
                    JobRequest::new(social_graph.clone(), gamma, min_size)
                        .tenant("social-app")
                        .priority(Priority::High),
                )
            })
            .collect::<Result<_, _>>()?;
        // The dashboard renders before refreshing again.
        for &job in &refresh {
            await_job(&service, job)?;
            jobs.push(("social-app", round, job));
        }
    }
    for (round, min_size) in [(0usize, 4), (1, 5), (2, 6)] {
        let job = service.submit(
            JobRequest::new(protein_graph.clone(), protein.spec.gamma, min_size).tenant("bio-lab"),
        )?;
        jobs.push(("bio-lab", round, job));
    }
    let budgeted = service.submit(
        JobRequest::new(protein_graph.clone(), 0.6, 4)
            .tenant("bio-lab")
            .priority(Priority::Low)
            .deadline(Duration::from_millis(100)),
    )?;
    jobs.push(("bio-lab", 3, budgeted));

    for (tenant, round, job) in jobs {
        let result = await_job(&service, job)?;
        println!(
            "job {job:>2} [{tenant:<10} round {round}] {} — {} maximal sets, mined in {:?}{}",
            if result.cache_hit { "HOT " } else { "cold" },
            result.maximal().len(),
            result.answer.mining_time,
            if result.is_complete() {
                String::new()
            } else {
                format!(" (partial: {:?})", result.outcome())
            },
        );
    }

    let metrics = service.metrics();
    println!("\n--- service metrics ---");
    println!("submitted    : {}", metrics.submitted);
    println!("jobs mined   : {}", metrics.jobs_mined);
    println!(
        "cache        : {} hits / {} misses (hit rate {:.0}%)",
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.cache_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "job latency  : p50 {:?}, p99 {:?}",
        metrics.p50_latency, metrics.p99_latency
    );
    assert!(
        metrics.cache_hits >= 3,
        "the repeated dashboard queries must hit the cache"
    );
    service.shutdown();
    println!("\nservice drained and shut down cleanly");
    Ok(())
}
