//! Workspace-level tests of the unified `qcm::Session` front door: builder
//! validation, serial-vs-parallel equivalence on the planted datasets,
//! deadline/cancellation semantics (typed partial reports, never panics or
//! blocks), streaming delivery, and the deprecated shims' delegation.

use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

fn planted() -> (Arc<Graph>, SessionBuilder) {
    let spec = PlantedGraphSpec {
        num_vertices: 400,
        background_avg_degree: 5.0,
        background_beta: 2.5,
        background_max_degree: 40.0,
        community_sizes: vec![10, 9, 8],
        community_density: 0.95,
        seed: 99,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), Session::builder().gamma(0.8).min_size(8))
}

#[test]
fn builder_validation_returns_typed_errors() {
    // γ out of range (both sides, plus non-finite values).
    for gamma in [0.0, -1.0, 1.0001, f64::NAN, f64::NEG_INFINITY] {
        let err = Session::builder().gamma(gamma).build().unwrap_err();
        let QcmError::InvalidConfig(msg) = err else {
            panic!("gamma {gamma}: expected InvalidConfig");
        };
        assert!(msg.contains("gamma"), "{msg}");
    }
    // Degenerate min_size.
    for min_size in [0, 1] {
        let err = Session::builder().min_size(min_size).build().unwrap_err();
        let QcmError::InvalidConfig(msg) = err else {
            panic!("min_size {min_size}: expected InvalidConfig");
        };
        assert!(msg.contains("min_size"), "{msg}");
    }
    // Zero threads / zero machines on the parallel backend.
    let err = Session::builder()
        .backend(Backend::parallel(0, 2))
        .build()
        .unwrap_err();
    assert!(matches!(err, QcmError::InvalidConfig(_)));
    let err = Session::builder()
        .backend(Backend::parallel(2, 0))
        .build()
        .unwrap_err();
    assert!(matches!(err, QcmError::InvalidConfig(_)));
    // The boundary values are accepted.
    assert!(Session::builder()
        .gamma(1.0)
        .min_size(2)
        .backend(Backend::parallel(1, 1))
        .build()
        .is_ok());
}

#[test]
fn serial_and_parallel_backends_are_equivalent_on_planted_data() {
    let (graph, base) = planted();
    let serial = base
        .clone()
        .backend(Backend::Serial)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    assert!(!serial.maximal.is_empty(), "planted communities expected");
    assert!(serial.is_complete());
    for (threads, machines) in [(1, 1), (4, 1), (2, 3)] {
        let parallel = base
            .clone()
            .backend(Backend::parallel(threads, machines))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(
            parallel.maximal, serial.maximal,
            "mismatch at {threads} threads × {machines} machines"
        );
        assert!(parallel.is_complete());
    }
}

#[test]
fn deadline_hit_returns_typed_partial_report() {
    let (graph, base) = planted();
    let complete = base.clone().build().unwrap().run(&graph).unwrap();
    for backend in [Backend::Serial, Backend::parallel(2, 1)] {
        let report = base
            .clone()
            .backend(backend.clone())
            .deadline(Duration::ZERO)
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(report.outcome, RunOutcome::DeadlineExceeded, "{backend:?}");
        assert!(!report.is_complete());
        // With a zero deadline the run deterministically explores nothing, so
        // the partial set is empty (and trivially a subset of the complete
        // one). Note that in general an interrupted run may report sets that
        // a complete run would have replaced with supersets.
        for members in report.maximal.iter() {
            assert!(complete.maximal.contains(members), "{backend:?}");
        }
        // into_result converts the label into the typed error.
        assert!(matches!(
            report.into_result().unwrap_err(),
            QcmError::DeadlineExceeded
        ));
    }
}

#[test]
fn cancel_token_stops_runs_with_cancelled_outcome() {
    let (graph, base) = planted();
    let session = base.build().unwrap();
    let token = session.cancel_token();
    token.cancel();
    let report = session.run(&graph).unwrap();
    assert_eq!(report.outcome, RunOutcome::Cancelled);
    assert!(matches!(
        report.into_result().unwrap_err(),
        QcmError::Cancelled
    ));
}

#[test]
fn external_cancel_token_is_shared_across_sessions() {
    let (graph, base) = planted();
    let shared_token = CancelToken::new();
    let a = base
        .clone()
        .cancel_token(shared_token.clone())
        .build()
        .unwrap();
    let b = base.cancel_token(shared_token.clone()).build().unwrap();
    shared_token.cancel();
    assert_eq!(a.run(&graph).unwrap().outcome, RunOutcome::Cancelled);
    assert_eq!(b.run(&graph).unwrap().outcome, RunOutcome::Cancelled);
}

#[test]
fn generous_deadline_completes_normally() {
    let (graph, base) = planted();
    let report = base
        .deadline(Duration::from_secs(3600))
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    assert_eq!(report.outcome, RunOutcome::Complete);
    assert!(report.into_result().is_ok());
}

#[test]
fn streaming_run_matches_plain_run_and_orders_maximal_results() {
    let (graph, base) = planted();
    let session = base.build().unwrap();
    let plain = session.run(&graph).unwrap();
    let mut sink = CollectingSink::default();
    let streamed = session.run_streaming(&graph, &mut sink).unwrap();
    assert_eq!(plain.maximal, streamed.maximal);
    assert_eq!(sink.candidates, streamed.raw_reported);
    // on_maximal fires once per final result, in canonical order.
    let from_sink: QuasiCliqueSet = sink.maximal.iter().cloned().collect();
    assert_eq!(from_sink, streamed.maximal);
    let mut sorted = sink.maximal.clone();
    sorted.sort();
    assert_eq!(sorted, sink.maximal, "maximal stream must be ordered");
}

#[test]
#[allow(deprecated)]
fn deprecated_entry_points_match_session() {
    let (graph, base) = planted();
    let params = MiningParams::new(0.8, 8);
    let session = base.build().unwrap().run(&graph).unwrap();
    let old_serial = mine_serial(&graph, params);
    let old_parallel = mine_parallel(&graph, params, 4);
    assert_eq!(old_serial.maximal, session.maximal);
    assert_eq!(old_parallel.maximal, session.maximal);
}

#[test]
fn transport_selection_requires_the_parallel_backend() {
    let err = Session::builder()
        .gamma(0.8)
        .min_size(8)
        .transport(TransportKind::InProcStrict)
        .build()
        .unwrap_err();
    let QcmError::InvalidConfig(msg) = err else {
        panic!("expected InvalidConfig for transport on the serial backend");
    };
    assert!(msg.contains("transport"), "{msg}");
}

#[test]
fn strict_transport_agrees_with_default_in_proc() {
    let (graph, base) = planted();
    let default_run = base
        .clone()
        .backend(Backend::parallel(2, 2))
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let strict_run = base
        .backend(Backend::parallel(2, 2))
        .transport(TransportKind::InProcStrict)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    assert_eq!(default_run.maximal, strict_run.maximal);
    assert!(strict_run.is_complete());
}

#[test]
fn sim_transport_matches_serial_and_replays_deterministically() {
    let (graph, base) = planted();
    let serial = base.clone().build().unwrap().run(&graph).unwrap();
    let session = base
        .backend(Backend::parallel(1, 3))
        .transport(TransportKind::Sim(SimConfig::new(7)))
        .build()
        .unwrap();
    let first = session.run(&graph).unwrap();
    assert_eq!(first.outcome, RunOutcome::Complete);
    assert_eq!(first.maximal, serial.maximal);
    // Virtual time is reported through the engine metrics.
    let metrics = first.engine_metrics().expect("parallel stats");
    assert!(metrics.virtual_time.is_some());
    // A second run of the same session replays the identical result.
    let again = session.run(&graph).unwrap();
    assert_eq!(again.maximal, first.maximal);
}
