//! Stress/fault-injection tests of the engine running the real quasi-clique
//! application: pathological queue capacities (forcing constant spilling),
//! a one-entry vertex cache, skewed partitioning with many machines, and
//! spill directories on disk. In every scenario the result set must match the
//! serial reference and no spill file may be left behind.

use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

fn test_graph() -> (Arc<Graph>, MiningParams) {
    let spec = PlantedGraphSpec {
        num_vertices: 250,
        background_avg_degree: 5.0,
        background_beta: 2.4,
        background_max_degree: 50.0,
        community_sizes: vec![9, 8, 8],
        community_density: 0.95,
        seed: 77,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), MiningParams::new(0.8, 7))
}

#[test]
fn tiny_queues_with_disk_spill_produce_correct_results() {
    let (graph, params) = test_graph();
    let reference = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();

    let spill_dir = std::env::temp_dir().join(format!("qcm_fault_spill_{}", std::process::id()));
    let mut config = EngineConfig::single_machine(4);
    config.batch_size = 2;
    config.local_capacity = 2;
    config.global_queue_capacity = 2;
    config.tau_split = 1; // every task is "big" → hammer the global queue
    config.tau_time = Duration::ZERO; // maximal decomposition
    config.spill_dir = Some(spill_dir.clone());

    let out = ParallelMiner::new(params, config).mine(graph.clone());
    assert_eq!(out.maximal, reference.maximal);
    assert!(
        out.metrics.spill_bytes_written > 0,
        "2-slot queues with full decomposition must spill"
    );
    assert_eq!(
        out.metrics.spill_bytes_written,
        out.metrics.spill_bytes_read
    );
    let leftover = std::fs::read_dir(&spill_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leftover, 0, "spill files must be consumed and removed");
    let _ = std::fs::remove_dir_all(&spill_dir);
}

#[test]
fn one_entry_vertex_cache_is_only_a_performance_problem() {
    let (graph, params) = test_graph();
    let reference = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let mut config = EngineConfig::cluster(4, 2);
    config.vertex_cache_capacity = 1;
    config.balance_period = Duration::from_millis(1);
    let out = ParallelMiner::new(params, config).mine(graph.clone());
    assert_eq!(out.maximal, reference.maximal);
    assert!(out.metrics.remote_fetches > 0);
}

#[test]
fn more_machines_than_meaningful_work_still_terminates() {
    let (graph, params) = test_graph();
    let reference = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let mut config = EngineConfig::cluster(8, 1);
    config.balance_period = Duration::from_millis(1);
    let out = ParallelMiner::new(params, config).mine(graph.clone());
    assert_eq!(out.maximal, reference.maximal);
}

#[test]
fn stealing_moves_big_tasks_under_skew() {
    // All interesting vertices hash to a few machines when the graph is small
    // and the cluster is wide; with an aggressive balance period the master
    // should move at least some big tasks (or there must have been nothing to
    // move because queues drained instantly — accept either, but the run must
    // stay correct).
    let (graph, params) = test_graph();
    let reference = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let mut config = EngineConfig::cluster(4, 1);
    config.tau_split = 1;
    config.tau_time = Duration::ZERO;
    config.balance_period = Duration::from_micros(200);
    let out = ParallelMiner::new(params, config).mine(graph.clone());
    assert_eq!(out.maximal, reference.maximal);
    // The metric is recorded; whether stealing triggered depends on timing,
    // so only sanity-check that the counter is readable and not absurd.
    assert!(out.metrics.stolen_tasks < 1_000_000);
}

#[test]
fn empty_and_trivial_graphs_are_handled() {
    let params = MiningParams::new(0.9, 3);
    let empty = Arc::new(Graph::empty(0));
    let parallel_session = |graph: &Arc<Graph>| {
        Session::builder()
            .params(params)
            .backend(Backend::parallel(2, 1))
            .build()
            .unwrap()
            .run(graph)
            .unwrap()
    };
    let out = parallel_session(&empty);
    assert!(out.maximal.is_empty());

    let no_edges = Arc::new(Graph::empty(50));
    let out = parallel_session(&no_edges);
    assert!(out.maximal.is_empty());

    let triangle = Arc::new(Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap());
    let out = parallel_session(&triangle);
    assert_eq!(out.maximal.len(), 1);
}

#[test]
fn dropped_pulls_are_retried_until_the_results_are_correct() {
    // The strict transport serialises every message AND loses the first few
    // pull attempts; the vertex table must retry through the timeout path
    // (visible in the metrics) and still produce the serial answer.
    let (graph, params) = test_graph();
    let reference = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let mut config = EngineConfig::cluster(4, 1)
        .with_transport(qcm::engine::TransportFactory::strict().with_pull_drops(3));
    config.pull_timeout = Duration::from_millis(20);
    config.pull_retries = 6;
    let out = ParallelMiner::new(params, config).mine(graph.clone());
    assert_eq!(out.maximal, reference.maximal);
    assert!(
        out.metrics.pull_retries >= 3,
        "three dropped pulls must surface as retries, saw {}",
        out.metrics.pull_retries
    );
    assert_eq!(out.metrics.pull_failures, 0, "retries must eventually win");
}
