//! The fault-scenario suite: mid-mine crash, slow straggler and partitioned
//! steal victim, driven through the deterministic discrete-event simulator
//! (`TransportKind::Sim`) on a 4-machine cluster.
//!
//! Every scenario is run from fixed seeds and asserts
//!
//! * **result equivalence** with the serial miner wherever the scenario
//!   permits completion,
//! * **seeded replay** — the same seed and scenario reproduce a
//!   byte-identical event log (compared via its FNV-1a hash *and* the full
//!   log lines),
//! * **termination** — a proptest over random drop/latency schedules shows
//!   the pull protocol never deadlocks: each run ends with a labelled
//!   outcome before the virtual-time horizon.
//!
//! Event logs are written to `$CARGO_TARGET_TMPDIR/fault-logs/` so CI can
//! upload them as artifacts when a scenario fails. The `fault-matrix` CI job
//! pins one cell per invocation through two env vars:
//!
//! * `QCM_FAULT_SCENARIO` — `crash`, `straggler` or `partition`; empty/unset
//!   runs all three.
//! * `QCM_FAULT_SEED` — one of the fixed seeds; empty/unset runs all.

use proptest::prelude::*;
use qcm::core::{MiningParams, SerialMiner};
use qcm::engine::EngineConfig;
use qcm::graph::Graph;
use qcm::parallel::{SimMiner, SimMiningOutput};
use qcm::{RunOutcome, SimConfig};
use qcm_sync::Arc;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

const SEEDS: [u64; 3] = [11, 42, 1337];
const MACHINES: usize = 4;

/// A planted graph big enough that all four machines own work and the
/// mid-mine fault injections land while tasks are still in flight.
fn planted() -> (Arc<Graph>, MiningParams) {
    let spec = qcm::gen::PlantedGraphSpec {
        num_vertices: 400,
        background_avg_degree: 5.0,
        background_beta: 2.5,
        background_max_degree: 40.0,
        community_sizes: vec![10, 9, 8],
        community_density: 0.95,
        seed: 99,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), MiningParams::new(0.8, 8))
}

fn scenario(name: &str, seed: u64) -> SimConfig {
    match name {
        // Machine 1 dies mid-mine and comes back later.
        "crash" => SimConfig::crash_scenario(seed, 1, 3_000, Some(30_000)),
        // Machine 2 runs 8x slower from early on — the balancer must route
        // around it without losing results.
        "straggler" => SimConfig::straggler_scenario(seed, 2, 1_000, 8),
        // The link between machine 0 and steal victim 2 is severed, then
        // heals; in-flight grants must survive via retransmission.
        "partition" => SimConfig::partition_scenario(seed, 0, 2, 2_000, Some(25_000)),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// True when the (scenario, seed) cell is selected by the CI env vars (or no
/// filter is set).
fn selected(name: &str, seed: u64) -> bool {
    let scenario_ok = match std::env::var("QCM_FAULT_SCENARIO") {
        Ok(s) if !s.is_empty() => s == name,
        _ => true,
    };
    let seed_ok = match std::env::var("QCM_FAULT_SEED") {
        Ok(s) if !s.is_empty() => s.parse::<u64>() == Ok(seed),
        _ => true,
    };
    scenario_ok && seed_ok
}

fn run_sim(graph: &Arc<Graph>, params: MiningParams, sim: SimConfig) -> SimMiningOutput {
    let config =
        EngineConfig::cluster(MACHINES, 1).with_decomposition(30, Duration::from_millis(50));
    SimMiner::new(params, config, sim).mine(graph.clone())
}

/// Writes the run's event log under `$CARGO_TARGET_TMPDIR/fault-logs/` so a
/// failing CI cell can upload it for offline replay analysis.
fn dump_log(name: &str, seed: u64, out: &SimMiningOutput) {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fault-logs");
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let header = format!(
        "# scenario={name} seed={seed} outcome={:?} hash={:016x} virtual={}us\n",
        out.outcome,
        out.log_hash,
        out.virtual_time.as_micros()
    );
    let body = out.event_log.join("\n");
    let _ = fs::write(
        dir.join(format!("{name}-seed{seed}.log")),
        header + &body + "\n",
    );
}

#[test]
fn recoverable_scenarios_match_the_serial_miner() {
    let (graph, params) = planted();
    let serial = SerialMiner::new(params).mine(&graph);
    assert!(!serial.maximal.is_empty(), "planted communities must exist");
    for name in ["crash", "straggler", "partition"] {
        for seed in SEEDS {
            if !selected(name, seed) {
                continue;
            }
            let out = run_sim(&graph, params, scenario(name, seed));
            dump_log(name, seed, &out);
            assert_eq!(
                out.outcome,
                RunOutcome::Complete,
                "{name} seed {seed} must recover to completion"
            );
            assert_eq!(
                out.maximal, serial.maximal,
                "{name} seed {seed}: sim results diverge from serial"
            );
        }
    }
}

#[test]
fn every_scenario_replays_byte_identically_from_its_seed() {
    let (graph, params) = planted();
    for name in ["crash", "straggler", "partition"] {
        for seed in SEEDS {
            if !selected(name, seed) {
                continue;
            }
            let first = run_sim(&graph, params, scenario(name, seed));
            let again = run_sim(&graph, params, scenario(name, seed));
            assert_eq!(
                first.log_hash, again.log_hash,
                "{name} seed {seed}: event-log hash diverged across replays"
            );
            assert_eq!(
                first.event_log, again.event_log,
                "{name} seed {seed}: event logs diverged with equal hashes"
            );
            assert_eq!(first.maximal, again.maximal);
            assert_eq!(first.outcome, again.outcome);
            assert_eq!(first.virtual_time, again.virtual_time);
        }
    }
}

#[test]
fn distinct_seeds_schedule_distinct_histories() {
    let (graph, params) = planted();
    let hashes: Vec<u64> = SEEDS
        .iter()
        .map(|&seed| run_sim(&graph, params, scenario("crash", seed)).log_hash)
        .collect();
    assert_ne!(hashes[0], hashes[1]);
    assert_ne!(hashes[1], hashes[2]);
}

#[test]
fn unrecoverable_crash_reports_labelled_partial_results() {
    let (graph, params) = planted();
    let serial = SerialMiner::new(params).mine(&graph);
    // Machine 1 dies early and never restarts: its vertex partition becomes
    // unreachable, so the run must either finish whatever work survives or
    // label itself faulted — never hang, never report an invalid set.
    let out = run_sim(
        &graph,
        params,
        SimConfig::crash_scenario(42, 1, 2_000, None),
    );
    dump_log("crash-norestart", 42, &out);
    match out.outcome {
        RunOutcome::Complete => assert_eq!(out.maximal, serial.maximal),
        RunOutcome::Faulted => {
            // Partial-result contract: everything reported is a valid
            // quasi-clique the serial miner also proves maximal.
            for members in out.maximal.iter() {
                assert!(
                    serial.maximal.iter().any(|s| s == members),
                    "faulted run reported a set the serial miner never proves: {members:?}"
                );
            }
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// A 9-vertex graph (the paper's Figure 4) — small enough that the proptest
/// sweep over random fault schedules stays fast.
fn figure4() -> Arc<Graph> {
    let edges = [
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 2),
        (1, 4),
        (2, 3),
        (2, 4),
        (3, 4),
        (1, 5),
        (5, 6),
        (2, 6),
        (3, 7),
        (7, 8),
        (3, 8),
    ];
    Arc::new(Graph::from_edges(9, edges.iter().copied()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random drop/latency schedules must never deadlock the pull protocol:
    /// every run terminates (this test returning at all is the witness — a
    /// hung virtual clock would spin the heap until the horizon aborts it)
    /// with a labelled outcome, and a run that does complete agrees with the
    /// serial miner.
    #[test]
    fn random_drop_and_latency_schedules_never_deadlock(
        seed in 0u64..1_000_000,
        drop_millis in 0u32..250,        // 0%..25% message drop
        latency_us in 100u64..2_000,
        jitter_us in 0u64..500,
    ) {
        let graph = figure4();
        let params = MiningParams::new(0.6, 5);
        let sim = SimConfig::new(seed)
            .with_drop_probability(f64::from(drop_millis) / 1_000.0)
            .with_latency(latency_us, jitter_us);
        let out = SimMiner::new(params, EngineConfig::cluster(3, 1), sim).mine(graph.clone());
        prop_assert!(
            matches!(out.outcome, RunOutcome::Complete | RunOutcome::Faulted),
            "unexpected outcome {:?}", out.outcome
        );
        if out.outcome == RunOutcome::Complete {
            let serial = SerialMiner::new(params).mine(&graph);
            prop_assert_eq!(out.maximal, serial.maximal);
        }
    }
}
