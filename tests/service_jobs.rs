//! Integration tests of the `qcm-service` job lifecycle: caching,
//! deadlines, admission control and cancellation (the acceptance criteria of
//! the service subsystem).

use qcm::core::ResultSink;
use qcm::prelude::{Graph, VertexId};
use qcm::RunOutcome;
use qcm_service::{
    AdmissionControl, JobId, JobRequest, JobResult, JobStatus, MiningService, Priority,
    ServiceConfig, ServiceError,
};
use qcm_sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Waits for a terminal result through the non-deprecated long-poll API
/// (every lap also exercises the `Ok(None)`-on-timeout path).
fn fetch(service: &MiningService, job: JobId) -> Result<JobResult, ServiceError> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(result) = service.poll_fetch(job, Duration::from_millis(200))? {
            return Ok(result);
        }
        assert!(Instant::now() < deadline, "job {job} never went terminal");
    }
}

/// A small graph that mines in milliseconds.
fn easy_graph() -> (Arc<Graph>, f64, usize) {
    let dataset = qcm::gen::datasets::tiny_test_dataset(11);
    (
        Arc::new(dataset.graph.clone()),
        dataset.spec.gamma,
        dataset.spec.min_size,
    )
}

/// A dense random graph whose full search space is astronomically large at
/// γ = 0.5, τ_size = 3 — any run over it *must* be stopped by a deadline or a
/// cancellation, which makes interruption behaviour deterministic to test.
fn endless_graph() -> (Arc<Graph>, f64, usize) {
    (Arc::new(qcm::gen::uniform::gnp(120, 0.5, 42)), 0.5, 3)
}

fn single_worker_config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

#[test]
fn identical_submits_mine_once_and_hit_the_cache() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig::default());

    let first = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size).tenant("alpha"))
        .unwrap();
    let cold = fetch(&service, first).unwrap();
    assert!(!cold.cache_hit);
    assert!(cold.is_complete());
    assert!(!cold.maximal().is_empty(), "planted graph has results");

    let second = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size).tenant("beta"))
        .unwrap();
    assert_ne!(first, second, "every submit gets a fresh job id");
    let hot = fetch(&service, second).unwrap();
    assert!(hot.cache_hit, "identical query must be served from cache");
    assert_eq!(hot.maximal(), cold.maximal());
    assert_eq!(hot.answer.mining_time, cold.answer.mining_time);

    let metrics = service.metrics();
    assert_eq!(metrics.cache_hits, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.jobs_mined, 1, "the second submit must not re-mine");
    assert_eq!(metrics.completed, 2);
    assert_eq!(metrics.cache_hit_rate(), Some(0.5));

    // A *different* query over the same graph is a miss, not a hit.
    let third = service
        .submit(JobRequest::new(graph, gamma, min_size + 1))
        .unwrap();
    let other = fetch(&service, third).unwrap();
    assert!(!other.cache_hit);
    assert_eq!(service.metrics().jobs_mined, 2);

    service.shutdown();
}

#[test]
fn deadline_hit_completes_with_partial_result_not_error() {
    let (graph, gamma, min_size) = endless_graph();
    let service = MiningService::start(single_worker_config());
    let job = service
        .submit(JobRequest::new(graph, gamma, min_size).deadline(Duration::from_millis(50)))
        .unwrap();
    let result = fetch(&service, job).expect("a deadline hit is not an error");
    assert_eq!(result.outcome(), RunOutcome::DeadlineExceeded);
    assert!(!result.is_complete());
    assert_eq!(service.status(job).unwrap(), JobStatus::Completed);
    // Partial answers must never be served to later identical queries.
    assert_eq!(service.metrics().cache_entries, 0);
    service.shutdown();
}

#[test]
fn submits_beyond_the_admission_limit_fail_fast() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 1,
        admission: AdmissionControl {
            max_queued: 3,
            max_in_flight: usize::MAX,
            per_tenant_quota: 100,
        },
        start_paused: true, // nothing dispatches: the queue fills deterministically
        ..ServiceConfig::default()
    });
    for _ in 0..3 {
        service
            .submit(JobRequest::new(graph.clone(), gamma, min_size))
            .unwrap();
    }
    let err = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size))
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Overloaded { .. }),
        "expected Overloaded, got {err:?}"
    );
    assert_eq!(service.metrics().rejected, 1);
    assert_eq!(service.metrics().queue_depth, 3);
    drop(service); // abort: queued jobs are discarded
}

#[test]
fn per_tenant_quota_rejects_only_the_greedy_tenant() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 1,
        admission: AdmissionControl {
            max_queued: 100,
            max_in_flight: usize::MAX,
            per_tenant_quota: 2,
        },
        start_paused: true,
        ..ServiceConfig::default()
    });
    for _ in 0..2 {
        service
            .submit(JobRequest::new(graph.clone(), gamma, min_size).tenant("greedy"))
            .unwrap();
    }
    let err = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size).tenant("greedy"))
        .unwrap_err();
    assert!(matches!(err, ServiceError::QuotaExceeded { .. }));
    // Another tenant is unaffected.
    service
        .submit(JobRequest::new(graph, gamma, min_size).tenant("modest"))
        .unwrap();
    drop(service);
}

#[test]
fn cancelling_a_queued_job_prevents_it_from_ever_running() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 1,
        start_paused: true,
        ..ServiceConfig::default()
    });
    let doomed = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size))
        .unwrap();
    let survivor = service
        .submit(JobRequest::new(graph, gamma, min_size + 1))
        .unwrap();
    assert_eq!(service.status(doomed).unwrap(), JobStatus::Queued);
    assert_eq!(service.cancel(doomed).unwrap(), JobStatus::Cancelled);

    service.resume();
    let result = fetch(&service, survivor).unwrap();
    assert!(result.is_complete());
    // The cancelled job never ran: exactly one mining run happened, and
    // fetching the cancelled job reports it produced nothing.
    assert_eq!(service.metrics().jobs_mined, 1);
    assert_eq!(service.status(doomed).unwrap(), JobStatus::Cancelled);
    assert!(matches!(
        fetch(&service,doomed),
        Err(ServiceError::Cancelled(id)) if id == doomed
    ));
    // Cancelling again is a terminal no-op.
    assert_eq!(service.cancel(doomed).unwrap(), JobStatus::Cancelled);
    service.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_it_via_its_cancel_token() {
    let (graph, gamma, min_size) = endless_graph();
    let service = MiningService::start(single_worker_config());
    let job = service
        .submit(JobRequest::new(graph, gamma, min_size))
        .unwrap();
    // Wait for the worker to pick it up.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.status(job).unwrap() != JobStatus::Running {
        assert!(Instant::now() < deadline, "job never started running");
        qcm_sync::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(service.cancel(job).unwrap(), JobStatus::Running);
    // The run over this graph cannot finish on its own in test time, so a
    // returned fetch proves the CancelToken stopped it cooperatively.
    let result = fetch(&service, job).unwrap();
    assert_eq!(result.outcome(), RunOutcome::Cancelled);
    assert!(!result.is_complete());
    assert_eq!(service.status(job).unwrap(), JobStatus::Cancelled);
    assert_eq!(service.metrics().cancelled, 1);
    service.shutdown();
}

/// A thread-safe sink for observing streamed results from outside.
#[derive(Clone, Default)]
struct SharedSink {
    maximal: Arc<Mutex<Vec<Vec<VertexId>>>>,
    candidates: Arc<Mutex<u64>>,
}

impl ResultSink for SharedSink {
    fn on_candidate(&mut self, _members: &[VertexId]) {
        *self.candidates.lock() += 1;
    }
    fn on_maximal(&mut self, members: &[VertexId]) {
        self.maximal.lock().push(members.to_vec());
    }
}

#[test]
fn streaming_sinks_fire_for_mined_jobs_and_cache_hits() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig::default());

    let cold_sink = SharedSink::default();
    let job = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size).stream(Box::new(cold_sink.clone())))
        .unwrap();
    let cold = fetch(&service, job).unwrap();
    assert_eq!(cold_sink.maximal.lock().len(), cold.maximal().len());
    assert_eq!(*cold_sink.candidates.lock(), cold.answer.raw_reported);

    // A cache hit delivers the maximal sets to the sink at submit time.
    let hot_sink = SharedSink::default();
    let job = service
        .submit(JobRequest::new(graph, gamma, min_size).stream(Box::new(hot_sink.clone())))
        .unwrap();
    assert_eq!(
        hot_sink.maximal.lock().len(),
        cold.maximal().len(),
        "hit delivery happens before fetch"
    );
    let hot = fetch(&service, job).unwrap();
    assert!(hot.cache_hit);
    service.shutdown();
}

#[test]
fn cache_hits_are_served_even_when_admission_would_reject() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 1,
        admission: AdmissionControl {
            max_queued: 2,
            max_in_flight: usize::MAX,
            per_tenant_quota: 100,
        },
        ..ServiceConfig::default()
    });
    // Warm the cache with one completed query.
    let warm = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size))
        .unwrap();
    fetch(&service, warm).unwrap();
    // Fill the queue with cold jobs while dispatch is paused.
    service.pause();
    for bump in 1..=2 {
        service
            .submit(JobRequest::new(graph.clone(), gamma, min_size + bump))
            .unwrap();
    }
    let err = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size + 3))
        .unwrap_err();
    assert!(matches!(err, ServiceError::Overloaded { .. }));
    // The hot repeat consumes no queue slot and must not be shed.
    let hot = service
        .submit(JobRequest::new(graph, gamma, min_size))
        .unwrap();
    assert!(fetch(&service, hot).unwrap().cache_hit);
    service.resume();
    service.shutdown();
}

/// A sink that panics on the first candidate, for worker-robustness tests.
struct PanickingSink;

impl ResultSink for PanickingSink {
    fn on_candidate(&mut self, _members: &[VertexId]) {
        panic!("sink exploded");
    }
    fn on_maximal(&mut self, _members: &[VertexId]) {}
}

#[test]
fn panicking_sink_fails_the_job_but_not_the_service() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(single_worker_config());
    let doomed = service
        .submit(JobRequest::new(graph.clone(), gamma, min_size).stream(Box::new(PanickingSink)))
        .unwrap();
    let err = fetch(&service, doomed).unwrap_err();
    assert!(
        matches!(&err, ServiceError::JobFailed { message, .. } if message.contains("sink exploded")),
        "expected JobFailed, got {err:?}"
    );
    assert_eq!(service.status(doomed).unwrap(), JobStatus::Failed);
    assert_eq!(service.metrics().failed, 1);
    // The single worker survived the panic and keeps serving.
    let next = service
        .submit(JobRequest::new(graph, gamma, min_size))
        .unwrap();
    assert!(fetch(&service, next).unwrap().is_complete());
    assert_eq!(service.metrics().in_flight, 0);
    service.shutdown();
}

#[test]
fn terminal_jobs_are_evicted_beyond_the_retention_bound() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 1,
        max_finished_jobs: 2,
        ..ServiceConfig::default()
    });
    let mut jobs = Vec::new();
    for bump in 0..3 {
        let job = service
            .submit(JobRequest::new(graph.clone(), gamma, min_size + bump))
            .unwrap();
        fetch(&service, job).unwrap();
        jobs.push(job);
    }
    // Only the two most recent terminal jobs are retained; the oldest has
    // been evicted and now reads as unknown (memory stays bounded).
    assert!(matches!(
        service.status(jobs[0]),
        Err(ServiceError::UnknownJob(_))
    ));
    assert!(service.status(jobs[1]).is_ok());
    assert!(service.status(jobs[2]).is_ok());
    // Eviction does not touch the result cache: the evicted job's answer is
    // still served to a repeat query.
    let repeat = service
        .submit(JobRequest::new(graph, gamma, min_size))
        .unwrap();
    assert!(fetch(&service, repeat).unwrap().cache_hit);
    service.shutdown();
}

#[test]
fn max_in_flight_one_with_many_workers_drains_and_shuts_down() {
    // Regression: with max_in_flight < workers, every completion must wake
    // all waiting workers, or an idle worker can be stranded and shutdown
    // hangs on join.
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 4,
        admission: AdmissionControl {
            max_queued: 16,
            max_in_flight: 1,
            per_tenant_quota: 16,
        },
        start_paused: true,
        ..ServiceConfig::default()
    });
    let jobs: Vec<_> = (0..3)
        .map(|bump| {
            service
                .submit(JobRequest::new(graph.clone(), gamma, min_size + bump))
                .unwrap()
        })
        .collect();
    service.resume();
    for job in jobs {
        let result = fetch(&service, job).unwrap();
        assert!(result.is_complete());
    }
    let metrics = service.metrics();
    assert_eq!(metrics.completed, 3);
    service.shutdown(); // must not hang
}

#[test]
fn invalid_jobs_and_unknown_ids_return_typed_errors() {
    let (graph, _, _) = easy_graph();
    let service = MiningService::start(single_worker_config());
    let err = service
        .submit(JobRequest::new(graph.clone(), 1.5, 5))
        .unwrap_err();
    assert!(matches!(err, ServiceError::InvalidJob(_)));
    let err = service.submit(JobRequest::new(graph, 0.9, 1)).unwrap_err();
    assert!(matches!(err, ServiceError::InvalidJob(_)));
    let ghost = qcm_service::JobId::from_raw(999);
    assert!(matches!(
        service.status(ghost),
        Err(ServiceError::UnknownJob(_))
    ));
    assert!(matches!(
        fetch(&service, ghost),
        Err(ServiceError::UnknownJob(_))
    ));
    assert!(matches!(
        service.cancel(ghost),
        Err(ServiceError::UnknownJob(_))
    ));
    // Invalid submissions never touch the admission/cache counters.
    assert_eq!(service.metrics().submitted, 0);
    service.shutdown();
}

#[test]
fn mixed_tenant_workload_respects_priorities_and_reports_latency() {
    let (graph, gamma, min_size) = easy_graph();
    let service = MiningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut jobs = Vec::new();
    for (tenant, priority, bump) in [
        ("alpha", Priority::Low, 0),
        ("beta", Priority::Normal, 1),
        ("alpha", Priority::High, 2),
    ] {
        jobs.push(
            service
                .submit(
                    JobRequest::new(graph.clone(), gamma, min_size + bump)
                        .tenant(tenant)
                        .priority(priority),
                )
                .unwrap(),
        );
    }
    for &job in &jobs {
        let result = fetch(&service, job).unwrap();
        assert!(result.is_complete());
    }
    // A repeat of the (now completed) first query is served hot.
    let repeat = service
        .submit(
            JobRequest::new(graph.clone(), gamma, min_size)
                .tenant("beta")
                .priority(Priority::High),
        )
        .unwrap();
    assert!(fetch(&service, repeat).unwrap().cache_hit);
    let metrics = service.metrics();
    assert_eq!(metrics.queue_depth, 0);
    assert_eq!(metrics.in_flight, 0);
    assert_eq!(metrics.completed, 4);
    assert_eq!(metrics.jobs_mined, 3, "the repeat query must not re-mine");
    assert!(metrics.p99_latency >= metrics.p50_latency);
    service.shutdown();
}
