//! Work-stealing equivalence and ordering tests.
//!
//! The per-worker deques + steal protocol are a scheduling change only: the
//! mined result set must stay byte-identical to the serial reference with
//! stealing on or off, across thread counts, and with the global queue
//! forced through its disk-spill path. The last test pins the ordering
//! contract: the spill-backed global queue stays FIFO through spill→refill
//! cycles even while tasks are simultaneously being pushed to and stolen
//! from worker deques.

use qcm::prelude::*;
use qcm_engine::codec::{put_u32, take_u32};
use qcm_engine::queue::TaskQueue;
use qcm_engine::spill::{SpillMetrics, SpillStore};
use qcm_engine::{TaskCodec, WorkerQueues};
use qcm_sync::Arc;
use std::time::Duration;

fn test_graph() -> (Arc<Graph>, MiningParams) {
    let spec = PlantedGraphSpec {
        num_vertices: 250,
        background_avg_degree: 5.0,
        background_beta: 2.4,
        background_max_degree: 50.0,
        community_sizes: vec![9, 8, 8],
        community_density: 0.95,
        seed: 4242,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), MiningParams::new(0.8, 7))
}

#[test]
fn work_stealing_parallel_matches_serial_across_thread_counts() {
    let (graph, params) = test_graph();
    let serial = SerialMiner::new(params).mine(&graph);
    for threads in [2usize, 4, 8] {
        let mut config = EngineConfig::single_machine(threads);
        // Aggressive decomposition into small subtasks, which land in the
        // decomposing worker's own deque — the steal protocol's diet.
        config.tau_split = 30;
        config.tau_time = Duration::ZERO;
        config.steal_batch = 4;
        let out = ParallelMiner::new(params, config).mine(graph.clone());
        assert_eq!(
            out.maximal, serial.maximal,
            "work-stealing run diverged at {threads} threads"
        );
        assert!(
            out.metrics.steals + out.metrics.steal_failures > 0,
            "multi-worker runs must exercise the steal path"
        );
    }
}

#[test]
fn stealing_on_and_off_agree_and_spilling_survives_stealing() {
    let (graph, params) = test_graph();
    let spill_dir = std::env::temp_dir().join(format!("qcm_steal_spill_{}", std::process::id()));
    let make_config = |steal_batch: usize| {
        let mut config = EngineConfig::single_machine(4);
        config.tau_split = 10; // most decomposed tasks are "big" → global queue
        config.tau_time = Duration::ZERO;
        config.batch_size = 2;
        config.local_capacity = 2; // tiny deques → constant overflow to global
        config.global_queue_capacity = 2; // → constant spilling
        config.spill_dir = Some(spill_dir.clone());
        config.steal_batch = steal_batch;
        config
    };

    let stolen = ParallelMiner::new(params, make_config(4)).mine(graph.clone());
    let unstolen = ParallelMiner::new(params, make_config(0)).mine(graph.clone());
    assert_eq!(stolen.maximal, unstolen.maximal);
    assert_eq!(unstolen.metrics.steals, 0, "steal_batch = 0 must disable");
    assert!(
        stolen.metrics.spill_bytes_written > 0,
        "2-slot queues with full decomposition must spill"
    );
    assert_eq!(
        stolen.metrics.spill_bytes_written, stolen.metrics.spill_bytes_read,
        "every byte spilled under stealing must be refilled"
    );
    let leftover = std::fs::read_dir(&spill_dir)
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(leftover, 0, "spill files must be consumed and removed");
    let _ = std::fs::remove_dir_all(&spill_dir);
}

/// A minimal spillable task for the queue-level ordering test.
#[derive(Clone, Debug, PartialEq)]
struct Seq(u32);

impl TaskCodec for Seq {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.0);
    }
    fn decode(data: &mut &[u8]) -> Option<Self> {
        take_u32(data).map(Seq)
    }
}

#[test]
fn global_queue_stays_fifo_through_spill_while_deques_are_stolen_from() {
    // Global queue of capacity 4 with spill batches of 2: pushing 32 tasks
    // forces most of them through disk-simulating spill storage.
    let store = SpillStore::new(None, "fifo", Arc::new(SpillMetrics::default()));
    let mut global: TaskQueue<Seq> = TaskQueue::new(4, 2, store);
    for i in 0..32 {
        global.push(Seq(i));
    }
    assert!(global.total_pending() == 32 && global.len() <= 4);

    // Drain the global queue exactly like a worker: refill below one batch,
    // then pop. Every drained task is pushed onto worker 0's deque, and a
    // second worker keeps stealing mid-drain.
    let deques: WorkerQueues<Seq> = WorkerQueues::new(2, 64, 2);
    let mut drained = Vec::new();
    let mut stolen = Vec::new();
    let mut step = 0u32;
    loop {
        if global.needs_refill() {
            global.refill_from_spill();
        }
        let Some(task) = global.pop() else { break };
        drained.push(task.0);
        deques.push_local(0, task).unwrap();
        step += 1;
        if step % 3 == 0 {
            if let Some(t) = deques.steal_into(1, 0..2) {
                stolen.push(t.0);
            }
        }
    }
    // No task may be lost or duplicated across the spill→refill cycles.
    let mut sorted = drained.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
    // Spill→refill ordering: with capacity 4 and batch 2, ids 2..=29 went
    // through spill storage (the tail spills; 0, 1, 30, 31 stay resident).
    // Spilled batches must come back oldest-first, so the drained
    // subsequence of spilled ids must be increasing — stealing active the
    // whole time.
    let spilled: Vec<u32> = drained
        .iter()
        .copied()
        .filter(|&i| (2..=29).contains(&i))
        .collect();
    assert_eq!(spilled, (2..=29).collect::<Vec<u32>>());
    // Steals take the victim's *oldest* tasks, so the stolen ids must form a
    // subsequence of the order in which they entered worker 0's deque.
    assert!(!stolen.is_empty());
    let mut cursor = drained.iter();
    assert!(
        stolen.iter().all(|s| cursor.any(|d| d == s)),
        "stolen ids must respect the victim's FIFO order: {stolen:?} vs {drained:?}"
    );
    assert_eq!(deques.steals(), (stolen.len() * 2) as u64, "batch of 2");
}
