//! Determinism and schedule-independence of the parallel miner.
//!
//! The paper's system runs the same algorithm under wildly different
//! schedules (1–512 threads, 2–16 machines, different τ_split/τ_time). These
//! tests assert that the *result set* is a pure function of (graph, γ,
//! τ_size): every cluster shape and every hyperparameter setting must return
//! exactly what the serial reference returns.

use qcm::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn planted_graph(seed: u64) -> (Arc<Graph>, MiningParams) {
    let spec = PlantedGraphSpec {
        num_vertices: 300,
        background_avg_degree: 5.0,
        background_beta: 2.5,
        background_max_degree: 40.0,
        community_sizes: vec![9, 8, 7],
        community_density: 0.95,
        seed,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), MiningParams::new(0.8, 7))
}

#[test]
fn thread_count_does_not_change_results() {
    let (graph, params) = planted_graph(1);
    let reference = mine_serial(&graph, params);
    assert!(!reference.maximal.is_empty());
    for threads in [1, 2, 4, 8] {
        let parallel = mine_parallel(&graph, params, threads);
        assert_eq!(
            parallel.maximal, reference.maximal,
            "result set changed with {threads} threads"
        );
    }
}

#[test]
fn machine_count_does_not_change_results() {
    let (graph, params) = planted_graph(2);
    let reference = mine_serial(&graph, params);
    for machines in [1, 2, 4] {
        let mut config = EngineConfig::cluster(machines, 2);
        config.balance_period = Duration::from_millis(2);
        let parallel = ParallelMiner::new(params, config).mine(graph.clone());
        assert_eq!(
            parallel.maximal, reference.maximal,
            "result set changed with {machines} machines"
        );
    }
}

#[test]
fn hyperparameters_do_not_change_results() {
    let (graph, params) = planted_graph(3);
    let reference = mine_serial(&graph, params);
    for tau_split in [1usize, 10, 1000] {
        for tau_time_ms in [0u64, 1, 1000] {
            let config = EngineConfig::single_machine(4)
                .with_decomposition(tau_split, Duration::from_millis(tau_time_ms));
            let parallel = ParallelMiner::new(params, config).mine(graph.clone());
            assert_eq!(
                parallel.maximal, reference.maximal,
                "result set changed at tau_split={tau_split}, tau_time={tau_time_ms}ms"
            );
        }
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let (graph, params) = planted_graph(4);
    let first = mine_parallel(&graph, params, 4);
    for _ in 0..3 {
        let again = mine_parallel(&graph, params, 4);
        assert_eq!(first.maximal, again.maximal);
    }
}

#[test]
fn engine_metrics_are_consistent_with_results() {
    let (graph, params) = planted_graph(5);
    let out = mine_parallel(&graph, params, 4);
    assert!(out.raw_reported >= out.maximal.len() as u64);
    assert_eq!(out.metrics.results_emitted, out.raw_reported);
    assert!(out.metrics.tasks_processed >= out.metrics.tasks_spawned);
    assert_eq!(
        out.metrics.task_times.len() as u64,
        out.metrics.tasks_processed
    );
    assert!(out.metrics.worker_busy.len() == 4);
}
