//! Determinism and schedule-independence of the parallel miner, driven
//! through the unified `Session` front door.
//!
//! The paper's system runs the same algorithm under wildly different
//! schedules (1–512 threads, 2–16 machines, different τ_split/τ_time). These
//! tests assert that the *result set* is a pure function of (graph, γ,
//! τ_size): every cluster shape and every hyperparameter setting must return
//! exactly what the serial reference returns.

use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

fn planted_graph(seed: u64) -> (Arc<Graph>, SessionBuilder) {
    let spec = PlantedGraphSpec {
        num_vertices: 300,
        background_avg_degree: 5.0,
        background_beta: 2.5,
        background_max_degree: 40.0,
        community_sizes: vec![9, 8, 7],
        community_density: 0.95,
        seed,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    (Arc::new(graph), Session::builder().gamma(0.8).min_size(7))
}

#[test]
fn thread_count_does_not_change_results() {
    let (graph, base) = planted_graph(1);
    let reference = base.clone().build().unwrap().run(&graph).unwrap();
    assert!(!reference.maximal.is_empty());
    for threads in [1, 2, 4, 8] {
        let parallel = base
            .clone()
            .backend(Backend::parallel(threads, 1))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(
            parallel.maximal, reference.maximal,
            "result set changed with {threads} threads"
        );
    }
}

#[test]
fn machine_count_does_not_change_results() {
    let (graph, base) = planted_graph(2);
    let reference = base.clone().build().unwrap().run(&graph).unwrap();
    for machines in [1, 2, 4] {
        let parallel = base
            .clone()
            .backend(Backend::parallel(2, machines))
            .balance_period(Duration::from_millis(2))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(
            parallel.maximal, reference.maximal,
            "result set changed with {machines} machines"
        );
    }
}

#[test]
fn hyperparameters_do_not_change_results() {
    let (graph, base) = planted_graph(3);
    let reference = base.clone().build().unwrap().run(&graph).unwrap();
    for tau_split in [1usize, 10, 1000] {
        for tau_time_ms in [0u64, 1, 1000] {
            let parallel = base
                .clone()
                .backend(Backend::parallel(4, 1))
                .tau_split(tau_split)
                .tau_time(Duration::from_millis(tau_time_ms))
                .build()
                .unwrap()
                .run(&graph)
                .unwrap();
            assert_eq!(
                parallel.maximal, reference.maximal,
                "result set changed at tau_split={tau_split}, tau_time={tau_time_ms}ms"
            );
        }
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let (graph, base) = planted_graph(4);
    let session = base.backend(Backend::parallel(4, 1)).build().unwrap();
    let first = session.run(&graph).unwrap();
    for _ in 0..3 {
        let again = session.run(&graph).unwrap();
        assert_eq!(first.maximal, again.maximal);
    }
}

#[test]
fn engine_metrics_are_consistent_with_results() {
    let (graph, base) = planted_graph(5);
    let out = base
        .backend(Backend::parallel(4, 1))
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let metrics = out.engine_metrics().expect("parallel backend");
    assert!(out.raw_reported >= out.maximal.len() as u64);
    assert_eq!(metrics.results_emitted, out.raw_reported);
    assert!(metrics.tasks_processed >= metrics.tasks_spawned);
    assert_eq!(metrics.task_times.len() as u64, metrics.tasks_processed);
    assert!(metrics.worker_busy.len() == 4);
    assert!(out.is_complete());
}

#[test]
fn streaming_and_plain_runs_agree_across_backends() {
    let (graph, base) = planted_graph(6);
    for backend in [Backend::Serial, Backend::parallel(4, 1)] {
        let session = base.clone().backend(backend.clone()).build().unwrap();
        let plain = session.run(&graph).unwrap();
        let mut sink = CollectingSink::default();
        let streamed = session.run_streaming(&graph, &mut sink).unwrap();
        assert_eq!(plain.maximal, streamed.maximal, "{backend:?}");
        assert_eq!(sink.candidates, streamed.raw_reported, "{backend:?}");
        assert_eq!(sink.maximal.len(), streamed.maximal.len(), "{backend:?}");
    }
}
