//! Cross-crate model-checked scenarios at the facade level.
//!
//! Run with `cargo test -p qcm --features model-check --test model_check`.
//! The per-crate suites (`model_steal`, `model_cancel`, `model_cache`)
//! pin down one component each; this suite covers the protocols that
//! only exist across layers: the engine's counting-based termination
//! protocol and the deque + cancel-token composition used by the worker
//! loops. Each scenario explores at least 1 000 seeded schedules, and
//! `replayable_failure_reproduces_bit_for_bit` demonstrates the
//! seed → identical-trace replay contract end to end.

#![cfg(feature = "model-check")]

use qcm::core::CancelToken;
use qcm::engine::steal::WorkerQueues;
use qcm_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use qcm_sync::model::{check_seed, explore, explore_seeds, extra_seeds, find_failure, ModelConfig};
use qcm_sync::{thread, Arc, Mutex};

const SCHEDULES: usize = 1_000;

fn run_with(name: &str, cfg: ModelConfig, f: impl Fn() + Sync) {
    explore(name, SCHEDULES, cfg.clone(), &f);
    let extra = extra_seeds();
    if !extra.is_empty() {
        explore_seeds(name, &extra, cfg, &f);
    }
}

/// The cluster's termination protocol in miniature, run under the
/// *strict* model config so any unsynchronised publication fails the
/// schedule outright.
///
/// Shape (mirrors `qcm_engine::cluster`): workers accumulate into a
/// Relaxed statistics sum, then announce completion with an AcqRel
/// decrement of the pending counter; whoever reaches zero publishes
/// `done` with Release. An observer that sees `done` with Acquire must
/// therefore see every worker's contribution. Weakening the decrement
/// or the flag to Relaxed makes this test fail with a vector-clock
/// diagnostic — it is the regression test for the ordering audit of
/// `cluster.rs`.
#[test]
fn termination_protocol_publishes_all_work() {
    run_with(
        "termination_protocol_publishes_all_work",
        ModelConfig::strict(),
        || {
            const WORKERS: u64 = 2;
            let sum = Arc::new(AtomicU64::new(0));
            let pending = Arc::new(AtomicUsize::new(WORKERS as usize));
            let done = Arc::new(AtomicBool::new(false));

            let handles: Vec<_> = (1..=WORKERS)
                .map(|contribution| {
                    let (sum, pending, done) = (sum.clone(), pending.clone(), done.clone());
                    thread::spawn(move || {
                        // ordering: Relaxed — statistics accumulation; publication
                        // happens via the AcqRel decrement below.
                        sum.fetch_add(contribution, Ordering::Relaxed);
                        // ordering: AcqRel — counter protocol: the decrement
                        // publishes this worker's contribution and joins all
                        // previous decrements, so reaching zero proves every
                        // contribution is visible.
                        if pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                            // ordering: Release — publishes the joined clock of
                            // every decrement to the Acquire observer.
                            done.store(true, Ordering::Release);
                        }
                    })
                })
                .collect();

            let observer = {
                let (sum, done) = (sum.clone(), done.clone());
                thread::spawn(move || {
                    // Bounded poll: the property is conditional on observing
                    // `done`, not on winning the race to see it.
                    for _ in 0..3 {
                        // ordering: Acquire — pairs with the Release store of
                        // `done`; seeing true imports every worker's sum add.
                        if done.load(Ordering::Acquire) {
                            // ordering: Relaxed — all adds happen-before via the
                            // Acquire load above.
                            let total = sum.load(Ordering::Relaxed);
                            assert_eq!(
                                total,
                                WORKERS * (WORKERS + 1) / 2,
                                "done visible before all work published"
                            );
                            return;
                        }
                    }
                })
            };

            for h in handles {
                h.join().unwrap();
            }
            observer.join().unwrap();
            // ordering: Acquire / Relaxed — main joined everyone; the loads are
            // for the final assertion only.
            assert!(done.load(Ordering::Acquire));
            assert_eq!(sum.load(Ordering::Relaxed), WORKERS * (WORKERS + 1) / 2);
        },
    );
}

/// Deque draining under cancellation: a consumer that stops on a fired
/// token may leave tasks behind, but across every interleaving no task
/// is consumed twice and the leftovers are exactly the complement of
/// what was consumed.
#[test]
fn cancelled_drain_never_double_consumes() {
    run_with(
        "cancelled_drain_never_double_consumes",
        ModelConfig::default(),
        || {
            let queues: Arc<WorkerQueues<u32>> = Arc::new(WorkerQueues::new(2, 8, 1));
            let token = CancelToken::new();
            let consumed: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
            for task in 0..3 {
                queues.push_local(0, task).expect("below capacity");
            }

            let consumer = {
                let (queues, token, consumed) = (queues.clone(), token.clone(), consumed.clone());
                thread::spawn(move || {
                    for _ in 0..3 {
                        if token.is_cancelled() {
                            break;
                        }
                        if let Some(t) = queues.pop_local(0) {
                            consumed.lock().push(t);
                        }
                    }
                })
            };
            let canceller = {
                let token = token.clone();
                thread::spawn(move || token.cancel())
            };
            consumer.join().unwrap();
            canceller.join().unwrap();

            let mut seen = consumed.lock().clone();
            let consumed_count = seen.len();
            while let Some(t) = queues.pop_local(0) {
                seen.push(t);
            }
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen,
                vec![0, 1, 2],
                "cancelled drain lost or duplicated a task (consumed {consumed_count})"
            );
        },
    );
}

/// The replay contract the whole tool rests on: a schedule that fails
/// under some seed re-runs to the *identical* decision trace, step
/// count and failure message when that seed is replayed — twice.
#[test]
fn replayable_failure_reproduces_bit_for_bit() {
    // A deliberately racy counter: load + store instead of fetch_add.
    let buggy = || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    // ordering: SeqCst — the bug is the lost update, not the
                    // memory order; the checked facade runs at SeqCst anyway.
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };

    let found = find_failure(SCHEDULES, ModelConfig::default(), buggy)
        .expect("schedule exploration must find the lost update");
    let again = check_seed(found.seed, ModelConfig::default(), buggy);
    let thrice = check_seed(found.seed, ModelConfig::default(), buggy);
    assert_eq!(found.trace, again.trace, "replay diverged from original");
    assert_eq!(again.trace, thrice.trace, "replay is not deterministic");
    assert_eq!(found.steps, again.steps);
    assert_eq!(found.failure, again.failure);
    assert!(again.failure.is_some());
}
