//! Cross-crate oracle tests: the serial miner, the parallel miner (with both
//! decomposition strategies) and the brute-force oracle must agree exactly on
//! small random and planted graphs.
//!
//! This is the project's strongest end-to-end correctness statement: the
//! paper's central algorithmic claim is that, unlike Quick, its algorithm
//! misses no maximal quasi-clique, and the system side (task decomposition,
//! queues, spilling) must not change the result set either.

use qcm::core::naive;
use qcm::parallel::DecompositionStrategy;
use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

/// Deterministic pseudo-random small graphs without pulling in a RNG: a
/// Paley-like construction over `n` vertices where `(a, b)` is an edge iff
/// `(a*a + b*b + seed) % modulus < threshold`.
fn arithmetic_graph(n: usize, seed: u64, threshold: u64, modulus: u64) -> Graph {
    let mut builder = GraphBuilder::new();
    builder.set_min_vertices(n);
    for a in 0..n as u64 {
        for b in (a + 1)..n as u64 {
            if (a * a + b * b + seed) % modulus < threshold {
                builder.add_edge_raw(a as u32, b as u32);
            }
        }
    }
    builder.build()
}

fn all_configs() -> Vec<(f64, usize)> {
    vec![(0.5, 4), (0.6, 4), (0.7, 3), (0.8, 3), (0.9, 4), (1.0, 3)]
}

#[test]
fn serial_parallel_and_oracle_agree_on_arithmetic_graphs() {
    for (i, (seed, threshold, modulus)) in
        [(1u64, 11u64, 29u64), (7, 13, 31), (23, 9, 23), (5, 17, 37)]
            .iter()
            .enumerate()
    {
        let g = arithmetic_graph(13, *seed, *threshold, *modulus);
        for (gamma, min_size) in all_configs() {
            let params = MiningParams::new(gamma, min_size);
            let oracle = naive::maximal_quasi_cliques(&g, &params);
            let shared = Arc::new(g.clone());
            let serial = Session::builder()
                .params(params)
                .build()
                .unwrap()
                .run(&shared)
                .unwrap();
            assert_eq!(
                serial.maximal, oracle,
                "serial != oracle (graph #{i}, gamma={gamma}, min_size={min_size})"
            );
            let parallel = Session::builder()
                .params(params)
                .backend(Backend::parallel(3, 1))
                .build()
                .unwrap()
                .run(&shared)
                .unwrap();
            assert_eq!(
                parallel.maximal, oracle,
                "parallel != oracle (graph #{i}, gamma={gamma}, min_size={min_size})"
            );
        }
    }
}

#[test]
fn forced_decomposition_does_not_change_results() {
    // τ_split = 1 and τ_time = 0 force the maximum possible amount of task
    // decomposition; the result set must be unchanged for both strategies.
    let g = Arc::new(arithmetic_graph(14, 3, 12, 27));
    let params = MiningParams::new(0.7, 4);
    let oracle = naive::maximal_quasi_cliques(&g, &params);

    let mut config = EngineConfig::single_machine(4);
    config.tau_split = 1;
    config.tau_time = Duration::ZERO;

    let time_delayed = ParallelMiner::new(params, config.clone()).mine(g.clone());
    assert_eq!(
        time_delayed.maximal, oracle,
        "time-delayed decomposition lost results"
    );

    let size_threshold = ParallelMiner::new(params, config)
        .with_strategy(DecompositionStrategy::SizeThreshold)
        .mine(g.clone());
    assert_eq!(
        size_threshold.maximal, oracle,
        "size-threshold decomposition lost results"
    );
}

#[test]
fn quick_baseline_reports_no_spurious_results() {
    let g = arithmetic_graph(13, 11, 10, 21);
    for (gamma, min_size) in all_configs() {
        let params = MiningParams::new(gamma, min_size);
        let oracle = naive::maximal_quasi_cliques(&g, &params);
        let quick = quick_mine(&g, params);
        for r in quick.maximal.iter() {
            assert!(
                oracle.contains(r),
                "quick baseline fabricated {r:?} at gamma={gamma}"
            );
        }
    }
}

#[test]
fn planted_communities_are_recovered_exactly() {
    // Every planted near-clique must be contained in some reported maximal
    // quasi-clique, for serial and parallel alike.
    let dataset = qcm::gen::datasets::tiny_test_dataset(42);
    let params = MiningParams::new(dataset.spec.gamma, dataset.spec.min_size);
    let graph = Arc::new(dataset.graph.clone());
    let serial = Session::builder()
        .params(params)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let parallel = Session::builder()
        .params(params)
        .backend(Backend::parallel(4, 1))
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    assert_eq!(serial.maximal, parallel.maximal);
    for community in &dataset.planted {
        assert!(
            serial.maximal.contains_superset_of(&community.members),
            "planted community {:?} not recovered",
            community.members
        );
    }
}
