//! Behavioural tests of the time-delayed task decomposition (Figure 9 and
//! Algorithms 9–10 of the paper).
//!
//! The mechanism promised by the paper:
//!
//! * cheap tasks finish before the timeout and are never decomposed (no
//!   materialisation overhead paid);
//! * expensive tasks are decomposed after at least τ_time of real mining, at
//!   whatever granularity the backtracking has reached (not uniformly);
//! * decreasing τ_time increases the number of decomposed subtasks;
//! * subgraph-materialisation time stays a small fraction of mining time
//!   (Table 6's ratio).

use qcm::parallel::{DecompositionStrategy, ParallelMiner};
use qcm::prelude::*;
use qcm_sync::Arc;
use std::time::Duration;

/// A graph with one moderately dense hard core that takes real work to mine,
/// plus planted results, so that both "cheap" and "expensive" tasks exist.
fn hard_core_graph() -> (Arc<Graph>, MiningParams) {
    let background = qcm::gen::gnp(150, 0.02, 9);
    let (with_core, _) = qcm::gen::plant_into(&background, &[30], 0.72, 5);
    let (graph, _) = qcm::gen::plant_into(&with_core, &[10, 9], 0.95, 11);
    (Arc::new(graph), MiningParams::new(0.85, 8))
}

fn run_with_tau_time(
    graph: &Arc<Graph>,
    params: MiningParams,
    tau_time: Duration,
) -> ParallelMiningOutput {
    let config = EngineConfig::single_machine(4).with_decomposition(30, tau_time);
    ParallelMiner::new(params, config).mine(graph.clone())
}

#[test]
fn huge_timeout_never_decomposes() {
    let (graph, params) = hard_core_graph();
    let out = run_with_tau_time(&graph, params, Duration::from_secs(3600));
    assert_eq!(
        out.metrics.tasks_decomposed, 0,
        "nothing should time out with a one-hour τ_time"
    );
    assert_eq!(out.metrics.total_materialization_time, Duration::ZERO);
}

#[test]
fn zero_timeout_decomposes_aggressively_and_preserves_results() {
    let (graph, params) = hard_core_graph();
    let lazy = run_with_tau_time(&graph, params, Duration::from_secs(3600));
    let eager = run_with_tau_time(&graph, params, Duration::ZERO);
    assert!(
        eager.metrics.tasks_decomposed > 0,
        "zero τ_time must decompose expensive tasks"
    );
    assert_eq!(
        eager.maximal, lazy.maximal,
        "decomposition changed the result set"
    );
    // Decomposition pays a materialisation cost, which must now be non-zero…
    assert!(eager.metrics.total_materialization_time > Duration::ZERO);
    // …but stays far below the mining time (Table 6's point: the overhead is
    // a tiny fraction; we only assert the order of magnitude here).
    assert!(
        eager.metrics.total_mining_time > eager.metrics.total_materialization_time,
        "materialisation {:?} should not dominate mining {:?}",
        eager.metrics.total_materialization_time,
        eager.metrics.total_mining_time
    );
}

#[test]
fn smaller_tau_time_means_more_subtasks() {
    let (graph, params) = hard_core_graph();
    let coarse = run_with_tau_time(&graph, params, Duration::from_millis(50));
    let fine = run_with_tau_time(&graph, params, Duration::ZERO);
    assert!(
        fine.metrics.tasks_decomposed >= coarse.metrics.tasks_decomposed,
        "τ_time=0 produced fewer subtasks ({}) than τ_time=50ms ({})",
        fine.metrics.tasks_decomposed,
        coarse.metrics.tasks_decomposed
    );
    assert_eq!(fine.maximal, coarse.maximal);
}

#[test]
fn time_delayed_beats_or_matches_size_threshold_on_task_count() {
    // With a small τ_split the size-threshold strategy splits every moderately
    // sized task regardless of cost, while the time-delayed strategy only
    // splits tasks that actually run long. The time-delayed run must therefore
    // never create more subtasks.
    let (graph, params) = hard_core_graph();
    let config = EngineConfig::single_machine(4).with_decomposition(10, Duration::from_millis(200));
    let time_delayed = ParallelMiner::new(params, config.clone()).mine(graph.clone());
    let size_threshold = ParallelMiner::new(params, config)
        .with_strategy(DecompositionStrategy::SizeThreshold)
        .mine(graph.clone());
    assert!(
        time_delayed.metrics.tasks_decomposed <= size_threshold.metrics.tasks_decomposed,
        "time-delayed created {} subtasks, size-threshold {}",
        time_delayed.metrics.tasks_decomposed,
        size_threshold.metrics.tasks_decomposed
    );
    assert_eq!(time_delayed.maximal, size_threshold.maximal);
}

#[test]
fn per_task_times_expose_the_skew_of_figures_1_and_2() {
    let (graph, params) = hard_core_graph();
    let out = run_with_tau_time(&graph, params, Duration::from_secs(3600));
    let per_root = out.metrics.per_root_totals();
    assert!(per_root.len() > 1);
    let slowest = per_root.first().unwrap().1;
    let fastest = per_root.last().unwrap().1;
    // Heavy-tailed task times: the slowest root should dominate the fastest by
    // a large factor (the paper reports orders of magnitude).
    assert!(
        slowest > fastest * 2,
        "expected skewed task times, got slowest={slowest:?} fastest={fastest:?}"
    );
}
