//! End-to-end runs on (scaled-down versions of) the synthetic stand-in
//! datasets, mirroring the Table 2 pipeline: generate → parallel mine →
//! post-process → sanity-check the result set against the planted ground
//! truth and the serial reference.
//!
//! The full-size stand-ins are exercised by the release-mode experiment
//! harness (`qcm-bench`); these debug-mode tests shrink the specs so the whole
//! suite stays fast.

use qcm::prelude::*;
use qcm_sync::Arc;

/// Shrinks a dataset spec to a debug-test-friendly size while keeping its
/// mining parameters and structural character.
fn shrink(spec: &DatasetSpec) -> DatasetSpec {
    let mut s = spec.clone();
    s.num_vertices = s.num_vertices.min(600);
    s.max_degree = s.max_degree.min(60.0);
    // Keep at most two planted communities and cap their size so that the
    // debug-mode miner finishes quickly.
    s.planted_sizes.truncate(2);
    for size in &mut s.planted_sizes {
        *size = (*size).min(s.min_size + 2).max(s.min_size);
    }
    s.hard_core = s.hard_core.map(|(size, p)| (size.min(20), p.min(0.6)));
    s
}

#[test]
fn every_dataset_standin_yields_its_planted_communities() {
    for spec in qcm::gen::datasets::all_datasets() {
        let spec = shrink(&spec);
        let dataset = spec.generate();
        let params = MiningParams::new(spec.gamma, spec.min_size);
        let graph = Arc::new(dataset.graph.clone());
        let out = Session::builder()
            .params(params)
            .backend(Backend::parallel(4, 1))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert!(
            !out.maximal.is_empty(),
            "{}: no quasi-cliques found at γ={} τ_size={}",
            spec.name,
            spec.gamma,
            spec.min_size
        );
        for community in &dataset.planted {
            assert!(
                out.maximal.contains_superset_of(&community.members),
                "{}: planted community of size {} not recovered",
                spec.name,
                community.members.len()
            );
        }
        // Every reported set is a valid quasi-clique of the right size.
        for s in out.maximal.iter() {
            assert!(s.len() >= spec.min_size);
            assert!(qcm::core::is_valid_quasi_clique(&graph, s, &params));
        }
    }
}

#[test]
fn parallel_equals_serial_on_two_shrunk_datasets() {
    for spec in [
        qcm::gen::datasets::cx_gse1730(),
        qcm::gen::datasets::amazon(),
    ] {
        let spec = shrink(&spec);
        let dataset = spec.generate();
        let params = MiningParams::new(spec.gamma, spec.min_size);
        let graph = Arc::new(dataset.graph.clone());
        let serial = Session::builder()
            .params(params)
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        let parallel = Session::builder()
            .params(params)
            .backend(Backend::parallel(4, 1))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(
            serial.maximal, parallel.maximal,
            "{}: serial vs parallel mismatch",
            spec.name
        );
    }
}

#[test]
fn dataset_table1_shapes_are_reported() {
    // The Table 1 regeneration path: every stand-in reports |V| and |E| and
    // the generated sizes match the spec's vertex budget.
    for spec in qcm::gen::datasets::all_datasets() {
        let spec = shrink(&spec);
        let dataset = spec.generate();
        let stats = GraphStats::compute(&dataset.graph);
        assert_eq!(stats.num_vertices, spec.num_vertices);
        assert!(stats.num_edges > 0);
        assert!(stats.max_degree >= spec.min_size - 1);
    }
}
