//! Backend-equivalence tests for the hybrid bitset neighborhood index: the
//! serial and parallel backends must produce **byte-identical** result sets
//! whether the index is disabled, auto, or forced onto every vertex — the
//! index may only change how fast edge queries run, never what is mined.

use qcm::prelude::*;
use qcm_sync::Arc;

fn datasets() -> Vec<Arc<qcm::graph::Graph>> {
    let tiny = qcm::gen::datasets::tiny_test_dataset(7);
    let planted = qcm_bench_dataset(&qcm::gen::datasets::cx_gse1730());
    vec![Arc::new(tiny.graph), Arc::new(planted)]
}

/// A strongly reduced planted dataset (a few hundred vertices) so the matrix
/// of backends × index specs below stays fast.
fn qcm_bench_dataset(spec: &qcm::gen::DatasetSpec) -> qcm::graph::Graph {
    let mut spec = spec.clone();
    spec.num_vertices = spec.num_vertices.min(300);
    spec.max_degree = spec.max_degree.min(40.0);
    spec.planted_sizes.truncate(2);
    spec.generate().graph
}

fn run(graph: &Arc<qcm::graph::Graph>, backend: Backend, index: IndexSpec) -> Vec<Vec<u32>> {
    let report = Session::builder()
        .gamma(0.85)
        .min_size(5)
        .backend(backend)
        .neighborhood_index(index)
        .build()
        .expect("valid session")
        .run(graph)
        .expect("run succeeds");
    assert!(report.is_complete());
    report
        .maximal
        .into_sorted_vec()
        .into_iter()
        .map(|set| set.into_iter().map(|v| v.raw()).collect())
        .collect()
}

#[test]
fn serial_results_are_identical_with_index_on_and_off() {
    for graph in datasets() {
        let specs = [
            IndexSpec::Disabled,
            IndexSpec::Auto,
            IndexSpec::Threshold(0),
            IndexSpec::Threshold(4),
        ];
        let reference = run(&graph, Backend::Serial, IndexSpec::Disabled);
        for spec in specs {
            assert_eq!(
                run(&graph, Backend::Serial, spec),
                reference,
                "serial results diverged under {spec:?}"
            );
        }
    }
}

#[test]
fn parallel_results_are_identical_with_index_on_and_off() {
    for graph in datasets() {
        let reference = run(&graph, Backend::Serial, IndexSpec::Disabled);
        for spec in [
            IndexSpec::Disabled,
            IndexSpec::Auto,
            IndexSpec::Threshold(0),
        ] {
            let parallel = run(&graph, Backend::parallel(4, 1), spec);
            assert_eq!(
                parallel, reference,
                "parallel results diverged from serial under {spec:?}"
            );
        }
    }
}

#[test]
fn prepared_graph_runs_match_unprepared_runs() {
    for graph in datasets() {
        let session = Session::builder()
            .gamma(0.85)
            .min_size(5)
            .backend(Backend::parallel(4, 1))
            .build()
            .unwrap();
        let prepared = session.prepare(graph.clone());
        assert!(Arc::ptr_eq(prepared.graph(), &graph));
        let via_prepared = session.run_prepared(&prepared).unwrap();
        let direct = session.run(&graph).unwrap();
        assert_eq!(via_prepared.maximal, direct.maximal);
        // Reuse across runs: same PreparedGraph, second run, same answer.
        let again = session.run_prepared(&prepared).unwrap();
        assert_eq!(again.maximal, direct.maximal);
    }
}

#[test]
fn prepared_index_reports_its_shape() {
    let graph = Arc::new(qcm::gen::datasets::tiny_test_dataset(7).graph);
    let prepared = PreparedGraph::build(graph.clone(), IndexSpec::Threshold(2));
    let index = prepared.index();
    assert_eq!(index.threshold(), 2);
    assert!(index.hub_count() > 0);
    assert!(index.memory_bytes() > 0);
    // Disabled index: no hubs, queries still correct.
    let off = PreparedGraph::build(graph.clone(), IndexSpec::Disabled);
    assert_eq!(off.index().hub_count(), 0);
    for u in graph.vertices() {
        for v in graph.vertices() {
            assert_eq!(off.index().has_edge(u, v), graph.has_edge(u, v));
            assert_eq!(index.has_edge(u, v), graph.has_edge(u, v));
        }
    }
}
