//! `qcm-lint`: the workspace invariant linter.
//!
//! A deliberately hand-rolled, line-based source scanner (no `syn`, no
//! proc-macro machinery — the build environment vendors no parser), so
//! every rule is conservative and textual. Six rules:
//!
//! 1. **sync-facade** — no direct `std::sync::` / `std::thread::` /
//!    `parking_lot::` references outside `crates/sync` and `vendor/`.
//!    All concurrency goes through the `qcm-sync` facade, which is what
//!    makes the whole workspace model-checkable.
//! 2. **ordering-justification** — every memory-ordering choice
//!    (`Ordering::Relaxed` … `Ordering::SeqCst`) in library sources
//!    must carry a `// ordering:` justification on the same line or in
//!    the contiguous comment/code block immediately above it.
//! 3. **hot-path** — the mining inner-loop modules must not allocate,
//!    `unwrap()`, `expect()` or `panic!` outside their `#[cfg(test)]`
//!    regions.
//! 4. **no-stray-print** — no `println!`/`eprintln!`/`dbg!` in library
//!    crates; user-facing output belongs to `crates/cli` and
//!    `crates/bench`.
//! 5. **clock-facade** — no direct `std::time::Instant` outside
//!    `crates/obs` (which owns the trace epoch), `crates/bench` and
//!    `crates/cli`; library code imports `qcm_obs::clock` so spans and
//!    measurements share one clock.
//! 6. **net-boundary** — no `std::net::` outside `crates/http` (the one
//!    front door) and `crates/bench` (the load generator that drives
//!    it). Mining, service and CLI layers stay socket-free, so the
//!    entire wire surface is reviewable in one crate.
//!
//! Violations are matched against a shrink-only allowlist
//! (`crates/lint/allowlist.txt`). Unknown violations fail; stale
//! entries also fail until removed (`--ratchet` rewrites the file,
//! dropping them — it never adds entries).
//!
//! Subcommands:
//! * `qcm-lint` — run the source rules.
//! * `qcm-lint vendor-hash` — print a SHA-256 manifest of `vendor/`.
//! * `qcm-lint vendor-check` — compare that manifest against the
//!   committed `vendor/MANIFEST.sha256`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod sha256;

/// Directories (relative to the repo root) whose `.rs` files are scanned.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Path prefixes exempt from every source rule: the facade itself (it
/// wraps `std::sync` by design), the vendored stand-ins, and this
/// linter (whose rule tables textually contain the forbidden patterns).
const EXEMPT_PREFIXES: &[&str] = &["crates/sync", "crates/lint", "vendor", "target"];

/// Crates allowed to print: the CLI and the bench harness own stdout.
const PRINT_OK_PREFIXES: &[&str] = &["crates/cli", "crates/bench"];

/// Crates allowed to name `std::time::Instant` directly: the clock facade
/// itself (`qcm_obs::clock` re-exports it) and the measurement layers.
const INSTANT_OK_PREFIXES: &[&str] = &["crates/obs", "crates/bench", "crates/cli"];

/// Crates allowed to open sockets: the HTTP front door and the load
/// generator that drives it over the wire.
const NET_OK_PREFIXES: &[&str] = &["crates/http", "crates/bench"];

/// Basenames of the mining hot-path modules (rule 3).
const HOT_PATH_FILES: &[&str] = &[
    "recursive_mine.rs",
    "iterative_bounding.rs",
    "cover.rs",
    "critical.rs",
    "bitset.rs",
];

/// Allocation and panic markers forbidden on the hot path.
const HOT_PATH_FORBIDDEN: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "Vec::new",
    "Vec::with_capacity",
    "vec![",
    ".to_vec()",
    ".collect()",
    ".collect::",
    "Box::new",
    "String::new",
    "String::from",
    "format!(",
    ".to_string()",
    ".to_owned()",
];

/// Memory-ordering variants whose use demands a justification.
const ORDERING_VARIANTS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

#[derive(Debug)]
struct Violation {
    rule: &'static str,
    path: String,
    line: usize,
    content: String,
    message: String,
}

impl Violation {
    /// The allowlist key: rule, path and *content* (not the line
    /// number, which drifts with every edit above the site).
    fn key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.content)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut ratchet = false;
    let mut subcommand: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => match iter.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("qcm-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--ratchet" => ratchet = true,
            "vendor-hash" | "vendor-check" => subcommand = Some(arg),
            "--help" | "-h" => {
                println!("usage: qcm-lint [--root DIR] [--ratchet] [vendor-hash | vendor-check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("qcm-lint: unknown argument '{other}' (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    match subcommand.as_deref() {
        Some("vendor-hash") => match vendor_manifest(&root) {
            Ok(manifest) => {
                print!("{manifest}");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("qcm-lint: {err}");
                ExitCode::from(2)
            }
        },
        Some("vendor-check") => vendor_check(&root),
        Some(_) => unreachable!("parsed above"),
        None => run_source_rules(&root, ratchet),
    }
}

// ---- source rules ----------------------------------------------------

fn run_source_rules(root: &Path, ratchet: bool) -> ExitCode {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rs_files(&root.join(scan), root, &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for rel in &files {
        if EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let text = match std::fs::read_to_string(root.join(rel)) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("qcm-lint: cannot read {rel}: {err}");
                return ExitCode::from(2);
            }
        };
        scan_file(rel, &text, &mut violations);
    }

    let allowlist_path = root.join("crates/lint/allowlist.txt");
    let allowlist = load_allowlist(&allowlist_path);

    let mut used: BTreeMap<String, usize> = BTreeMap::new();
    let mut fresh = Vec::new();
    for v in &violations {
        let key = v.key();
        if allowlist.contains(&key) {
            *used.entry(key).or_insert(0) += 1;
        } else {
            fresh.push(v);
        }
    }

    let mut failed = false;
    if !fresh.is_empty() {
        failed = true;
        eprintln!("qcm-lint: {} violation(s):\n", fresh.len());
        for v in &fresh {
            eprintln!("  [{}] {}:{}", v.rule, v.path, v.line);
            eprintln!("      {}", v.content);
            eprintln!("      {}\n", v.message);
        }
    }

    let stale: Vec<&String> = allowlist
        .iter()
        .filter(|k| !used.contains_key(*k))
        .collect();
    if !stale.is_empty() {
        if ratchet {
            let kept: Vec<&str> = allowlist
                .iter()
                .filter(|k| used.contains_key(*k))
                .map(String::as_str)
                .collect();
            let mut out = allowlist_header();
            for k in &kept {
                out.push_str(k);
                out.push('\n');
            }
            if let Err(err) = std::fs::write(&allowlist_path, out) {
                eprintln!("qcm-lint: cannot rewrite allowlist: {err}");
                return ExitCode::from(2);
            }
            println!(
                "qcm-lint: ratcheted allowlist down by {} entr{} ({} remain)",
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" },
                kept.len()
            );
        } else {
            failed = true;
            eprintln!(
                "qcm-lint: {} stale allowlist entr{} — the violation no longer \
                 exists, so the entry must go (run `qcm-lint --ratchet`):\n",
                stale.len(),
                if stale.len() == 1 { "y" } else { "ies" }
            );
            for k in &stale {
                eprintln!("  {k}");
            }
        }
    }

    if failed {
        eprintln!(
            "\nThe allowlist ({}) only shrinks: fix new violations instead of \
             adding entries.",
            allowlist_path.display()
        );
        ExitCode::FAILURE
    } else {
        println!(
            "qcm-lint: clean — {} file(s) scanned, {} grandfathered site(s) remain",
            files.len(),
            used.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    }
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Per-line classification shared by all rules. `code` is the line with
/// line comments stripped; lines inside block comments come out empty.
struct CodeLine {
    code: String,
    raw: String,
}

fn strip_comments(text: &str) -> Vec<CodeLine> {
    let mut in_block = false;
    text.lines()
        .map(|raw| {
            let mut code = String::with_capacity(raw.len());
            let bytes = raw.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                if in_block {
                    if raw[i..].starts_with("*/") {
                        in_block = false;
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if raw[i..].starts_with("/*") {
                    in_block = true;
                    i += 2;
                } else if raw[i..].starts_with("//") {
                    break;
                } else {
                    code.push(raw[i..].chars().next().expect("in-bounds char"));
                    i += raw[i..].chars().next().map_or(1, char::len_utf8);
                }
            }
            CodeLine {
                code,
                raw: raw.to_string(),
            }
        })
        .collect()
}

fn scan_file(rel: &str, text: &str, out: &mut Vec<Violation>) {
    let lines = strip_comments(text);
    let in_src = rel.contains("/src/");
    let basename = rel.rsplit('/').next().unwrap_or(rel);

    // The hot-path and ordering rules stop at the first `#[cfg(test)]`:
    // test modules sit at the bottom of their files in this workspace,
    // and tests are free to allocate and assert.
    let test_cutoff = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }

        // Rule 1: sync-facade policy (all scanned files).
        for pat in ["std::sync::", "std::thread::", "parking_lot::"] {
            if code.contains(pat) {
                out.push(Violation {
                    rule: "sync-facade",
                    path: rel.to_string(),
                    line: idx + 1,
                    content: code.trim().to_string(),
                    message: format!(
                        "direct `{pat}` reference; import from `qcm_sync` instead \
                         (the facade is what makes this code model-checkable)"
                    ),
                });
            }
        }
        if code.contains("use qcm_sync::atomic::Ordering::") {
            out.push(Violation {
                rule: "ordering-justification",
                path: rel.to_string(),
                line: idx + 1,
                content: code.trim().to_string(),
                message: "import `Ordering` and spell the variant at each call site \
                          so the justification comment sits next to the choice"
                    .to_string(),
            });
        }

        // Rule 2: ordering justifications (library sources, non-test).
        if in_src && idx < test_cutoff {
            let uses_ordering = ORDERING_VARIANTS.iter().any(|v| code.contains(v));
            if uses_ordering && !ordering_justified(&lines, idx) {
                out.push(Violation {
                    rule: "ordering-justification",
                    path: rel.to_string(),
                    line: idx + 1,
                    content: code.trim().to_string(),
                    message: "memory-ordering choice without a `// ordering:` \
                              justification on the line or in the contiguous \
                              block above"
                        .to_string(),
                });
            }
        }

        // Rule 3: hot-path hygiene (non-test regions of the listed files).
        if in_src && HOT_PATH_FILES.contains(&basename) && idx < test_cutoff {
            for pat in HOT_PATH_FORBIDDEN {
                if code.contains(pat) {
                    out.push(Violation {
                        rule: "hot-path",
                        path: rel.to_string(),
                        line: idx + 1,
                        content: code.trim().to_string(),
                        message: format!(
                            "`{pat}` in a mining hot-path module; use the scratch \
                             arena / error returns instead"
                        ),
                    });
                }
            }
        }

        // Rule 5: clock facade — wall-clock readings go through
        // `qcm_obs::clock`, so span timestamps and timing measurements
        // share one epoch. (Matches brace imports too: any line that
        // names both `std::time::` and `Instant`.)
        if in_src
            && idx < test_cutoff
            && !INSTANT_OK_PREFIXES.iter().any(|p| rel.starts_with(p))
            && code.contains("std::time::")
            && code.contains("Instant")
        {
            out.push(Violation {
                rule: "clock-facade",
                path: rel.to_string(),
                line: idx + 1,
                content: code.trim().to_string(),
                message: "direct `std::time::Instant`; import from \
                          `qcm_obs::clock` so traces and timings share one \
                          epoch"
                    .to_string(),
            });
        }

        // Rule 6: net boundary — the wire surface lives in one crate.
        if !NET_OK_PREFIXES.iter().any(|p| rel.starts_with(p)) && code.contains("std::net::") {
            out.push(Violation {
                rule: "net-boundary",
                path: rel.to_string(),
                line: idx + 1,
                content: code.trim().to_string(),
                message: "direct `std::net::` outside crates/http and \
                          crates/bench; expose the behaviour through \
                          `qcm_http::Api` instead of opening a socket here"
                    .to_string(),
            });
        }

        // Rule 4: no stray prints in library crates.
        if in_src && !PRINT_OK_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            for pat in ["println!", "eprintln!", "print!(", "eprint!(", "dbg!("] {
                if code.contains(pat) && idx < test_cutoff {
                    out.push(Violation {
                        rule: "no-stray-print",
                        path: rel.to_string(),
                        line: idx + 1,
                        content: code.trim().to_string(),
                        message: format!(
                            "`{pat}` in a library crate; route output through the \
                             CLI/bench layers or a returned value"
                        ),
                    });
                }
            }
        }
    }
}

/// True when line `idx` (0-based) carries or inherits a `// ordering:`
/// justification: on the same line, or anywhere in the contiguous run
/// of non-blank lines directly above it.
fn ordering_justified(lines: &[CodeLine], idx: usize) -> bool {
    if lines[idx].raw.contains("// ordering:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let raw = &lines[i].raw;
        if raw.trim().is_empty() {
            return false;
        }
        if raw.contains("// ordering:") {
            return true;
        }
    }
    false
}

// ---- allowlist -------------------------------------------------------

fn allowlist_header() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# qcm-lint allowlist — grandfathered violations.");
    let _ = writeln!(s, "# Format: rule<TAB>path<TAB>offending line (trimmed).");
    let _ = writeln!(
        s,
        "# This file only shrinks: remove entries as sites are fixed"
    );
    let _ = writeln!(s, "# (`qcm-lint --ratchet` drops stale ones). Never add.");
    s
}

fn load_allowlist(path: &Path) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .map(str::trim_end)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect(),
        Err(_) => Vec::new(),
    }
}

// ---- vendor integrity ------------------------------------------------

fn vendor_manifest(root: &Path) -> Result<String, String> {
    let vendor = root.join("vendor");
    let mut files = Vec::new();
    collect_all_files(&vendor, &mut files)
        .map_err(|err| format!("cannot walk {}: {err}", vendor.display()))?;
    files.sort();
    let mut out = String::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel == "vendor/MANIFEST.sha256" {
            continue;
        }
        let bytes = std::fs::read(&path).map_err(|err| format!("cannot read {rel}: {err}"))?;
        let _ = writeln!(out, "{}  {}", sha256::hex_digest(&bytes), rel);
    }
    Ok(out)
}

fn collect_all_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_all_files(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

fn vendor_check(root: &Path) -> ExitCode {
    let manifest_path = root.join("vendor/MANIFEST.sha256");
    let committed = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "qcm-lint: cannot read {} ({err}); generate it with \
                 `qcm-lint vendor-hash > vendor/MANIFEST.sha256`",
                manifest_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let actual = match vendor_manifest(root) {
        Ok(m) => m,
        Err(err) => {
            eprintln!("qcm-lint: {err}");
            return ExitCode::from(2);
        }
    };
    let parse = |text: &str| -> BTreeMap<String, String> {
        text.lines()
            .filter_map(|l| l.split_once("  "))
            .map(|(hash, path)| (path.to_string(), hash.to_string()))
            .collect()
    };
    let want = parse(&committed);
    let got = parse(&actual);
    let mut failed = false;
    for (path, hash) in &got {
        match want.get(path) {
            None => {
                failed = true;
                eprintln!("qcm-lint: vendor file NOT in manifest: {path}");
            }
            Some(expected) if expected != hash => {
                failed = true;
                eprintln!("qcm-lint: vendor file MODIFIED: {path}");
            }
            Some(_) => {}
        }
    }
    for path in want.keys() {
        if !got.contains_key(path) {
            failed = true;
            eprintln!("qcm-lint: vendor file MISSING: {path}");
        }
    }
    if failed {
        eprintln!(
            "\nVendored stand-ins are frozen; regenerate the manifest only as \
             part of a reviewed vendor change."
        );
        ExitCode::FAILURE
    } else {
        println!("qcm-lint: vendor manifest OK ({} files)", got.len());
        ExitCode::SUCCESS
    }
}
