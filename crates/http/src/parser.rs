//! Hand-rolled HTTP/1.1 request parsing.
//!
//! The workspace vendors no external crates, so the request parser is
//! written here against the subset of RFC 9112 the service actually needs:
//! `GET`/`POST`/`PUT`/`DELETE`, fixed-length bodies via `Content-Length`,
//! and plain (non-obs-folded, non-chunked) headers. Everything else is
//! rejected with a typed [`ParseError`] that maps onto the wire taxonomy —
//! never a panic, which a proptest over arbitrary bytes enforces.
//!
//! Hard limits are part of the contract, not tuning: a front door that
//! buffers an unbounded request head or body converts one hostile client
//! into whole-service memory pressure.

use qcm::prelude::ErrorCode;
use std::str;

/// Upper bound on the request line + headers block, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// The request methods the service routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `DELETE`
    Delete,
}

impl Method {
    fn parse(token: &str) -> Option<Method> {
        match token {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// A parsed request head: everything before the body.
#[derive(Debug)]
pub struct Head {
    /// The request method.
    pub method: Method,
    /// Decoded path component of the request target (no query string).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header fields in order, with lower-cased names.
    pub headers: Vec<(String, String)>,
}

impl Head {
    /// First value of a (lower-cased) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request's `Content-Length`, defaulting to 0 when absent.
    ///
    /// A malformed or over-limit length, or any `Transfer-Encoding`, is an
    /// error: the server only speaks fixed-length bodies.
    pub fn content_length(&self) -> Result<usize, ParseError> {
        if self.header("transfer-encoding").is_some() {
            return Err(ParseError::Unsupported("transfer-encoding not supported"));
        }
        match self.header("content-length") {
            None => Ok(0),
            Some(raw) => {
                let len: usize = raw
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::BadRequest("malformed content-length"))?;
                if len > MAX_BODY_BYTES {
                    return Err(ParseError::BodyTooLarge(len));
                }
                Ok(len)
            }
        }
    }

    /// Whether the client asked to close the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Typed parse failures; each maps to one HTTP status in the responder.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically invalid request (→ 400).
    BadRequest(&'static str),
    /// Request line + headers exceed [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`]
    /// (→ 431).
    HeadTooLarge,
    /// Declared body length exceeds [`MAX_BODY_BYTES`] (→ 413).
    BodyTooLarge(usize),
    /// Recognisable HTTP the server deliberately does not speak: unknown
    /// method or `Transfer-Encoding` (→ 501).
    Unsupported(&'static str),
}

impl ParseError {
    /// The stable taxonomy code this failure maps to — the same
    /// `ERROR_CODE_TABLE` row that supplies the HTTP status, so the wire
    /// `code` can never contradict the status line.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            ParseError::BadRequest(_) => ErrorCode::BadRequest,
            ParseError::HeadTooLarge => ErrorCode::HeadTooLarge,
            ParseError::BodyTooLarge(_) => ErrorCode::BodyTooLarge,
            ParseError::Unsupported(_) => ErrorCode::Unsupported,
        }
    }

    /// The HTTP status this failure answers with.
    pub fn http_status(&self) -> u16 {
        self.error_code().http_status()
    }

    /// Human-readable message for the error body.
    pub fn message(&self) -> String {
        match self {
            ParseError::BadRequest(detail) => format!("malformed request: {detail}"),
            ParseError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes or {MAX_HEADERS} headers")
            }
            ParseError::BodyTooLarge(len) => {
                format!("request body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
            }
            ParseError::Unsupported(detail) => format!("unsupported request: {detail}"),
        }
    }
}

/// Finds the end of the request head (the byte index just past
/// `\r\n\r\n`), or `None` while more input is needed.
///
/// Returns `Err(HeadTooLarge)` once the buffer exceeds [`MAX_HEAD_BYTES`]
/// without a terminator, so the connection loop stops reading instead of
/// buffering a hostile head forever.
pub fn find_head_end(buf: &[u8]) -> Result<Option<usize>, ParseError> {
    if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        let end = pos + 4;
        if end > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(Some(end));
    }
    if buf.len() >= MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }
    Ok(None)
}

/// Parses a complete request head (bytes up to and including the blank
/// line). Total function over arbitrary bytes: any input either yields a
/// `Head` or a typed error.
pub fn parse_head(bytes: &[u8]) -> Result<Head, ParseError> {
    let text = str::from_utf8(bytes).map_err(|_| ParseError::BadRequest("head is not UTF-8"))?;
    let text = text
        .strip_suffix("\r\n\r\n")
        .ok_or(ParseError::BadRequest("missing CRLF CRLF terminator"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.chars().any(|c| c.is_control()) {
        return Err(ParseError::BadRequest("control bytes in request line"));
    }

    let mut parts = request_line.split(' ');
    let (Some(method_token), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest(
            "request line is not `METHOD target HTTP/1.x`",
        ));
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::Unsupported("unknown HTTP version"));
    }
    let method = Method::parse(method_token).ok_or(ParseError::Unsupported("unknown method"))?;
    let (path, query) = parse_target(target)?;

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::HeadTooLarge);
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::Unsupported("obsolete header folding"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::BadRequest("header without a colon"))?;
        if name.is_empty() || name.chars().any(|c| c.is_control() || c.is_whitespace()) {
            return Err(ParseError::BadRequest("invalid header name"));
        }
        let value = value.trim();
        if value.chars().any(|c| c.is_control()) {
            return Err(ParseError::BadRequest("control bytes in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }
    Ok(Head {
        method,
        path,
        query,
        headers,
    })
}

/// Splits a request target into decoded path and query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), ParseError> {
    if !target.starts_with('/') {
        return Err(ParseError::BadRequest("target must be absolute path"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    if path.split('/').any(|seg| seg == "..") {
        return Err(ParseError::BadRequest("dot-dot path segment"));
    }
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

/// Decodes `%XX` escapes and `+`-for-space; rejects malformed escapes and
/// non-UTF-8 results.
fn percent_decode(raw: &str) -> Result<String, ParseError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or(ParseError::BadRequest("truncated percent escape"))?;
                // RFC 3986 escapes are exactly two hex digits; from_str_radix
                // alone would also accept a sign ("%+5" → 0x5).
                if !hex.iter().all(u8::is_ascii_hexdigit) {
                    return Err(ParseError::BadRequest("malformed percent escape"));
                }
                let hex = str::from_utf8(hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or(ParseError::BadRequest("malformed percent escape"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::BadRequest("target is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(raw: &str) -> Result<Head, ParseError> {
        parse_head(raw.as_bytes())
    }

    #[test]
    fn parses_a_full_request_head() {
        let h = head(
            "POST /v1/jobs?wait_ms=250&x=a%20b HTTP/1.1\r\n\
             Host: localhost\r\n\
             Authorization: Bearer sekrit\r\n\
             Content-Length: 12\r\n\r\n",
        )
        .unwrap();
        assert_eq!(h.method, Method::Post);
        assert_eq!(h.path, "/v1/jobs");
        assert_eq!(h.query_param("wait_ms"), Some("250"));
        assert_eq!(h.query_param("x"), Some("a b"));
        assert_eq!(h.header("authorization"), Some("Bearer sekrit"));
        assert_eq!(h.content_length().unwrap(), 12);
        assert!(!h.wants_close());
    }

    #[test]
    fn rejects_malformed_heads_with_typed_errors() {
        assert!(matches!(head("\r\n\r\n"), Err(ParseError::BadRequest(_))));
        assert!(matches!(
            head("BREW /pot HTTP/1.1\r\n\r\n"),
            Err(ParseError::Unsupported(_))
        ));
        assert!(matches!(
            head("GET /x HTTP/3.0\r\n\r\n"),
            Err(ParseError::Unsupported(_))
        ));
        assert!(matches!(
            head("GET relative HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            head("GET /../etc/passwd HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            head("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        assert!(matches!(
            head("GET /%zz HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
        // Signed "hex" is not an RFC 3986 escape even though from_str_radix
        // would parse it.
        for raw in ["GET /%+5 HTTP/1.1\r\n\r\n", "GET /%-5 HTTP/1.1\r\n\r\n"] {
            assert!(matches!(head(raw), Err(ParseError::BadRequest(_))), "{raw}");
        }
        assert!(matches!(
            parse_head(b"GET /\xff HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequest(_))
        ));
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(head(&raw), Err(ParseError::HeadTooLarge)));

        let huge = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert_eq!(find_head_end(&huge), Err(ParseError::HeadTooLarge));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), Ok(None));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\ntail"), Ok(Some(18)));

        let h = head(&format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ))
        .unwrap();
        assert!(matches!(
            h.content_length(),
            Err(ParseError::BodyTooLarge(_))
        ));
        let h = head("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap();
        assert!(matches!(
            h.content_length(),
            Err(ParseError::Unsupported(_))
        ));
        let h = head("POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n").unwrap();
        assert!(matches!(h.content_length(), Err(ParseError::BadRequest(_))));
    }

    #[test]
    fn parse_errors_map_to_distinct_statuses() {
        assert_eq!(ParseError::BadRequest("x").http_status(), 400);
        assert_eq!(ParseError::HeadTooLarge.http_status(), 431);
        assert_eq!(ParseError::BodyTooLarge(9).http_status(), 413);
        assert_eq!(ParseError::Unsupported("x").http_status(), 501);
        assert!(!ParseError::BodyTooLarge(9).message().is_empty());
        // The wire code comes from the same taxonomy row as the status, so
        // a 413/431/501 can never carry a "bad_request" body.
        for e in [
            ParseError::BadRequest("x"),
            ParseError::HeadTooLarge,
            ParseError::BodyTooLarge(9),
            ParseError::Unsupported("x"),
        ] {
            assert_eq!(e.error_code().http_status(), e.http_status());
        }
        assert_eq!(
            ParseError::HeadTooLarge.error_code().as_str(),
            "head_too_large"
        );
        assert_eq!(
            ParseError::BodyTooLarge(9).error_code().as_str(),
            "body_too_large"
        );
        assert_eq!(
            ParseError::Unsupported("x").error_code().as_str(),
            "unsupported"
        );
    }
}
