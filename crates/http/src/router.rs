//! The versioned REST routing table.

use crate::api::Api;
use crate::parser::{Head, Method};
use crate::response::Response;
use crate::wire;
use qcm::prelude::{ApiError, ErrorCode};
use qcm_obs::json::{object, Json};
use std::time::Duration;

/// Routes one parsed request to its handler; every failure becomes the
/// standard error response (the connection stays usable).
pub fn route(api: &Api, head: &Head, body: &[u8]) -> Response {
    dispatch(api, head, body).unwrap_or_else(|e| Response::error(&e))
}

fn dispatch(api: &Api, head: &Head, body: &[u8]) -> Result<Response, ApiError> {
    let segments: Vec<&str> = head.path.split('/').filter(|s| !s.is_empty()).collect();
    match (head.method, segments.as_slice()) {
        (Method::Get, ["healthz"]) => Ok(Response::json(
            200,
            &object(vec![("status", Json::from("ok"))]),
        )),
        (Method::Get, ["metrics"]) => Ok(Response::text(200, api.metrics_prometheus())),
        (Method::Post, ["v1", "jobs"]) => {
            let tenant = authenticate(api, head)?;
            let request = wire::submit_request_from_json(body)?;
            let response = api.submit(&request, &tenant)?;
            Ok(Response::json(
                202,
                &wire::submit_response_to_json(&response),
            ))
        }
        (Method::Get, ["v1", "jobs", id]) => {
            let tenant = authenticate(api, head)?;
            let id = parse_job_id(id)?;
            let wait = match head.query_param("wait_ms") {
                None => Duration::ZERO,
                Some(raw) => Duration::from_millis(raw.parse::<u64>().map_err(|_| {
                    ApiError::bad_request(format!("invalid wait_ms value {raw:?}"))
                })?),
            };
            let view = api.job(id, wait, &tenant)?;
            Ok(Response::json(200, &wire::job_view_to_json(&view)))
        }
        (Method::Delete, ["v1", "jobs", id]) => {
            let tenant = authenticate(api, head)?;
            let view = api.cancel(parse_job_id(id)?, &tenant)?;
            Ok(Response::json(200, &wire::job_view_to_json(&view)))
        }
        (Method::Get, ["v1", "graphs"]) => {
            authenticate(api, head)?;
            let rows: Vec<Json> = api.graphs().iter().map(wire::graph_info_to_json).collect();
            Ok(Response::json(
                200,
                &object(vec![("graphs", Json::Array(rows))]),
            ))
        }
        (Method::Put, ["v1", "graphs", name]) => {
            authenticate(api, head)?;
            let path = wire::graph_path_from_json(body)?;
            let info = api.register_graph(name, &path)?;
            Ok(Response::json(200, &wire::graph_info_to_json(&info)))
        }
        _ => Err(ApiError::new(
            ErrorCode::NotFound,
            format!("no route for {} {}", method_name(head.method), head.path),
        )),
    }
}

/// Resolves the request's tenant from `Authorization: Bearer` /
/// `X-Qcm-Tenant` against the API's auth table.
fn authenticate(api: &Api, head: &Head) -> Result<String, ApiError> {
    let bearer = head
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .map(str::trim);
    api.auth().tenant(bearer, head.header("x-qcm-tenant"))
}

fn parse_job_id(raw: &str) -> Result<u64, ApiError> {
    raw.parse::<u64>()
        .map_err(|_| ApiError::bad_request(format!("invalid job id {raw:?}")))
}

fn method_name(method: Method) -> &'static str {
    match method {
        Method::Get => "GET",
        Method::Post => "POST",
        Method::Put => "PUT",
        Method::Delete => "DELETE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::AuthConfig;
    use crate::parser::parse_head;
    use qcm_service::ServiceConfig;

    fn head_of(raw: &str) -> Head {
        parse_head(raw.as_bytes()).unwrap()
    }

    #[test]
    fn unknown_routes_and_ids_answer_404_with_stable_codes() {
        let api = Api::start(ServiceConfig::default(), AuthConfig::open());
        let response = route(&api, &head_of("GET /v2/jobs HTTP/1.1\r\n\r\n"), b"");
        assert_eq!(response.status, 404);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"code\":\"not_found\""), "{body}");

        let response = route(&api, &head_of("GET /v1/jobs/999 HTTP/1.1\r\n\r\n"), b"");
        assert_eq!(response.status, 404);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("\"code\":\"unknown_job\""), "{body}");

        let response = route(&api, &head_of("GET /v1/jobs/abc HTTP/1.1\r\n\r\n"), b"");
        assert_eq!(response.status, 400);
        api.shutdown();
    }

    #[test]
    fn healthz_answers_without_auth_but_v1_requires_tokens_when_configured() {
        let api = Api::start(
            ServiceConfig::default(),
            AuthConfig::with_tokens([("sekrit".to_string(), "alpha".to_string())]),
        );
        let response = route(&api, &head_of("GET /healthz HTTP/1.1\r\n\r\n"), b"");
        assert_eq!(response.status, 200);

        let response = route(&api, &head_of("GET /v1/graphs HTTP/1.1\r\n\r\n"), b"");
        assert_eq!(response.status, 401);

        let response = route(
            &api,
            &head_of("GET /v1/graphs HTTP/1.1\r\nAuthorization: Bearer sekrit\r\n\r\n"),
            b"",
        );
        assert_eq!(response.status, 200);
        api.shutdown();
    }
}
