//! HTTP/1.1 response rendering.

use qcm::prelude::ApiError;
use qcm_obs::json::{object, Json};

/// A response under construction: status, extra headers, body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present set (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Content type of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: &Json) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.render().into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (the Prometheus exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// The standard error response: the shared
    /// `{"error":{"code":…,"message":…}}` body at the code's status, plus
    /// `Retry-After` when the code is retryable-by-waiting (the
    /// load-shedding SLO made visible on the wire).
    pub fn error(err: &ApiError) -> Response {
        let body = object(vec![(
            "error",
            object(vec![
                ("code", Json::from(err.code.as_str())),
                ("message", Json::from(err.message.as_str())),
            ]),
        )]);
        let mut response = Response::json(err.code.http_status(), &body);
        if let Some(secs) = err.code.retry_after_secs() {
            response
                .headers
                .push(("Retry-After".to_string(), secs.to_string()));
        }
        response
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialises the response, closing or keeping the connection per
    /// `keep_alive`.
    pub fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
                self.status,
                reason(self.status),
                self.content_type,
                self.body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            )
            .as_bytes(),
        );
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm::prelude::ErrorCode;

    #[test]
    fn renders_status_line_headers_and_body() {
        let rendered = Response::json(200, &object(vec![("ok", Json::from(true))])).render(true);
        let text = String::from_utf8(rendered).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }

    #[test]
    fn shed_errors_carry_retry_after_and_the_stable_code() {
        let err = ApiError::new(ErrorCode::Overloaded, "queue full");
        let text = String::from_utf8(Response::error(&err).render(false)).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("\"code\":\"overloaded\""), "{text}");
        // Non-retryable codes have no Retry-After.
        let err = ApiError::new(ErrorCode::UnknownJob, "nope");
        let text = String::from_utf8(Response::error(&err).render(true)).unwrap();
        assert!(!text.contains("Retry-After"), "{text}");
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
    }
}
