//! The transport-independent handler table.
//!
//! Every front door — the versioned HTTP surface in this crate and the
//! deprecated `qcm serve` line protocol in the CLI — is a thin adapter over
//! this one struct: parse the wire format into the shared DTOs
//! (`qcm_core::api`), call the matching [`Api`] method, render the result.
//! Behaviour (auth, graph resolution, admission, long-poll) therefore
//! cannot diverge between transports.

use crate::registry::GraphRegistry;
use qcm::prelude::{ApiError, ErrorCode, GraphInfo, JobView, SubmitRequest, SubmitResponse};
use qcm::RunOutcome;
use qcm_service::{
    JobId, JobRequest, JobResult, JobStatus, MetricsSnapshot, MiningService, Priority,
    ServiceConfig, ServiceError,
};
use qcm_sync::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Longest long-poll wait the service grants, whatever the client asks for:
/// a connection-pool thread parked in `poll_fetch` must come back in
/// bounded time.
pub const MAX_WAIT: Duration = Duration::from_secs(30);

/// Authentication configuration: bearer token → tenant.
///
/// With no tokens configured the service runs *open* (every caller is
/// tenant `default`, or whatever `X-Qcm-Tenant` names — convenient for
/// local use and for the line protocol). With tokens configured, a missing
/// or unknown `Authorization: Bearer` is a 401.
#[derive(Default)]
pub struct AuthConfig {
    tokens: HashMap<String, String>,
}

impl AuthConfig {
    /// Open access (single-machine/dev mode).
    pub fn open() -> AuthConfig {
        AuthConfig::default()
    }

    /// Requires one of `token → tenant` mappings.
    pub fn with_tokens(tokens: impl IntoIterator<Item = (String, String)>) -> AuthConfig {
        AuthConfig {
            tokens: tokens.into_iter().collect(),
        }
    }

    /// Whether any tokens are configured.
    pub fn requires_token(&self) -> bool {
        !self.tokens.is_empty()
    }

    /// Resolves the tenant for a request.
    pub fn tenant(
        &self,
        bearer: Option<&str>,
        tenant_header: Option<&str>,
    ) -> Result<String, ApiError> {
        if self.tokens.is_empty() {
            return Ok(tenant_header.unwrap_or("default").to_string());
        }
        let token = bearer.ok_or_else(|| {
            ApiError::new(
                ErrorCode::Unauthorized,
                "missing Authorization: Bearer token",
            )
        })?;
        self.tokens
            .get(token)
            .cloned()
            .ok_or_else(|| ApiError::new(ErrorCode::Unauthorized, "unknown auth token"))
    }
}

/// The shared service API: one mining service, one graph registry, one auth
/// table.
pub struct Api {
    service: MiningService,
    graphs: Mutex<GraphRegistry>,
    auth: AuthConfig,
}

impl Api {
    /// Starts a mining service with `config` behind a fresh registry.
    pub fn start(config: ServiceConfig, auth: AuthConfig) -> Api {
        Api::over(MiningService::start(config), auth)
    }

    /// Wraps an already-running service.
    pub fn over(service: MiningService, auth: AuthConfig) -> Api {
        Api {
            service,
            graphs: Mutex::new(GraphRegistry::default()),
            auth,
        }
    }

    /// Confines path-based graph loading (`POST /v1/jobs {"graph": path}`,
    /// `PUT /v1/graphs {"path": path}`) to `root`: requests naming a path
    /// outside it answer `unknown_graph` without touching the filesystem.
    /// Network front doors should always set this — without it any caller
    /// can make the server stat/read arbitrary server-local files.
    pub fn with_graph_root(self, root: impl Into<std::path::PathBuf>) -> Api {
        self.graphs.lock().set_root(root.into());
        self
    }

    /// The auth table (transports resolve the tenant before dispatching).
    pub fn auth(&self) -> &AuthConfig {
        &self.auth
    }

    /// The underlying service (for metrics snapshots and shutdown).
    pub fn service(&self) -> &MiningService {
        &self.service
    }

    /// Actual graph loads so far (stays flat across repeat submits of an
    /// unchanged path — the registry's stat cache at work).
    pub fn graph_loads(&self) -> u64 {
        self.graphs.lock().loads()
    }

    /// `POST /v1/jobs` / line-protocol `submit`: validates, resolves the
    /// graph, submits, and reports the job's immediate state (a repeat of a
    /// cached query completes at submit time with `cache_hit`).
    pub fn submit(
        &self,
        request: &SubmitRequest,
        tenant: &str,
    ) -> Result<SubmitResponse, ApiError> {
        let priority = Priority::parse(&request.priority).ok_or_else(|| {
            ApiError::bad_request(format!(
                "invalid priority {:?} (expected low, normal or high)",
                request.priority
            ))
        })?;
        let loaded = self.graphs.lock().resolve(&request.graph)?;
        let mut job_request = JobRequest::new(loaded.graph, request.gamma, request.min_size)
            .tenant(tenant)
            .priority(priority)
            .fingerprint(loaded.fingerprint);
        if let Some(ms) = request.deadline_ms {
            job_request = job_request.deadline(Duration::from_millis(ms));
        }
        let job = self.service.submit(job_request).map_err(ApiError::from)?;
        // A result-cache hit completes synchronously inside submit; report
        // it so clients can skip the status poll entirely.
        let cache_hit = match self.service.try_fetch(job) {
            Ok(Some(result)) => result.cache_hit,
            _ => false,
        };
        let status = self.service.status(job).map_err(ApiError::from)?;
        Ok(SubmitResponse {
            job: job.raw(),
            status: status.to_string(),
            cache_hit,
        })
    }

    /// `GET /v1/jobs/{id}?wait_ms=` / line-protocol `status` + `fetch`:
    /// waits up to `wait` (clamped to [`MAX_WAIT`]) for a terminal state,
    /// then describes the job as it stands. `tenant` is the authenticated
    /// caller: with tokens configured, another tenant's job answers
    /// `unknown_job` (ids are sequential, so resource access must be
    /// tenant-scoped, not just admission).
    pub fn job(&self, id: u64, wait: Duration, tenant: &str) -> Result<JobView, ApiError> {
        let job = JobId::from_raw(id);
        self.authorize_job(job, tenant)?;
        match self.service.poll_fetch(job, wait.min(MAX_WAIT)) {
            Ok(Some(result)) => Ok(self.view(job, result)),
            // Deadline expired with the job still queued/running — that is a
            // successful status response, not an error.
            Ok(None) => {
                let status = self.service.status(job).map_err(ApiError::from)?;
                Ok(JobView {
                    job: id,
                    status: status.to_string(),
                    tenant: String::new(),
                    outcome: None,
                    cache_hit: None,
                    num_maximal: None,
                    raw_reported: None,
                    mining_ms: None,
                })
            }
            // Cancelled-while-queued is a terminal state of the resource,
            // not a request failure: report it as a view.
            Err(ServiceError::Cancelled(_)) => Ok(JobView {
                job: id,
                status: JobStatus::Cancelled.to_string(),
                tenant: String::new(),
                outcome: Some("cancelled".to_string()),
                cache_hit: None,
                num_maximal: None,
                raw_reported: None,
                mining_ms: None,
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// `DELETE /v1/jobs/{id}` / line-protocol `cancel`: requests
    /// cancellation and reports the job's state at that instant. Scoped to
    /// the authenticated `tenant` exactly like [`Api::job`].
    pub fn cancel(&self, id: u64, tenant: &str) -> Result<JobView, ApiError> {
        let job = JobId::from_raw(id);
        self.authorize_job(job, tenant)?;
        let status = self.service.cancel(job).map_err(ApiError::from)?;
        Ok(JobView {
            job: id,
            status: status.to_string(),
            tenant: String::new(),
            outcome: None,
            cache_hit: None,
            num_maximal: None,
            raw_reported: None,
            mining_ms: None,
        })
    }

    /// Enforces job ownership when tokens are configured. In open mode any
    /// caller may name any tenant anyway, so the check would be theatre —
    /// current (local/dev) behaviour is kept. A mismatch answers the same
    /// `unknown_job` as a never-issued id, so the response does not reveal
    /// whether the id exists.
    fn authorize_job(&self, job: JobId, tenant: &str) -> Result<(), ApiError> {
        if !self.auth.requires_token() {
            return Ok(());
        }
        let owner = self.service.tenant_of(job).map_err(ApiError::from)?;
        if owner != tenant {
            return Err(ServiceError::UnknownJob(job).into());
        }
        Ok(())
    }

    /// `GET /v1/graphs`: the registered (named) graphs.
    pub fn graphs(&self) -> Vec<GraphInfo> {
        self.graphs.lock().list()
    }

    /// `PUT /v1/graphs/{name}`: registers `name` for the snapshot or edge
    /// list at `path`.
    pub fn register_graph(&self, name: &str, path: &str) -> Result<GraphInfo, ApiError> {
        self.graphs.lock().register(name, path)
    }

    /// `GET /metrics`: the Prometheus text exposition of the unified
    /// registry (service counters/gauges/latency quantiles plus the graph
    /// perf counters).
    pub fn metrics_prometheus(&self) -> String {
        let registry = qcm_obs::Registry::new();
        self.service.metrics().publish(&registry);
        qcm_graph::neighborhoods::perf::snapshot().publish(&registry);
        qcm_obs::prometheus::render(&registry)
    }

    /// The raw metrics snapshot (the line protocol's one-line `metrics`
    /// view).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.service.metrics()
    }

    /// Graceful shutdown: drains admitted jobs, joins the worker pool.
    pub fn shutdown(self) {
        self.service.shutdown();
    }

    fn view(&self, job: JobId, result: JobResult) -> JobView {
        let status = self
            .service
            .status(job)
            .map(|s| s.to_string())
            .unwrap_or_else(|_| JobStatus::Completed.to_string());
        JobView {
            job: job.raw(),
            status,
            tenant: result.tenant.clone(),
            outcome: Some(
                match result.outcome() {
                    RunOutcome::Complete => "complete",
                    RunOutcome::Cancelled => "cancelled",
                    RunOutcome::DeadlineExceeded => "deadline_exceeded",
                    RunOutcome::Faulted => "faulted",
                }
                .to_string(),
            ),
            cache_hit: Some(result.cache_hit),
            num_maximal: Some(result.maximal().len()),
            raw_reported: Some(result.answer.raw_reported),
            mining_ms: Some(result.answer.mining_time.as_millis() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::io;

    fn with_graph_file<R>(tag: &str, f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("qcm_http_api_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(9);
        io::write_edge_list_file(&dataset.graph, &path).unwrap();
        let result = f(&path.to_string_lossy());
        std::fs::remove_dir_all(&dir).ok();
        result
    }

    fn submit_request(path: &str) -> SubmitRequest {
        SubmitRequest::new(path, 0.8, 6)
    }

    #[test]
    fn submit_then_long_poll_round_trip_with_cache_hit_on_repeat() {
        with_graph_file("roundtrip", |path| {
            let api = Api::start(ServiceConfig::default(), AuthConfig::open());
            let cold = api.submit(&submit_request(path), "alpha").unwrap();
            assert!(!cold.cache_hit);
            let view = api.job(cold.job, Duration::from_secs(60), "alpha").unwrap();
            assert_eq!(view.status, "completed");
            assert_eq!(view.outcome.as_deref(), Some("complete"));
            assert_eq!(view.tenant, "alpha");
            assert!(view.num_maximal.unwrap() > 0);

            let hot = api.submit(&submit_request(path), "beta").unwrap();
            assert!(hot.cache_hit, "repeat query must be served from cache");
            assert_eq!(hot.status, "completed");
            assert_eq!(
                api.graph_loads(),
                1,
                "repeat submit must not reload the file"
            );
            api.shutdown();
        });
    }

    #[test]
    fn zero_wait_is_a_status_probe_and_unknown_jobs_are_typed() {
        with_graph_file("probe", |path| {
            let api = Api::start(
                ServiceConfig {
                    start_paused: true,
                    ..ServiceConfig::default()
                },
                AuthConfig::open(),
            );
            let submitted = api.submit(&submit_request(path), "t").unwrap();
            let view = api.job(submitted.job, Duration::ZERO, "t").unwrap();
            assert_eq!(view.status, "queued");
            assert_eq!(view.outcome, None);
            let err = api.job(999, Duration::ZERO, "t").unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownJob);
            let cancelled = api.cancel(submitted.job, "t").unwrap();
            assert_eq!(cancelled.status, "cancelled");
            let view = api.job(submitted.job, Duration::ZERO, "t").unwrap();
            assert_eq!(view.status, "cancelled");
            api.shutdown();
        });
    }

    #[test]
    fn auth_modes_resolve_tenants_and_reject_bad_tokens() {
        let open = AuthConfig::open();
        assert_eq!(open.tenant(None, None).unwrap(), "default");
        assert_eq!(open.tenant(None, Some("lab")).unwrap(), "lab");

        let auth = AuthConfig::with_tokens([("sekrit".to_string(), "alpha".to_string())]);
        assert!(auth.requires_token());
        assert_eq!(auth.tenant(Some("sekrit"), None).unwrap(), "alpha");
        assert_eq!(
            auth.tenant(None, None).unwrap_err().code,
            ErrorCode::Unauthorized
        );
        assert_eq!(
            auth.tenant(Some("wrong"), None).unwrap_err().code,
            ErrorCode::Unauthorized
        );
    }

    #[test]
    fn job_reads_and_cancels_are_tenant_scoped_under_token_auth() {
        with_graph_file("owner", |path| {
            let api = Api::start(
                ServiceConfig {
                    start_paused: true,
                    cache_capacity: 0,
                    ..ServiceConfig::default()
                },
                AuthConfig::with_tokens([
                    ("tok-a".to_string(), "alpha".to_string()),
                    ("tok-b".to_string(), "beta".to_string()),
                ]),
            );
            let submitted = api.submit(&submit_request(path), "alpha").unwrap();

            // Another authenticated tenant sees (and can cancel) nothing —
            // and the error is indistinguishable from a never-issued id.
            let err = api.job(submitted.job, Duration::ZERO, "beta").unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownJob);
            assert_eq!(err.message, format!("unknown job {}", submitted.job));
            let err = api.cancel(submitted.job, "beta").unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownJob);

            // The owner still has full access.
            let view = api.job(submitted.job, Duration::ZERO, "alpha").unwrap();
            assert_eq!(view.status, "queued");
            let cancelled = api.cancel(submitted.job, "alpha").unwrap();
            assert_eq!(cancelled.status, "cancelled");
            api.shutdown();
        });
    }

    #[test]
    fn metrics_exposition_is_wellformed() {
        with_graph_file("prom", |path| {
            let api = Api::start(ServiceConfig::default(), AuthConfig::open());
            api.submit(&submit_request(path), "t").unwrap();
            api.job(1, Duration::from_secs(60), "t").unwrap();
            let text = api.metrics_prometheus();
            qcm_obs::prometheus::check_text(&text).expect("exposition must be well-formed");
            assert!(text.contains("qcm_service_jobs_mined_total"));
            api.shutdown();
        });
    }
}
