//! The service graph registry: named graphs plus path-loaded graphs with
//! stat-based staleness.
//!
//! Loading a graph costs a full file read plus an `O(|V| + |E|)` content
//! hash (the hash keys the result cache, so it cannot be skipped on a cold
//! load). The registry makes repeat submits cheap *and* correct:
//!
//! * a path entry is cached together with the file's `(mtime, len)` stat at
//!   load time — a repeat submit of the same path stats the file (one
//!   syscall) and reuses the resident graph and fingerprint only while both
//!   match, so an edited file is reloaded and re-hashed instead of serving
//!   a stale answer (the previous per-path cache never re-checked the
//!   file);
//! * a named entry (`PUT /v1/graphs/{name}`) pins the graph as loaded —
//!   names are explicit registrations, refreshed by re-`PUT`ting.
//!
//! Path entries are LRU-bounded like every other long-lived structure in
//! the service; in-flight jobs keep their own `Arc`, so eviction never
//! invalidates a running job.

use qcm::prelude::{ApiError, ErrorCode, GraphInfo};
use qcm_graph::{io, Graph};
use qcm_sync::Arc;
use std::collections::{BTreeMap, HashMap};
use std::path::{Component, Path, PathBuf};
use std::time::SystemTime;

/// How many distinct path-loaded graphs stay resident at once.
const PATH_CACHE_CAP: usize = 64;

/// A resident graph plus its service-cache fingerprint.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The graph, shared with any in-flight jobs.
    pub graph: Arc<Graph>,
    /// [`Graph::content_hash`], computed once at load.
    pub fingerprint: u64,
}

struct PathEntry {
    loaded: LoadedGraph,
    mtime: Option<SystemTime>,
    len: u64,
    last_used: u64,
}

/// The registry. Interior mutability is the caller's concern (the API layer
/// wraps it in one `qcm_sync::Mutex`).
#[derive(Default)]
pub struct GraphRegistry {
    by_path: HashMap<String, PathEntry>,
    named: BTreeMap<String, LoadedGraph>,
    /// When set, every path load must resolve inside this directory;
    /// anything else is rejected before the filesystem is touched. Network
    /// front doors set this so remote callers cannot stat/read arbitrary
    /// server-local files (and cannot use the error as a file-existence
    /// oracle outside the designated graph directory).
    root: Option<PathBuf>,
    tick: u64,
    loads: u64,
}

impl GraphRegistry {
    /// Confines path loading to `root` (canonicalised when possible, so
    /// prefix checks are not fooled by `.`/symlinked spellings of the root).
    pub fn set_root(&mut self, root: PathBuf) {
        self.root = Some(root.canonicalize().unwrap_or(root));
    }
    /// Resolves a graph reference: a registered name first, else a
    /// server-local file path.
    pub fn resolve(&mut self, graph_ref: &str) -> Result<LoadedGraph, ApiError> {
        if let Some(entry) = self.named.get(graph_ref) {
            return Ok(entry.clone());
        }
        self.load_path(graph_ref)
    }

    /// Registers `name` as the graph at `path` (loaded through the same
    /// stat-aware path cache) and returns its description.
    pub fn register(&mut self, name: &str, path: &str) -> Result<GraphInfo, ApiError> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c))
        {
            return Err(ApiError::bad_request(format!(
                "invalid graph name {name:?} (allowed: ASCII alphanumerics, `-`, `_`, `.`)"
            )));
        }
        let loaded = self.load_path(path)?;
        let info = describe(name, &loaded);
        self.named.insert(name.to_string(), loaded);
        Ok(info)
    }

    /// The registered (named) graphs, in name order.
    pub fn list(&self) -> Vec<GraphInfo> {
        self.named
            .iter()
            .map(|(name, loaded)| describe(name, loaded))
            .collect()
    }

    /// How many actual file loads (read + hash) have happened — the number
    /// that stays flat across repeat submits of an unchanged path.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Resolves a raw request path against the configured root: relative
    /// paths are joined under it, absolute paths must already be inside it,
    /// and `..` segments are rejected outright. Purely lexical — nothing is
    /// touched on disk for a rejected path.
    fn confine(&self, raw: &str) -> Result<PathBuf, ApiError> {
        let path = Path::new(raw);
        let Some(root) = &self.root else {
            return Ok(path.to_path_buf());
        };
        let outside = || {
            ApiError::new(
                ErrorCode::UnknownGraph,
                format!("graph path {raw:?} is outside the configured graph root"),
            )
        };
        if path.components().any(|c| matches!(c, Component::ParentDir)) {
            return Err(outside());
        }
        let resolved = if path.is_absolute() {
            path.to_path_buf()
        } else {
            root.join(path)
        };
        if !resolved.starts_with(root) {
            return Err(outside());
        }
        Ok(resolved)
    }

    fn load_path(&mut self, raw: &str) -> Result<LoadedGraph, ApiError> {
        let path = self.confine(raw)?;
        let path = &path.to_string_lossy().into_owned();
        self.tick += 1;
        let tick = self.tick;
        let meta = std::fs::metadata(path).map_err(|e| {
            ApiError::new(
                ErrorCode::UnknownGraph,
                format!("cannot stat {path:?}: {e}"),
            )
        })?;
        let (mtime, len) = (meta.modified().ok(), meta.len());
        if let Some(entry) = self.by_path.get_mut(path) {
            if entry.mtime == mtime && entry.len == len {
                entry.last_used = tick;
                return Ok(entry.loaded.clone());
            }
            // Stale: the file changed since it was cached. Fall through and
            // reload (the insert below overwrites this entry).
        }
        let graph = Arc::new(io::read_auto_file(path).map_err(|e| {
            ApiError::new(
                ErrorCode::UnknownGraph,
                format!("cannot load graph {path:?}: {e}"),
            )
        })?);
        self.loads += 1;
        let loaded = LoadedGraph {
            fingerprint: graph.content_hash(),
            graph,
        };
        if self.by_path.len() >= PATH_CACHE_CAP && !self.by_path.contains_key(path) {
            if let Some(victim) = self
                .by_path
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                self.by_path.remove(&victim);
            }
        }
        self.by_path.insert(
            path.to_string(),
            PathEntry {
                loaded: loaded.clone(),
                mtime,
                len,
                last_used: tick,
            },
        );
        Ok(loaded)
    }
}

fn describe(name: &str, loaded: &LoadedGraph) -> GraphInfo {
    GraphInfo {
        name: name.to_string(),
        num_vertices: loaded.graph.num_vertices(),
        num_edges: loaded.graph.num_edges(),
        fingerprint: loaded.fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qcm_http_reg_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_graph(path: &std::path::Path, seed: u64) {
        let dataset = qcm_gen::datasets::tiny_test_dataset(seed);
        io::write_edge_list_file(&dataset.graph, path).unwrap();
    }

    #[test]
    fn repeat_resolves_of_an_unchanged_path_skip_the_load_and_hash() {
        let dir = scratch_dir("hot");
        let path = dir.join("g.txt");
        write_graph(&path, 5);
        let path = path.to_string_lossy().to_string();

        let mut registry = GraphRegistry::default();
        let first = registry.resolve(&path).unwrap();
        assert_eq!(registry.loads(), 1);
        let second = registry.resolve(&path).unwrap();
        assert_eq!(registry.loads(), 1, "unchanged file must not reload");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert!(Arc::ptr_eq(&first.graph, &second.graph));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn an_edited_file_is_reloaded_and_rehashed() {
        let dir = scratch_dir("stale");
        let path = dir.join("g.txt");
        write_graph(&path, 5);
        let path_str = path.to_string_lossy().to_string();

        let mut registry = GraphRegistry::default();
        let old = registry.resolve(&path_str).unwrap();
        // A different dataset has a different length and content.
        write_graph(&path, 77);
        let new = registry.resolve(&path_str).unwrap();
        assert_eq!(registry.loads(), 2, "changed file must reload");
        assert_ne!(old.fingerprint, new.fingerprint);
        // And the refreshed entry is hot again.
        registry.resolve(&path_str).unwrap();
        assert_eq!(registry.loads(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn a_configured_root_confines_path_loading() {
        let dir = scratch_dir("root");
        let path = dir.join("g.txt");
        write_graph(&path, 5);
        // A decoy outside the root that genuinely exists.
        let outside_dir = scratch_dir("root_outside");
        let outside = outside_dir.join("g.txt");
        write_graph(&outside, 5);

        let mut registry = GraphRegistry::default();
        registry.set_root(dir.clone());

        // Relative paths resolve under the root; absolute paths inside the
        // root also work.
        assert!(registry.resolve("g.txt").is_ok());
        let absolute = dir.canonicalize().unwrap().join("g.txt");
        assert!(registry.resolve(&absolute.to_string_lossy()).is_ok());

        // Anything outside — absolute, `..`-escaping, or an existing file —
        // is a typed error, with no hint whether the target exists.
        for escape in [
            outside.to_string_lossy().to_string(),
            "../g.txt".to_string(),
            format!("{}/../root_outside_x/g.txt", dir.to_string_lossy()),
            "/etc/hostname".to_string(),
        ] {
            let err = registry.resolve(&escape).unwrap_err();
            assert_eq!(err.code, ErrorCode::UnknownGraph, "{escape}");
            assert!(
                err.message.contains("outside the configured graph root"),
                "{}",
                err.message
            );
        }
        // Registration goes through the same confinement.
        assert_eq!(
            registry
                .register("evil", &outside.to_string_lossy())
                .unwrap_err()
                .code,
            ErrorCode::UnknownGraph
        );
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(outside_dir).ok();
    }

    #[test]
    fn names_register_list_and_resolve() {
        let dir = scratch_dir("named");
        let path = dir.join("g.txt");
        write_graph(&path, 9);
        let path = path.to_string_lossy().to_string();

        let mut registry = GraphRegistry::default();
        let info = registry.register("prod", &path).unwrap();
        assert_eq!(info.name, "prod");
        assert!(info.num_vertices > 0);
        let listed = registry.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0], info);
        let resolved = registry.resolve("prod").unwrap();
        assert_eq!(resolved.fingerprint, info.fingerprint);
        // Invalid names and missing files are typed errors.
        assert_eq!(
            registry.register("bad name", &path).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            registry.resolve("/no/such/file").unwrap_err().code,
            ErrorCode::UnknownGraph
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
