//! The TCP listener: a thread-per-connection pool over `qcm-sync` with
//! graceful `CancelToken` shutdown.
//!
//! One accept thread feeds a bounded connection queue; a fixed pool of
//! handler threads pops connections and speaks keep-alive HTTP/1.1 over
//! them. Bounding both the queue and the pool keeps the front door's memory
//! and thread count flat under connection floods — overload surfaces as
//! accept backpressure (and, at the API layer, as 429s), never as unbounded
//! growth.

use crate::api::Api;
use crate::parser::{self, ParseError};
use crate::response::Response;
use crate::router;
use qcm::CancelToken;
use qcm_obs::clock::Instant;
use qcm_obs::json::{object, Json};
use qcm_sync::{thread, Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Listener configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Connection-handler threads. Long-polls park a handler thread, so
    /// this bounds concurrent long-polling clients too.
    pub workers: usize,
    /// Per-read socket timeout: an idle keep-alive connection is closed
    /// after this long, so a silent client cannot pin a handler thread.
    pub read_timeout: Duration,
    /// Absolute per-request deadline: head + body must arrive within this
    /// long of the request's first byte. `read_timeout` alone re-arms on
    /// every successful read, so a client trickling one byte at a time
    /// could pin a handler thread forever (slowloris); this bound cannot
    /// be reset by sending more bytes.
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            read_timeout: Duration::from_secs(10),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Accepted connections waiting for a handler thread. Bounded: past `cap`
/// the accept thread blocks, pushing backpressure into the listen backlog
/// instead of buffering sockets without limit.
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    space: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
        }
    }

    fn push(&self, stream: TcpStream, cancel: &CancelToken) {
        let mut queue = self.queue.lock();
        while queue.len() >= self.cap && !cancel.is_cancelled() {
            let (guard, _timed_out) = self.space.wait_timeout(queue, Duration::from_millis(100));
            queue = guard;
        }
        if cancel.is_cancelled() {
            return; // drop the socket: the peer sees a clean close
        }
        queue.push_back(stream);
        drop(queue);
        self.ready.notify_all();
    }

    fn pop(&self, cancel: &CancelToken) -> Option<TcpStream> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(stream) = queue.pop_front() {
                drop(queue);
                self.space.notify_all();
                return Some(stream);
            }
            if cancel.is_cancelled() {
                return None;
            }
            // Timed wait: shutdown may race the notify, and a worker stuck
            // here forever would hang join().
            let (guard, _timed_out) = self.ready.wait_timeout(queue, Duration::from_millis(100));
            queue = guard;
        }
    }
}

/// A running HTTP listener over an [`Api`].
pub struct Server {
    api: Arc<Api>,
    local_addr: String,
    cancel: CancelToken,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the accept thread plus the handler
    /// pool.
    pub fn start(api: Arc<Api>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?.to_string();
        let cancel = CancelToken::new();
        let conns = Arc::new(ConnQueue::new(config.workers.max(1) * 4));
        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);

        {
            let conns = Arc::clone(&conns);
            let cancel = cancel.clone();
            threads.push(
                thread::Builder::new()
                    .name("qcm-http-accept".to_string())
                    .spawn(move || accept_loop(listener, &conns, &cancel))
                    .expect("spawning the accept thread"),
            );
        }
        for i in 0..config.workers.max(1) {
            let api = Arc::clone(&api);
            let conns = Arc::clone(&conns);
            let cancel = cancel.clone();
            let read_timeout = config.read_timeout;
            let request_timeout = config.request_timeout;
            threads.push(
                thread::Builder::new()
                    .name(format!("qcm-http-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop(&cancel) {
                            handle_connection(&api, stream, &cancel, read_timeout, request_timeout);
                        }
                    })
                    .expect("spawning a handler thread"),
            );
        }
        Ok(Server {
            api,
            local_addr,
            cancel,
            threads,
        })
    }

    /// The bound address as `host:port` (the OS-assigned port when the
    /// config asked for port 0).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// The API this server fronts.
    pub fn api(&self) -> &Arc<Api> {
        &self.api
    }

    /// Graceful shutdown: stop accepting, drain handler threads, and (when
    /// this is the API's last reference) drain the mining service itself.
    pub fn shutdown(mut self) {
        self.cancel.cancel();
        // Unblock the accept() call with one throwaway connection.
        let _ = TcpStream::connect(&self.local_addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(api) = Arc::into_inner(self.api) {
            api.shutdown();
        }
    }
}

fn accept_loop(listener: TcpListener, conns: &ConnQueue, cancel: &CancelToken) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if cancel.is_cancelled() {
                    return;
                }
                conns.push(stream, cancel);
            }
            Err(_) if cancel.is_cancelled() => return,
            // Transient accept errors (EMFILE, aborted handshake): keep
            // serving; the kernel backlog holds waiting peers.
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Speaks keep-alive HTTP/1.1 over one connection until close, EOF, idle
/// timeout, an exceeded per-request deadline, a fatal parse error, or
/// shutdown.
fn handle_connection(
    api: &Api,
    mut stream: TcpStream,
    cancel: &CancelToken,
    read_timeout: Duration,
    request_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if cancel.is_cancelled() {
            return;
        }
        // The absolute deadline for the request now being read. It starts
        // at the request's first byte (pipelined leftovers count) and is
        // never re-armed by further reads — the anti-slowloris bound.
        let mut deadline: Option<Instant> =
            (!buf.is_empty()).then(|| Instant::now() + request_timeout);
        // Read until the head terminator (or a limit/EOF/timeout).
        let head_end = loop {
            match parser::find_head_end(&buf) {
                Ok(Some(end)) => break end,
                Ok(None) => {
                    if !read_some(
                        &mut stream,
                        &mut buf,
                        read_timeout,
                        request_timeout,
                        &mut deadline,
                    ) {
                        return; // EOF/timeout/deadline: close
                    }
                }
                Err(e) => {
                    respond_parse_error(&mut stream, &e);
                    return;
                }
            }
        };
        let head = match parser::parse_head(&buf[..head_end]) {
            Ok(head) => head,
            Err(e) => {
                // The connection's framing is unknown after a malformed
                // head — answer and close, leaving the listener sane.
                respond_parse_error(&mut stream, &e);
                return;
            }
        };
        let body_len = match head.content_length() {
            Ok(len) => len,
            Err(e) => {
                respond_parse_error(&mut stream, &e);
                return;
            }
        };
        while buf.len() < head_end + body_len {
            if !read_some(
                &mut stream,
                &mut buf,
                read_timeout,
                request_timeout,
                &mut deadline,
            ) {
                return; // truncated body / deadline exceeded: close
            }
        }
        let body: Vec<u8> = buf[head_end..head_end + body_len].to_vec();
        buf.drain(..head_end + body_len);

        let response = router::route(api, &head, &body);
        let keep_alive = !head.wants_close() && !cancel.is_cancelled();
        if stream.write_all(&response.render(keep_alive)).is_err() || !keep_alive {
            return;
        }
    }
}

/// Appends one read's worth of bytes; false on EOF, error, idle timeout or
/// an exceeded request deadline. The socket timeout is capped to whatever
/// remains of `deadline`, so a trickling client cannot extend its request
/// past the absolute bound; the deadline is armed by the first byte read.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    read_timeout: Duration,
    request_timeout: Duration,
    deadline: &mut Option<Instant>,
) -> bool {
    let timeout = match deadline {
        None => read_timeout,
        Some(deadline) => {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return false; // request deadline already exceeded
            };
            // set_read_timeout(ZERO) is an error; round up to 1ms.
            read_timeout.min(remaining).max(Duration::from_millis(1))
        }
    };
    let _ = stream.set_read_timeout(Some(timeout));
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) | Err(_) => false,
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            if deadline.is_none() {
                *deadline = Some(Instant::now() + request_timeout);
            }
            true
        }
    }
}

fn respond_parse_error(stream: &mut TcpStream, error: &ParseError) {
    let code = error.error_code();
    let body = object(vec![(
        "error",
        object(vec![
            ("code", Json::from(code.as_str())),
            ("message", Json::from(error.message())),
        ]),
    )]);
    let response = Response::json(code.http_status(), &body);
    let _ = stream.write_all(&response.render(false));
}
