//! `qcm-http`: the versioned HTTP/1.1 JSON surface of the mining service.
//!
//! This crate promotes `qcm serve` from an ad-hoc line protocol to a small,
//! dependency-free HTTP service with explicit load-shedding semantics:
//!
//! - `POST /v1/jobs` — submit a mining job (tenant auth + priority);
//!   answers `202` with the job id, or `429` + `Retry-After` when admission
//!   control sheds the request.
//! - `GET /v1/jobs/{id}?wait_ms=` — job status with bounded long-polling.
//! - `DELETE /v1/jobs/{id}` — cancel.
//! - `GET /v1/graphs` / `PUT /v1/graphs/{name}` — the named graph registry,
//!   backed by the binary snapshot loader with a (path, mtime, len) cache.
//! - `GET /metrics` — Prometheus text exposition; `GET /healthz` — liveness.
//!
//! Everything is hand-rolled on `std::net` (this crate and `qcm-bench` are
//! the only crates allowed to touch it — enforced by `qcm-lint`): a total,
//! limit-enforcing request parser ([`parser`]), a routing table over the
//! shared DTOs of `qcm_core::api` ([`router`], [`wire`]), and a
//! thread-per-connection listener over `qcm-sync` with graceful shutdown
//! ([`server`]).
//!
//! ```no_run
//! use qcm_http::{Api, AuthConfig, Server, ServerConfig};
//! use qcm_service::ServiceConfig;
//! use qcm_sync::Arc;
//!
//! let api = Arc::new(Api::start(ServiceConfig::default(), AuthConfig::open()));
//! let server = Server::start(api, ServerConfig::default()).unwrap();
//! println!("listening on http://{}", server.local_addr());
//! server.shutdown();
//! ```

pub mod api;
pub mod parser;
pub mod registry;
pub mod response;
pub mod router;
pub mod server;
pub mod wire;

pub use api::{Api, AuthConfig};
pub use parser::{Head, Method, ParseError};
pub use registry::GraphRegistry;
pub use response::Response;
pub use server::{Server, ServerConfig};
