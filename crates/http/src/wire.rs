//! JSON ↔ DTO conversions for the versioned wire format.
//!
//! The DTOs live in `qcm_core::api` (re-exported from the `qcm` prelude) so
//! every transport shares them; this module pins their JSON field names,
//! which are part of the versioned API surface.

use qcm::prelude::{ApiError, GraphInfo, JobView, SubmitRequest, SubmitResponse};
use qcm_obs::json::{object, Json};

/// Decodes a `POST /v1/jobs` body.
pub fn submit_request_from_json(body: &[u8]) -> Result<SubmitRequest, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| ApiError::bad_request(format!("request body is not valid JSON: {e}")))?;
    let graph = json
        .get("graph")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("missing required string field \"graph\""))?
        .to_string();
    let mut request = SubmitRequest::new(graph, 0.9, 10);
    if let Some(gamma) = json.get("gamma") {
        request.gamma = gamma
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("\"gamma\" must be a number"))?;
    }
    if let Some(min_size) = json.get("min_size") {
        request.min_size = usize_field(min_size, "min_size")?;
    }
    if let Some(priority) = json.get("priority") {
        request.priority = priority
            .as_str()
            .ok_or_else(|| ApiError::bad_request("\"priority\" must be a string"))?
            .to_string();
    }
    if let Some(deadline) = json.get("deadline_ms") {
        request.deadline_ms = Some(usize_field(deadline, "deadline_ms")? as u64);
    }
    Ok(request)
}

fn usize_field(value: &Json, name: &str) -> Result<usize, ApiError> {
    let raw = value
        .as_f64()
        .ok_or_else(|| ApiError::bad_request(format!("{name:?} must be a number")))?;
    if raw < 0.0 || raw.fract() != 0.0 || raw > u32::MAX as f64 {
        return Err(ApiError::bad_request(format!(
            "{name:?} must be a non-negative integer"
        )));
    }
    Ok(raw as usize)
}

/// Renders a `202 Accepted` submit body.
pub fn submit_response_to_json(response: &SubmitResponse) -> Json {
    object(vec![
        ("job", Json::from(response.job)),
        ("status", Json::from(response.status.as_str())),
        ("cache_hit", Json::from(response.cache_hit)),
    ])
}

/// Renders a `GET /v1/jobs/{id}` body. Optional fields are omitted (not
/// `null`) while the job is non-terminal.
pub fn job_view_to_json(view: &JobView) -> Json {
    let mut fields = vec![
        ("job", Json::from(view.job)),
        ("status", Json::from(view.status.as_str())),
    ];
    if !view.tenant.is_empty() {
        fields.push(("tenant", Json::from(view.tenant.as_str())));
    }
    if let Some(outcome) = &view.outcome {
        fields.push(("outcome", Json::from(outcome.as_str())));
        fields.push(("complete", Json::from(outcome == "complete")));
    }
    if let Some(cache_hit) = view.cache_hit {
        fields.push(("cache_hit", Json::from(cache_hit)));
    }
    if let Some(num_maximal) = view.num_maximal {
        fields.push(("num_maximal", Json::from(num_maximal)));
    }
    if let Some(raw_reported) = view.raw_reported {
        fields.push(("raw_reported", Json::from(raw_reported)));
    }
    if let Some(mining_ms) = view.mining_ms {
        fields.push(("mining_ms", Json::from(mining_ms)));
    }
    object(fields)
}

/// Renders one `GET /v1/graphs` row / `PUT /v1/graphs/{name}` body.
pub fn graph_info_to_json(info: &GraphInfo) -> Json {
    object(vec![
        ("name", Json::from(info.name.as_str())),
        ("num_vertices", Json::from(info.num_vertices)),
        ("num_edges", Json::from(info.num_edges)),
        // Hex string: the fingerprint is an opaque 64-bit id and f64 JSON
        // numbers cannot carry it losslessly.
        (
            "fingerprint",
            Json::from(format!("{:#018x}", info.fingerprint)),
        ),
    ])
}

/// Decodes a `PUT /v1/graphs/{name}` body: `{"path": "..."}`.
pub fn graph_path_from_json(body: &[u8]) -> Result<String, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| ApiError::bad_request(format!("request body is not valid JSON: {e}")))?;
    Ok(json
        .get("path")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("missing required string field \"path\""))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_decodes_defaults_and_overrides() {
        let req = submit_request_from_json(br#"{"graph":"enron"}"#).unwrap();
        assert_eq!(req.graph, "enron");
        assert_eq!((req.gamma, req.min_size), (0.9, 10));
        assert_eq!(req.priority, "normal");
        let req = submit_request_from_json(
            br#"{"graph":"g","gamma":0.8,"min_size":6,"priority":"high","deadline_ms":250}"#,
        )
        .unwrap();
        assert_eq!((req.gamma, req.min_size), (0.8, 6));
        assert_eq!(req.priority, "high");
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn submit_request_rejects_malformed_bodies() {
        for body in [
            &b"not json"[..],
            br#"{}"#,
            br#"{"graph":7}"#,
            br#"{"graph":"g","gamma":"x"}"#,
            br#"{"graph":"g","min_size":-3}"#,
            br#"{"graph":"g","min_size":2.5}"#,
            &[0xff, 0xfe][..],
        ] {
            let err = submit_request_from_json(body).unwrap_err();
            assert_eq!(err.code.as_str(), "bad_request", "{body:?}");
        }
    }

    #[test]
    fn views_render_stable_field_names() {
        let view = JobView {
            job: 3,
            status: "completed".to_string(),
            tenant: "lab".to_string(),
            outcome: Some("complete".to_string()),
            cache_hit: Some(true),
            num_maximal: Some(2),
            raw_reported: Some(5),
            mining_ms: Some(12),
        };
        let rendered = job_view_to_json(&view).render();
        for needle in [
            "\"job\":3",
            "\"status\":\"completed\"",
            "\"tenant\":\"lab\"",
            "\"outcome\":\"complete\"",
            "\"complete\":true",
            "\"cache_hit\":true",
            "\"num_maximal\":2",
            "\"raw_reported\":5",
            "\"mining_ms\":12",
        ] {
            assert!(rendered.contains(needle), "{needle} missing in {rendered}");
        }
        let queued = JobView {
            job: 4,
            status: "queued".to_string(),
            tenant: String::new(),
            outcome: None,
            cache_hit: None,
            num_maximal: None,
            raw_reported: None,
            mining_ms: None,
        };
        assert_eq!(
            job_view_to_json(&queued).render(),
            "{\"job\":4,\"status\":\"queued\"}"
        );
    }

    #[test]
    fn graph_info_renders_hex_fingerprint() {
        let info = GraphInfo {
            name: "g".to_string(),
            num_vertices: 4,
            num_edges: 5,
            fingerprint: 0xabcd,
        };
        let rendered = graph_info_to_json(&info).render();
        assert!(
            rendered.contains("\"fingerprint\":\"0x000000000000abcd\""),
            "{rendered}"
        );
        assert_eq!(
            graph_path_from_json(br#"{"path":"/tmp/g.txt"}"#).unwrap(),
            "/tmp/g.txt"
        );
        assert!(graph_path_from_json(b"{}").is_err());
    }
}
