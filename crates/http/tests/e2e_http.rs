//! End-to-end tests over the real socket: a `Server` is started on a free
//! loopback port and driven with a hand-rolled HTTP/1.1 client, so every
//! layer — accept loop, parser, router, API, mining service — is on the
//! path. What the line-protocol smoke used to cover plus the semantics only
//! the HTTP surface has: auth, load shedding with `Retry-After`, and
//! malformed-input isolation.

use qcm_http::{Api, AuthConfig, Server, ServerConfig};
use qcm_service::{AdmissionControl, ServiceConfig};
use qcm_sync::Arc;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One `Connection: close` exchange; returns (status, headers, body).
fn request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    parse_response(&response)
}

fn parse_response(response: &[u8]) -> (u16, String, String) {
    let text = String::from_utf8_lossy(response).to_string();
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn with_graph_file<R>(tag: &str, f: impl FnOnce(&str) -> R) -> R {
    let dir = std::env::temp_dir().join(format!("qcm_http_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.txt");
    let dataset = qcm_gen::datasets::tiny_test_dataset(9);
    qcm_graph::io::write_edge_list_file(&dataset.graph, &path).unwrap();
    let result = f(&path.to_string_lossy());
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn start_server(config: ServiceConfig, auth: AuthConfig) -> Server {
    Server::start(
        Arc::new(Api::start(config, auth)),
        ServerConfig {
            workers: 4,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("loopback listener")
}

#[test]
fn submit_long_poll_fetch_round_trip_with_cache_hit() {
    with_graph_file("roundtrip", |path| {
        let server = start_server(ServiceConfig::default(), AuthConfig::open());
        let addr = server.local_addr().to_string();
        let body = format!("{{\"graph\":\"{path}\",\"gamma\":0.8,\"min_size\":6}}");

        let (status, _, submitted) = request(&addr, "POST", "/v1/jobs", &[], &body);
        assert_eq!(status, 202, "{submitted}");
        assert!(submitted.contains("\"job\":1"), "{submitted}");
        assert!(submitted.contains("\"cache_hit\":false"), "{submitted}");

        let (status, _, view) = request(&addr, "GET", "/v1/jobs/1?wait_ms=30000", &[], "");
        assert_eq!(status, 200, "{view}");
        assert!(view.contains("\"outcome\":\"complete\""), "{view}");
        assert!(view.contains("\"status\":\"completed\""), "{view}");
        assert!(view.contains("\"num_maximal\":"), "{view}");

        // The same query again: served from the result cache at submit.
        let (status, _, hot) = request(&addr, "POST", "/v1/jobs", &[], &body);
        assert_eq!(status, 202, "{hot}");
        assert!(hot.contains("\"cache_hit\":true"), "{hot}");

        // /metrics speaks well-formed Prometheus text exposition.
        let (status, head, metrics) = request(&addr, "GET", "/metrics", &[], "");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain"), "{head}");
        qcm_obs::prometheus::check_text(&metrics).expect("well-formed exposition");
        assert!(
            metrics.contains("qcm_service_jobs_mined_total 1"),
            "{metrics}"
        );

        let (status, _, health) = request(&addr, "GET", "/healthz", &[], "");
        assert_eq!(status, 200);
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        server.shutdown();
    });
}

#[test]
fn bad_token_is_401_with_stable_code() {
    with_graph_file("auth", |path| {
        let server = start_server(
            ServiceConfig::default(),
            AuthConfig::with_tokens([("sekrit".to_string(), "alpha".to_string())]),
        );
        let addr = server.local_addr().to_string();
        let body = format!("{{\"graph\":\"{path}\"}}");

        for headers in [&[][..], &[("Authorization", "Bearer wrong")][..]] {
            let (status, _, response) = request(&addr, "POST", "/v1/jobs", headers, &body);
            assert_eq!(status, 401, "{response}");
            assert!(response.contains("\"code\":\"unauthorized\""), "{response}");
        }
        // healthz stays open even with tokens configured.
        let (status, _, _) = request(&addr, "GET", "/healthz", &[], "");
        assert_eq!(status, 200);

        let (status, _, accepted) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[("Authorization", "Bearer sekrit")],
            &body,
        );
        assert_eq!(status, 202, "{accepted}");
        server.shutdown();
    });
}

#[test]
fn overload_is_shed_with_429_and_retry_after() {
    with_graph_file("overload", |path| {
        // One paused worker and a one-slot queue: the first submit fills the
        // queue, every further submit must be shed — deterministically, no
        // race on how fast the worker drains.
        let server = start_server(
            ServiceConfig {
                workers: 1,
                start_paused: true,
                cache_capacity: 0,
                admission: AdmissionControl {
                    max_queued: 1,
                    max_in_flight: usize::MAX,
                    per_tenant_quota: usize::MAX,
                },
                ..ServiceConfig::default()
            },
            AuthConfig::open(),
        );
        let addr = server.local_addr().to_string();
        let api = Arc::clone(server.api());
        let body = format!("{{\"graph\":\"{path}\",\"gamma\":0.8,\"min_size\":6}}");

        let (status, _, first) = request(&addr, "POST", "/v1/jobs", &[], &body);
        assert_eq!(status, 202, "{first}");

        let (status, head, shed) = request(&addr, "POST", "/v1/jobs", &[], &body);
        assert_eq!(status, 429, "{shed}");
        assert!(shed.contains("\"code\":\"overloaded\""), "{shed}");
        let retry_after = head
            .lines()
            .find_map(|line| line.strip_prefix("Retry-After: "))
            .expect("429 must carry Retry-After");
        assert!(retry_after.trim().parse::<u64>().unwrap() >= 1);

        // Un-pause: the queued job completes, and the service admits again.
        api.service().resume();
        let (status, _, view) = request(&addr, "GET", "/v1/jobs/1?wait_ms=30000", &[], "");
        assert_eq!(status, 200, "{view}");
        assert!(view.contains("\"outcome\":\"complete\""), "{view}");
        let (status, _, readmitted) = request(&addr, "POST", "/v1/jobs", &[], &body);
        assert_eq!(status, 202, "{readmitted}");
        server.shutdown();
    });
}

#[test]
fn malformed_and_oversized_requests_leave_the_listener_sane() {
    let server = start_server(ServiceConfig::default(), AuthConfig::open());
    let addr = server.local_addr().to_string();

    // Garbage head: answered with a 400 JSON error, then the connection is
    // closed (framing is unknown after a malformed head).
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(b"echo hello\r\n\r\n").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let (status, _, body) = parse_response(&response);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"code\":\"bad_request\""), "{body}");

    // A body above the limit: rejected up front (413), not buffered.
    let (status, _, body) = request(
        &addr,
        "POST",
        "/v1/jobs",
        &[("Content-Length", "9999999")],
        "",
    );
    assert_eq!(status, 413, "{body}");

    // An unsupported framing scheme: 501, connection closed.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let (status, _, _) = parse_response(&response);
    assert_eq!(status, 501);

    // After all of that, the listener still answers normal requests.
    let (status, _, health) = request(&addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200, "{health}");
    server.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let server = start_server(ServiceConfig::default(), AuthConfig::open());
    let addr = server.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    for round in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        // Fixed-size response: read until the known body arrives.
        let mut collected = Vec::new();
        let mut chunk = [0u8; 1024];
        while !String::from_utf8_lossy(&collected).contains("\"status\":\"ok\"") {
            let n = stream.read(&mut chunk).expect("keep-alive read");
            assert!(
                n > 0,
                "server closed a keep-alive connection at round {round}"
            );
            collected.extend_from_slice(&chunk[..n]);
        }
        let (status, head, _) = parse_response(&collected);
        assert_eq!(status, 200);
        assert!(head.contains("connection: keep-alive"), "{head}");
    }
    server.shutdown();
}

#[test]
fn job_reads_and_cancels_are_scoped_to_the_authenticated_tenant() {
    with_graph_file("scoped", |path| {
        // Paused service so the job stays alive; ids are sequential, so
        // without ownership checks tenant beta could simply enumerate them.
        let server = start_server(
            ServiceConfig {
                start_paused: true,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
            AuthConfig::with_tokens([
                ("tok-a".to_string(), "alpha".to_string()),
                ("tok-b".to_string(), "beta".to_string()),
            ]),
        );
        let addr = server.local_addr().to_string();
        let body = format!("{{\"graph\":\"{path}\",\"gamma\":0.8,\"min_size\":6}}");

        let (status, _, submitted) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[("Authorization", "Bearer tok-a")],
            &body,
        );
        assert_eq!(status, 202, "{submitted}");
        assert!(submitted.contains("\"job\":1"), "{submitted}");

        // Another authenticated tenant gets the same answer as for a job
        // that never existed — read and cancel both.
        let beta = [("Authorization", "Bearer tok-b")];
        let (status, _, stolen) = request(&addr, "GET", "/v1/jobs/1", &beta, "");
        assert_eq!(status, 404, "{stolen}");
        assert!(stolen.contains("\"code\":\"unknown_job\""), "{stolen}");
        let (status, _, cancelled) = request(&addr, "DELETE", "/v1/jobs/1", &beta, "");
        assert_eq!(status, 404, "{cancelled}");
        assert!(
            cancelled.contains("\"code\":\"unknown_job\""),
            "{cancelled}"
        );

        // The owner still reads and cancels it.
        let alpha = [("Authorization", "Bearer tok-a")];
        let (status, _, view) = request(&addr, "GET", "/v1/jobs/1", &alpha, "");
        assert_eq!(status, 200, "{view}");
        assert!(view.contains("\"status\":\"queued\""), "{view}");
        let (status, _, gone) = request(&addr, "DELETE", "/v1/jobs/1", &alpha, "");
        assert_eq!(status, 200, "{gone}");
        assert!(gone.contains("\"status\":\"cancelled\""), "{gone}");
        server.shutdown();
    });
}

#[test]
fn graph_paths_are_confined_to_the_configured_root() {
    with_graph_file("rooted", |path| {
        let root = std::path::Path::new(path).parent().unwrap().to_path_buf();
        let api = Api::start(ServiceConfig::default(), AuthConfig::open()).with_graph_root(root);
        let server = Server::start(Arc::new(api), ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        // A relative path resolves under the root.
        let (status, _, ok) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[],
            "{\"graph\":\"graph.txt\",\"gamma\":0.8,\"min_size\":6}",
        );
        assert_eq!(status, 202, "{ok}");

        // Escapes — absolute paths outside the root, `..` traversal, and
        // registration — are typed errors with no filesystem probe.
        for body in [
            "{\"graph\":\"/etc/hostname\"}".to_string(),
            "{\"graph\":\"../../../etc/hostname\"}".to_string(),
        ] {
            let (status, _, denied) = request(&addr, "POST", "/v1/jobs", &[], &body);
            assert_eq!(status, 404, "{denied}");
            assert!(denied.contains("\"code\":\"unknown_graph\""), "{denied}");
            assert!(
                denied.contains("outside the configured graph root"),
                "{denied}"
            );
        }
        let (status, _, denied) = request(
            &addr,
            "PUT",
            "/v1/graphs/evil",
            &[],
            "{\"path\":\"/etc/hostname\"}",
        );
        assert_eq!(status, 404, "{denied}");
        server.shutdown();
    });
}

#[test]
fn a_trickling_client_is_cut_off_by_the_request_deadline() {
    // Tight absolute deadline, long per-read timeout: only the deadline can
    // explain the cutoff. Before the fix, each byte re-armed the 5s read
    // timeout and one client could pin a handler thread indefinitely.
    let server = Server::start(
        Arc::new(Api::start(ServiceConfig::default(), AuthConfig::open())),
        ServerConfig {
            workers: 2,
            read_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_millis(400),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Never-completing head, trickled with gaps well under read_timeout.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    for _ in 0..6 {
        qcm_sync::thread::sleep(Duration::from_millis(150));
        if stream.write_all(b"X-Pad: y\r\n").is_err() {
            break; // server already hung up on us — that is the point
        }
    }
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    assert!(
        response.is_empty(),
        "deadline close must not fabricate a response: {:?}",
        String::from_utf8_lossy(&response)
    );

    // The handler thread is free again: normal requests still answer.
    let (status, _, health) = request(&addr, "GET", "/healthz", &[], "");
    assert_eq!(status, 200, "{health}");
    server.shutdown();
}

#[test]
fn concurrent_tenants_are_isolated_by_quota() {
    with_graph_file("tenants", |path| {
        // Paused service, per-tenant quota of 1: tenant alpha exhausts its
        // quota with one unfinished job; beta must still be admitted, and
        // alpha's rejection is the tenant-scoped quota code, not the global
        // overload code.
        let server = start_server(
            ServiceConfig {
                workers: 1,
                start_paused: true,
                cache_capacity: 0,
                admission: AdmissionControl {
                    max_queued: 64,
                    max_in_flight: usize::MAX,
                    per_tenant_quota: 1,
                },
                ..ServiceConfig::default()
            },
            AuthConfig::open(),
        );
        let addr = server.local_addr().to_string();
        let api = Arc::clone(server.api());
        let body = format!("{{\"graph\":\"{path}\",\"gamma\":0.8,\"min_size\":6}}");

        let (status, _, first) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[("X-Qcm-Tenant", "alpha")],
            &body,
        );
        assert_eq!(status, 202, "{first}");

        let (status, head, quota) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[("X-Qcm-Tenant", "alpha")],
            &body,
        );
        assert_eq!(status, 429, "{quota}");
        assert!(quota.contains("\"code\":\"quota_exceeded\""), "{quota}");
        assert!(quota.contains("alpha"), "{quota}");
        assert!(head.contains("Retry-After:"), "{head}");

        let (status, _, beta) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[("X-Qcm-Tenant", "beta")],
            &body,
        );
        assert_eq!(status, 202, "other tenants must be unaffected: {beta}");

        // Drain, then check both tenants' jobs completed under their own
        // names (cache off, so each mined independently).
        api.service().resume();
        for (job, tenant) in [(1, "alpha"), (2, "beta")] {
            let (status, _, view) = request(
                &addr,
                "GET",
                &format!("/v1/jobs/{job}?wait_ms=30000"),
                &[],
                "",
            );
            assert_eq!(status, 200, "{view}");
            assert!(view.contains(&format!("\"tenant\":\"{tenant}\"")), "{view}");
            assert!(view.contains("\"outcome\":\"complete\""), "{view}");
        }
        server.shutdown();
    });
}

#[test]
fn graph_registry_round_trip_and_named_submit() {
    with_graph_file("registry", |path| {
        let server = start_server(ServiceConfig::default(), AuthConfig::open());
        let addr = server.local_addr().to_string();

        let (status, _, put) = request(
            &addr,
            "PUT",
            "/v1/graphs/tiny",
            &[],
            &format!("{{\"path\":\"{path}\"}}"),
        );
        assert_eq!(status, 200, "{put}");
        assert!(put.contains("\"name\":\"tiny\""), "{put}");
        assert!(put.contains("\"fingerprint\":\"0x"), "{put}");

        let (status, _, list) = request(&addr, "GET", "/v1/graphs", &[], "");
        assert_eq!(status, 200);
        assert!(list.contains("\"tiny\""), "{list}");

        // Submitting by name resolves through the registry — no reload.
        let (status, _, submitted) = request(
            &addr,
            "POST",
            "/v1/jobs",
            &[],
            "{\"graph\":\"tiny\",\"gamma\":0.8,\"min_size\":6}",
        );
        assert_eq!(status, 202, "{submitted}");
        assert_eq!(
            server.api().graph_loads(),
            1,
            "named submit must not reload"
        );

        let (status, _, missing) = request(&addr, "GET", "/v1/jobs/99", &[], "");
        assert_eq!(status, 404, "{missing}");
        assert!(missing.contains("\"code\":\"unknown_job\""), "{missing}");
        server.shutdown();
    });
}
