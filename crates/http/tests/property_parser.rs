//! Property tests for the hand-rolled HTTP parser: `parse_head`,
//! `find_head_end` and `content_length` are total functions — any byte
//! sequence yields a value or a typed `ParseError`, never a panic. This is
//! the contract the connection loop relies on to keep one hostile client
//! from taking a worker thread down.

use proptest::prelude::*;
use qcm_http::parser::{find_head_end, parse_head, Method, ParseError, MAX_HEAD_BYTES};

/// Picks one of a fixed set of options (the vendored proptest has no
/// `prop_oneof`, so an index strategy stands in).
fn pick(options: &'static [&'static str]) -> impl Strategy<Value = &'static str> {
    (0usize..options.len()).prop_map(move |i| options[i])
}

/// A string drawn from `charset` with a length in `0..max_len`.
fn charset_string(charset: &'static [u8], max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..charset.len(), 0..max_len)
        .prop_map(move |indices| indices.into_iter().map(|i| charset[i] as char).collect())
}

/// A quasi-HTTP request head: valid enough in shape to reach the deeper
/// parsing branches (target decoding, header splitting) that pure byte
/// noise almost never exercises.
fn arb_quasi_head() -> impl Strategy<Value = Vec<u8>> {
    const METHODS: &[&str] = &["GET", "POST", "PUT", "DELETE", "BREW", "get", ""];
    const VERSIONS: &[&str] = &["HTTP/1.1", "HTTP/1.0", "HTTP/2", "HTTP/9.9", "FTP/1.1", ""];
    // Slashes, percent escapes (well- and mal-formed), query syntax, spaces.
    const TARGET: &[u8] = b"/ab0%2Fz+?=&._-~ \\";
    const HEADER: &[u8] = b"abz09:-_ \tA";
    let target = charset_string(TARGET, 40);
    let headers = proptest::collection::vec(
        (charset_string(HEADER, 12), charset_string(HEADER, 16)),
        0..6,
    );
    (pick(METHODS), target, pick(VERSIONS), headers).prop_map(
        |(method, target, version, headers)| {
            let mut raw = format!("{method} {target} {version}\r\n");
            for (name, value) in headers {
                raw.push_str(&format!("{name}: {value}\r\n"));
            }
            raw.push_str("\r\n");
            raw.into_bytes()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_head_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..2048)
    ) {
        // Total function: a Head or a typed error, and errors always map to
        // a real HTTP status with a non-empty message.
        if let Err(e) = parse_head(&bytes) {
            prop_assert!([400, 413, 431, 501].contains(&e.http_status()));
            prop_assert!(!e.message().is_empty());
        }
    }

    #[test]
    fn find_head_end_never_panics_and_is_consistent(
        bytes in proptest::collection::vec(0u8..=255, 0..4096)
    ) {
        match find_head_end(&bytes) {
            Ok(Some(end)) => {
                prop_assert!(end >= 4 && end <= bytes.len());
                prop_assert_eq!(&bytes[end - 4..end], b"\r\n\r\n");
                // The head it delimits parses or fails, but never panics.
                let _ = parse_head(&bytes[..end]);
            }
            Ok(None) => prop_assert!(bytes.len() < MAX_HEAD_BYTES),
            Err(e) => prop_assert_eq!(e, ParseError::HeadTooLarge),
        }
    }

    #[test]
    fn quasi_http_heads_parse_or_fail_with_typed_errors(
        bytes in arb_quasi_head()
    ) {
        match parse_head(&bytes) {
            Ok(head) => {
                // A successful parse made real commitments: a routed method,
                // an absolute path, and a total content_length.
                prop_assert!(matches!(
                    head.method,
                    Method::Get | Method::Post | Method::Put | Method::Delete
                ));
                prop_assert!(head.path.starts_with('/'));
                let _ = head.content_length();
            }
            Err(e) => prop_assert!(!e.message().is_empty()),
        }
    }

    #[test]
    fn valid_heads_always_parse(
        (path, wait, value) in (
            charset_string(b"abcdefghijklmnopqrstuvwxyz0123456789_-", 12),
            0u64..100_000,
            charset_string(b"abcdefghijklmnopqrstuvwxyz 0123456789/=+", 20),
        )
    ) {
        let raw = format!(
            "GET /v1/j{path}?wait_ms={wait} HTTP/1.1\r\nx-tag: {value}\r\n\r\n"
        );
        let head = parse_head(raw.as_bytes()).unwrap();
        prop_assert_eq!(head.method, Method::Get);
        prop_assert_eq!(head.path, format!("/v1/j{path}"));
        let wait_text = wait.to_string();
        prop_assert_eq!(head.query_param("wait_ms"), Some(wait_text.as_str()));
        prop_assert_eq!(head.header("x-tag"), Some(value.trim()));
    }
}
