//! `qcm serve` — the mining job service.
//!
//! Two wire surfaces, one handler table ([`qcm_http::Api`]):
//!
//! * **HTTP mode** (`--listen <addr>`): the versioned HTTP/1.1 JSON API —
//!   `POST /v1/jobs`, `GET /v1/jobs/{id}?wait_ms=`, `DELETE /v1/jobs/{id}`,
//!   `GET`/`PUT /v1/graphs`, `GET /metrics`, `GET /healthz`. Multi-tenant
//!   auth via repeatable `--token <token>=<tenant>` (comma-separated);
//!   without tokens the service is open and trusts `X-Qcm-Tenant`.
//! * **Line protocol** (default, DEPRECATED): one line-delimited request per
//!   stdin line, one response line each, in text (default) or JSON
//!   (`--format json`). This surface is kept exactly one release behind the
//!   HTTP API and will be removed; new integrations should use `--listen`.
//!
//! ```text
//! submit <graph_file> [--gamma <f>] [--min-size <n>] [--tenant <s>]
//!        [--priority low|normal|high] [--deadline-ms <n>] [--nowait]
//! status <job_id>
//! cancel <job_id>
//! fetch <job_id>       (deprecated: use submit without --nowait, or status)
//! metrics [prom]
//! help
//! quit
//! ```
//!
//! Errors on both surfaces carry the same stable machine-readable code
//! (`qcm_core::api::ErrorCode`): the line protocol answers
//! `{"ok":false,"error":{"code":…,"message":…}}` in JSON mode and
//! `error[<code>]: <message>` in text mode; the HTTP surface maps the same
//! code through `ErrorCode::http_status` (shed load → `429` +
//! `Retry-After`). Graph files are loaded through the shared stat-aware
//! registry: a repeat submit of an unchanged path skips the file read and
//! the content hash, an edited file is reloaded.

use crate::commands::{FlagSpec, Flags};
use qcm::prelude::{ApiError, ErrorCode, JobView, SubmitRequest};
use qcm::QcmError;
use qcm_http::{api::MAX_WAIT, Api, AuthConfig, Server, ServerConfig};
use qcm_service::{AdmissionControl, MiningService, ServiceConfig};
use qcm_sync::Arc;
use std::io::{BufRead, Write};
use std::time::Duration;

const SERVE_FLAGS: FlagSpec = FlagSpec {
    values: &[
        "workers",
        "max-queued",
        "max-in-flight",
        "quota",
        "cache-capacity",
        "cache-ttl-ms",
        "format",
        "listen",
        "token",
        "graph-root",
    ],
    switches: &[],
};

const SUBMIT_FLAGS: FlagSpec = FlagSpec {
    values: &["gamma", "min-size", "tenant", "priority", "deadline-ms"],
    switches: &["nowait"],
};

const BARE_FLAGS: FlagSpec = FlagSpec {
    values: &[],
    switches: &[],
};

const SESSION_HELP: &str = "\
requests (one per line, one response line each):
  submit <graph_file> [--gamma <f>] [--min-size <n>] [--tenant <s>]
         [--priority low|normal|high] [--deadline-ms <n>] [--nowait]
  status <job_id>
  cancel <job_id>
  fetch <job_id>      (deprecated: use submit without --nowait, or status)
  metrics [prom]      (prom: multi-line Prometheus text exposition)
  help
  quit
note: this line protocol is deprecated; prefer `qcm serve --listen <addr>`
      and the versioned HTTP/1.1 JSON API";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// `qcm serve …` — HTTP listener with `--listen`, otherwise the deprecated
/// stdin/stdout line protocol. Either way the process drains the service
/// before exiting.
pub fn serve(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &SERVE_FLAGS)?;
    let format = match flags.values.get("format").map(String::as_str) {
        None | Some("text") => Format::Text,
        Some("json") => Format::Json,
        Some(other) => {
            return Err(QcmError::InvalidConfig(format!(
                "invalid value {other:?} for --format (expected text or json)"
            )))
        }
    };
    let workers: usize = flags.get("workers", 2usize)?;
    if workers == 0 {
        return Err(QcmError::InvalidConfig(
            "--workers must be at least 1".into(),
        ));
    }
    let config = ServiceConfig {
        workers,
        admission: AdmissionControl {
            max_queued: flags.get("max-queued", 64usize)?,
            max_in_flight: flags.get("max-in-flight", usize::MAX)?,
            per_tenant_quota: flags.get("quota", 16usize)?,
        },
        cache_capacity: flags.get("cache-capacity", 128usize)?,
        cache_ttl: flags
            .get_opt::<u64>("cache-ttl-ms")?
            .map(Duration::from_millis),
        ..ServiceConfig::default()
    };
    let auth = match flags.values.get("token") {
        None => AuthConfig::open(),
        Some(_) if !flags.values.contains_key("listen") => {
            return Err(QcmError::InvalidConfig(
                "--token requires --listen (the line protocol carries no auth header)".into(),
            ))
        }
        Some(raw) => AuthConfig::with_tokens(parse_tokens(raw)?),
    };
    let api = Api::over(MiningService::start(config), auth);
    // Network callers must not be able to make the server read arbitrary
    // local files: HTTP mode always confines graph paths to a root —
    // `--graph-root` or, by default, the serve process's working directory.
    // The local stdin line protocol stays unconfined unless the flag is
    // given (its caller already has the filesystem).
    let api = match flags.values.get("graph-root") {
        Some(dir) => api.with_graph_root(dir.clone()),
        None if flags.values.contains_key("listen") => {
            let cwd = std::env::current_dir().map_err(|e| {
                QcmError::InvalidConfig(format!("cannot resolve --graph-root: {e}"))
            })?;
            api.with_graph_root(cwd)
        }
        None => api,
    };

    if let Some(addr) = flags.values.get("listen") {
        return serve_http(api, addr, workers);
    }
    serve_lines(api, workers, format)
}

/// Parses `--token tok=tenant[,tok2=tenant2,…]`.
fn parse_tokens(raw: &str) -> Result<Vec<(String, String)>, QcmError> {
    raw.split(',')
        .map(|pair| {
            pair.split_once('=')
                .map(|(token, tenant)| (token.trim().to_string(), tenant.trim().to_string()))
                .filter(|(token, tenant)| !token.is_empty() && !tenant.is_empty())
                .ok_or_else(|| {
                    QcmError::InvalidConfig(format!(
                        "invalid --token entry {pair:?} (expected <token>=<tenant>)"
                    ))
                })
        })
        .collect()
}

/// HTTP mode: bind, announce the address, then hold the process open until
/// `quit` on stdin (graceful drain) or the process is killed.
fn serve_http(api: Api, addr: &str, _workers: usize) -> Result<(), QcmError> {
    let authed = api.auth().requires_token();
    let server = Server::start(
        Arc::new(api),
        ServerConfig {
            addr: addr.to_string(),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| QcmError::InvalidConfig(format!("cannot listen on {addr:?}: {e}")))?;
    println!(
        "qcm serve listening on http://{} (API v1{}); `quit` on stdin stops it",
        server.local_addr(),
        if authed {
            ", token auth"
        } else {
            ", open access"
        },
    );
    let _ = std::io::stdout().flush();
    let mut quit = false;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| QcmError::Engine(format!("stdin read error: {e}")))?;
        if matches!(line.trim(), "quit" | "exit" | "shutdown") {
            quit = true;
            break;
        }
    }
    if !quit {
        // stdin hit EOF (e.g. backgrounded with stdin on /dev/null): keep
        // the listener up until the process is signalled.
        loop {
            qcm_sync::thread::sleep(Duration::from_secs(3600));
        }
    }
    server.shutdown();
    Ok(())
}

/// Line-protocol mode: reads requests from stdin until EOF or `quit`, then
/// drains the service and exits.
fn serve_lines(api: Api, workers: usize, format: Format) -> Result<(), QcmError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if format == Format::Text {
        let _ = writeln!(
            out,
            "qcm serve ready ({workers} workers); `help` lists requests \
             [deprecated: prefer `qcm serve --listen <addr>` — HTTP/1.1 JSON API v1]"
        );
        let _ = out.flush();
    }
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| QcmError::Engine(format!("stdin read error: {e}")))?;
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let Some(verb) = tokens.first() else {
            continue; // blank line
        };
        if matches!(verb.as_str(), "quit" | "exit" | "shutdown") {
            break;
        }
        let response = handle_request(&api, verb, &tokens[1..], format);
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }
    drop(out);
    api.shutdown();
    Ok(())
}

/// Dispatches one request line; never fails the server — every error becomes
/// an error response carrying its stable code.
fn handle_request(api: &Api, verb: &str, args: &[String], format: Format) -> String {
    let result = match verb {
        "submit" => submit(api, args, format),
        "status" => status(api, args, format),
        "cancel" => cancel(api, args, format),
        "fetch" => fetch(api, args, format),
        "metrics" => metrics(api, args, format),
        "help" => Ok(match format {
            Format::Text => SESSION_HELP.to_string(),
            Format::Json => format!(
                "{{\"ok\":true,\"cmd\":\"help\",\"requests\":{},\"deprecated\":[\"fetch\"]}}",
                json_string("submit status cancel fetch metrics help quit")
            ),
        }),
        other => Err(ApiError::new(
            ErrorCode::NotFound,
            format!("unknown request {other:?} (try `help`)"),
        )),
    };
    match result {
        Ok(response) => response,
        Err(e) => match format {
            Format::Text => format!("error[{}]: {}", e.code, e.message),
            Format::Json => format!(
                "{{\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":{}}}}}",
                e.code,
                json_string(&e.message)
            ),
        },
    }
}

fn bad_request(e: impl std::fmt::Display) -> ApiError {
    ApiError::bad_request(e.to_string())
}

fn submit(api: &Api, args: &[String], format: Format) -> Result<String, ApiError> {
    let flags = Flags::parse(args, &SUBMIT_FLAGS).map_err(bad_request)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| ApiError::bad_request("submit requires a graph file path"))?;
    let mut request = SubmitRequest::new(
        path.clone(),
        flags.get("gamma", 0.9).map_err(bad_request)?,
        flags.get("min-size", 10).map_err(bad_request)?,
    );
    if let Some(priority) = flags.values.get("priority") {
        request.priority = priority.clone();
    }
    request.deadline_ms = flags.get_opt::<u64>("deadline-ms").map_err(bad_request)?;
    let tenant = flags
        .values
        .get("tenant")
        .cloned()
        .unwrap_or_else(|| "default".to_string());
    let submitted = api.submit(&request, &tenant)?;
    if flags.has_switch("nowait") {
        return Ok(match format {
            Format::Text => format!("job {} {}", submitted.job, submitted.status),
            Format::Json => format!(
                "{{\"ok\":true,\"cmd\":\"submit\",\"job\":{},\"status\":\"{}\"}}",
                submitted.job, submitted.status
            ),
        });
    }
    let view = wait_terminal(api, submitted.job)?;
    Ok(render_view("submit", &view, format))
}

fn parse_job_id(args: &[String], verb: &str) -> Result<u64, ApiError> {
    let flags = Flags::parse(args, &BARE_FLAGS).map_err(bad_request)?;
    let raw = flags
        .positional
        .first()
        .ok_or_else(|| ApiError::bad_request(format!("{verb} requires a job id")))?;
    raw.parse::<u64>()
        .map_err(|_| ApiError::bad_request(format!("invalid job id {raw:?}")))
}

fn status(api: &Api, args: &[String], format: Format) -> Result<String, ApiError> {
    let job = parse_job_id(args, "status")?;
    let view = api.job(job, Duration::ZERO, "default")?;
    Ok(match format {
        Format::Text => format!("job {} {}", view.job, view.status),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"status\",\"job\":{},\"status\":\"{}\"}}",
            view.job, view.status
        ),
    })
}

fn cancel(api: &Api, args: &[String], format: Format) -> Result<String, ApiError> {
    let job = parse_job_id(args, "cancel")?;
    let view = api.cancel(job, "default")?;
    Ok(match format {
        Format::Text => format!("job {} {}", view.job, view.status),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"cancel\",\"job\":{},\"status\":\"{}\"}}",
            view.job, view.status
        ),
    })
}

/// Deprecated verb, kept one release for line-protocol clients: equivalent
/// to long-polling `status` until terminal.
fn fetch(api: &Api, args: &[String], format: Format) -> Result<String, ApiError> {
    let job = parse_job_id(args, "fetch")?;
    let view = wait_terminal(api, job)?;
    if view.outcome.as_deref() == Some("cancelled") && view.num_maximal.is_none() {
        return Ok(match format {
            Format::Text => format!("job {} cancelled (never ran, no result)", view.job),
            Format::Json => format!(
                "{{\"ok\":true,\"cmd\":\"fetch\",\"job\":{},\"status\":\"cancelled\"}}",
                view.job
            ),
        });
    }
    Ok(render_view("fetch", &view, format))
}

/// Long-polls in bounded [`MAX_WAIT`] slices until the job is terminal —
/// the blocking the deprecated `MiningService::fetch` used to do, rebuilt
/// on the deadline-bounded API.
fn wait_terminal(api: &Api, job: u64) -> Result<JobView, ApiError> {
    loop {
        let view = api.job(job, MAX_WAIT, "default")?;
        if view.outcome.is_some() {
            return Ok(view);
        }
    }
}

fn metrics(api: &Api, args: &[String], format: Format) -> Result<String, ApiError> {
    let flags = Flags::parse(args, &BARE_FLAGS).map_err(bad_request)?;
    match flags.positional.first().map(String::as_str) {
        // `metrics prom`: Prometheus text exposition (multi-line — the one
        // deliberate exception to the line-per-response protocol, so a
        // scraper can be pointed straight at a serve session). Same renderer
        // as `GET /metrics` on the HTTP surface.
        Some("prom") => return Ok(api.metrics_prometheus().trim_end().to_string()),
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown metrics view {other:?} (expected `metrics` or `metrics prom`)"
            )))
        }
        None => {}
    }
    let m = api.metrics();
    Ok(match format {
        Format::Text => format!(
            "queue {} | in-flight {} | submitted {} (rejected {}) | completed {} | \
             cancelled {} | cache {}/{} hits (entries {}) | mined {} | \
             latency p50 {:?} p99 {:?} over {} samples ({} dropped)",
            m.queue_depth,
            m.in_flight,
            m.submitted,
            m.rejected,
            m.completed,
            m.cancelled,
            m.cache_hits,
            m.cache_hits + m.cache_misses,
            m.cache_entries,
            m.jobs_mined,
            m.p50_latency,
            m.p99_latency,
            m.latency_samples,
            m.latency_samples_dropped,
        ),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"metrics\",\"queue_depth\":{},\"in_flight\":{},\
             \"submitted\":{},\"rejected\":{},\"completed\":{},\"cancelled\":{},\
             \"failed\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\
             \"jobs_mined\":{},\"p50_latency_ms\":{},\"p99_latency_ms\":{},\
             \"latency_samples\":{},\"latency_samples_dropped\":{}}}",
            m.queue_depth,
            m.in_flight,
            m.submitted,
            m.rejected,
            m.completed,
            m.cancelled,
            m.failed,
            m.cache_hits,
            m.cache_misses,
            m.cache_entries,
            m.jobs_mined,
            m.p50_latency.as_millis(),
            m.p99_latency.as_millis(),
            m.latency_samples,
            m.latency_samples_dropped,
        ),
    })
}

/// Renders a terminal [`JobView`] (same field names as the HTTP wire
/// format, wrapped in the line protocol's `ok`/`cmd` envelope).
fn render_view(cmd: &str, view: &JobView, format: Format) -> String {
    let outcome = view.outcome.as_deref().unwrap_or("unknown");
    let cache_hit = view.cache_hit.unwrap_or(false);
    let complete = outcome == "complete";
    match format {
        Format::Text => format!(
            "job {} {} {} — {} maximal sets, mined in {}ms{}",
            view.job,
            if cache_hit { "HOT" } else { "cold" },
            outcome,
            view.num_maximal.unwrap_or(0),
            view.mining_ms.unwrap_or(0),
            if complete { "" } else { " (partial)" },
        ),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"{cmd}\",\"job\":{},\"tenant\":{},\
             \"outcome\":\"{outcome}\",\"complete\":{complete},\"cache_hit\":{cache_hit},\
             \"num_maximal\":{},\"raw_reported\":{},\"mining_ms\":{}}}",
            view.job,
            json_string(&view.tenant),
            view.num_maximal.unwrap_or(0),
            view.raw_reported.unwrap_or(0),
            view.mining_ms.unwrap_or(0),
        ),
    }
}

/// Minimal JSON string encoding (quotes, backslashes and control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::io;

    fn request(api: &Api, line: &str, format: Format) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        handle_request(api, &tokens[0], &tokens[1..], format)
    }

    fn with_tiny_graph_file<R>(tag: &str, f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("qcm_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(9);
        io::write_edge_list_file(&dataset.graph, &path).unwrap();
        let result = f(&path.to_string_lossy());
        std::fs::remove_dir_all(&dir).ok();
        result
    }

    fn open_api() -> Api {
        Api::start(ServiceConfig::default(), AuthConfig::open())
    }

    #[test]
    fn submit_twice_reports_cache_hit_in_json() {
        with_tiny_graph_file("hit", |path| {
            let api = open_api();
            let line = format!("submit {path} --gamma 0.8 --min-size 6");
            let cold = request(&api, &line, Format::Json);
            assert!(cold.contains("\"ok\":true"), "{cold}");
            assert!(cold.contains("\"cache_hit\":false"), "{cold}");
            let hot = request(&api, &line, Format::Json);
            assert!(hot.contains("\"cache_hit\":true"), "{hot}");
            let metrics = request(&api, "metrics", Format::Json);
            assert!(metrics.contains("\"cache_hits\":1"), "{metrics}");
            assert!(metrics.contains("\"jobs_mined\":1"), "{metrics}");
            assert_eq!(api.graph_loads(), 1, "repeat submit must not reload");
            api.shutdown();
        });
    }

    #[test]
    fn nowait_submit_supports_status_and_fetch() {
        with_tiny_graph_file("nowait", |path| {
            let api = open_api();
            let line = format!("submit {path} --gamma 0.8 --min-size 6 --nowait --tenant lab");
            let resp = request(&api, &line, Format::Json);
            assert!(resp.contains("\"job\":1"), "{resp}");
            let fetched = request(&api, "fetch 1", Format::Json);
            assert!(fetched.contains("\"tenant\":\"lab\""), "{fetched}");
            let status = request(&api, "status 1", Format::Json);
            assert!(status.contains("\"status\":\"completed\""), "{status}");
            api.shutdown();
        });
    }

    #[test]
    fn metrics_prom_is_wellformed_exposition() {
        with_tiny_graph_file("prom", |path| {
            let api = open_api();
            let line = format!("submit {path} --gamma 0.8 --min-size 6");
            let submitted = request(&api, &line, Format::Json);
            assert!(submitted.contains("\"ok\":true"), "{submitted}");
            let prom = request(&api, "metrics prom", Format::Text);
            qcm_obs::prometheus::check_text(&prom).expect("exposition must be well-formed");
            assert!(
                prom.contains("# TYPE qcm_service_jobs_mined_total counter"),
                "{prom}"
            );
            assert!(prom.contains("qcm_service_jobs_mined_total 1"), "{prom}");
            assert!(prom.contains("qcm_graph_edge_queries_total"), "{prom}");
            let bogus = request(&api, "metrics nope", Format::Text);
            assert!(bogus.starts_with("error[bad_request]:"), "{bogus}");
            api.shutdown();
        });
    }

    #[test]
    fn errors_carry_stable_codes_in_both_formats() {
        let api = open_api();
        for (line, code, needle) in [
            ("status 99", "unknown_job", "unknown job"),
            ("status abc", "bad_request", "invalid job id"),
            ("submit /no/such/file.txt", "unknown_graph", "cannot stat"),
            ("frobnicate 1", "not_found", "unknown request"),
            ("submit", "bad_request", "requires a graph file"),
        ] {
            let text = request(&api, line, Format::Text);
            assert!(
                text.starts_with(&format!("error[{code}]:")) && text.contains(needle),
                "{line} → {text}"
            );
            let json = request(&api, line, Format::Json);
            assert!(
                json.starts_with("{\"ok\":false,\"error\":{\"code\":"),
                "{line} → {json}"
            );
            assert!(
                json.contains(&format!("\"code\":\"{code}\"")),
                "{line} → {json}"
            );
        }
        api.shutdown();
    }

    #[test]
    fn token_flag_parses_pairs_and_rejects_garbage() {
        let pairs = parse_tokens("a=alpha,b=beta").unwrap();
        assert_eq!(
            pairs,
            vec![
                ("a".to_string(), "alpha".to_string()),
                ("b".to_string(), "beta".to_string())
            ]
        );
        assert!(parse_tokens("missing-equals").is_err());
        assert!(parse_tokens("=tenant").is_err());
        assert!(parse_tokens("token=").is_err());
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
