//! `qcm serve` — the mining job service over stdin/stdout.
//!
//! One line-delimited request per input line, exactly one response line per
//! request, in text (default) or JSON (`--format json`). The request grammar
//! mirrors the library API:
//!
//! ```text
//! submit <graph_file> [--gamma <f>] [--min-size <n>] [--tenant <s>]
//!        [--priority low|normal|high] [--deadline-ms <n>] [--nowait]
//! status <job_id>
//! cancel <job_id>
//! fetch <job_id>
//! metrics [prom]
//! help
//! quit
//! ```
//!
//! `metrics` answers with one line of counters (text or JSON); `metrics prom`
//! answers with the full Prometheus text exposition (multi-line) rendered
//! from the unified `qcm_obs` registry.
//!
//! `submit` waits for the job and responds with its result (a repeated query
//! responds instantly with `cache_hit` true); `submit --nowait` responds with
//! the job id immediately so `status`/`cancel`/`fetch` can drive the
//! lifecycle asynchronously. Graph files are loaded once per path (edge list
//! or checksummed binary snapshot) and reused across submits.

use crate::commands::{load_graph, FlagSpec, Flags};
use qcm::{QcmError, RunOutcome};
use qcm_graph::Graph;
use qcm_service::{
    AdmissionControl, JobId, JobRequest, JobResult, MiningService, Priority, ServiceConfig,
    ServiceError,
};
use qcm_sync::Arc;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::Duration;

const SERVE_FLAGS: FlagSpec = FlagSpec {
    values: &[
        "workers",
        "max-queued",
        "max-in-flight",
        "quota",
        "cache-capacity",
        "cache-ttl-ms",
        "format",
    ],
    switches: &[],
};

const SUBMIT_FLAGS: FlagSpec = FlagSpec {
    values: &["gamma", "min-size", "tenant", "priority", "deadline-ms"],
    switches: &["nowait"],
};

const BARE_FLAGS: FlagSpec = FlagSpec {
    values: &[],
    switches: &[],
};

const SESSION_HELP: &str = "\
requests (one per line, one response line each):
  submit <graph_file> [--gamma <f>] [--min-size <n>] [--tenant <s>]
         [--priority low|normal|high] [--deadline-ms <n>] [--nowait]
  status <job_id>
  cancel <job_id>
  fetch <job_id>
  metrics [prom]      (prom: multi-line Prometheus text exposition)
  help
  quit";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// How many distinct graphs the serve registry keeps resident at once.
const GRAPH_REGISTRY_CAP: usize = 64;

/// Graphs loaded so far, keyed by path, with the content hash computed once
/// at load: repeat submits of a registered path skip both the file read and
/// the `O(|V| + |E|)` fingerprint scan, so hot (cache-served) requests stay
/// cheap. Bounded like every other long-lived structure in the service: past
/// [`GRAPH_REGISTRY_CAP`] paths, the least-recently-used graph is dropped
/// (in-flight jobs keep their own `Arc`; a later submit just reloads the
/// file).
#[derive(Default)]
struct GraphRegistry {
    loaded: HashMap<String, (Arc<Graph>, u64, u64)>,
    tick: u64,
}

impl GraphRegistry {
    fn get_or_load(&mut self, path: &str) -> Result<(Arc<Graph>, u64), String> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((graph, fingerprint, last_used)) = self.loaded.get_mut(path) {
            *last_used = tick;
            return Ok((graph.clone(), *fingerprint));
        }
        let graph = Arc::new(load_graph(path).map_err(|e| e.to_string())?);
        let fingerprint = graph.content_hash();
        if self.loaded.len() >= GRAPH_REGISTRY_CAP {
            if let Some(victim) = self
                .loaded
                .iter()
                .min_by_key(|(_, (_, _, last_used))| *last_used)
                .map(|(k, _)| k.clone())
            {
                self.loaded.remove(&victim);
            }
        }
        self.loaded
            .insert(path.to_string(), (graph.clone(), fingerprint, tick));
        Ok((graph, fingerprint))
    }
}

/// `qcm serve …` — reads requests from stdin until EOF or `quit`, then
/// drains the service and exits.
pub fn serve(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &SERVE_FLAGS)?;
    let format = match flags.values.get("format").map(String::as_str) {
        None | Some("text") => Format::Text,
        Some("json") => Format::Json,
        Some(other) => {
            return Err(QcmError::InvalidConfig(format!(
                "invalid value {other:?} for --format (expected text or json)"
            )))
        }
    };
    let workers: usize = flags.get("workers", 2usize)?;
    if workers == 0 {
        return Err(QcmError::InvalidConfig(
            "--workers must be at least 1".into(),
        ));
    }
    let config = ServiceConfig {
        workers,
        admission: AdmissionControl {
            max_queued: flags.get("max-queued", 64usize)?,
            max_in_flight: flags.get("max-in-flight", usize::MAX)?,
            per_tenant_quota: flags.get("quota", 16usize)?,
        },
        cache_capacity: flags.get("cache-capacity", 128usize)?,
        cache_ttl: flags
            .get_opt::<u64>("cache-ttl-ms")?
            .map(Duration::from_millis),
        ..ServiceConfig::default()
    };
    let service = MiningService::start(config);
    let mut graphs = GraphRegistry::default();

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if format == Format::Text {
        let _ = writeln!(
            out,
            "qcm serve ready ({workers} workers); `help` lists requests"
        );
        let _ = out.flush();
    }
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| QcmError::Engine(format!("stdin read error: {e}")))?;
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        let Some(verb) = tokens.first() else {
            continue; // blank line
        };
        if matches!(verb.as_str(), "quit" | "exit" | "shutdown") {
            break;
        }
        let response = handle_request(&service, &mut graphs, verb, &tokens[1..], format);
        let _ = writeln!(out, "{response}");
        let _ = out.flush();
    }
    drop(out);
    service.shutdown();
    Ok(())
}

/// Dispatches one request line; never fails the server — every error becomes
/// an error response.
fn handle_request(
    service: &MiningService,
    graphs: &mut GraphRegistry,
    verb: &str,
    args: &[String],
    format: Format,
) -> String {
    let result = match verb {
        "submit" => submit(service, graphs, args, format),
        "status" => status(service, args, format),
        "cancel" => cancel(service, args, format),
        "fetch" => fetch(service, args, format),
        "metrics" => metrics(service, args, format),
        "help" => Ok(match format {
            Format::Text => SESSION_HELP.to_string(),
            Format::Json => format!(
                "{{\"ok\":true,\"cmd\":\"help\",\"requests\":{}}}",
                json_string("submit status cancel fetch metrics help quit")
            ),
        }),
        other => Err(format!("unknown request {other:?} (try `help`)")),
    };
    match result {
        Ok(response) => response,
        Err(message) => match format {
            Format::Text => format!("error: {message}"),
            Format::Json => format!("{{\"ok\":false,\"error\":{}}}", json_string(&message)),
        },
    }
}

fn submit(
    service: &MiningService,
    graphs: &mut GraphRegistry,
    args: &[String],
    format: Format,
) -> Result<String, String> {
    let flags = Flags::parse(args, &SUBMIT_FLAGS).map_err(|e| e.to_string())?;
    let path = flags
        .positional
        .first()
        .ok_or("submit requires a graph file path")?;
    let (graph, fingerprint) = graphs.get_or_load(path)?;
    let gamma: f64 = flags.get("gamma", 0.9).map_err(|e| e.to_string())?;
    let min_size: usize = flags.get("min-size", 10).map_err(|e| e.to_string())?;
    let tenant = flags
        .values
        .get("tenant")
        .cloned()
        .unwrap_or_else(|| "default".to_string());
    let priority = match flags.values.get("priority") {
        None => Priority::Normal,
        Some(raw) => Priority::parse(raw).ok_or_else(|| format!("invalid priority {raw:?}"))?,
    };
    let mut request = JobRequest::new(graph, gamma, min_size)
        .tenant(tenant)
        .priority(priority)
        .fingerprint(fingerprint);
    if let Some(ms) = flags
        .get_opt::<u64>("deadline-ms")
        .map_err(|e| e.to_string())?
    {
        request = request.deadline(Duration::from_millis(ms));
    }
    let job = service.submit(request).map_err(|e| e.to_string())?;
    if flags.has_switch("nowait") {
        let status = service.status(job).map_err(|e| e.to_string())?;
        return Ok(match format {
            Format::Text => format!("job {job} {status}"),
            Format::Json => {
                format!("{{\"ok\":true,\"cmd\":\"submit\",\"job\":{job},\"status\":\"{status}\"}}")
            }
        });
    }
    let result = service.fetch(job).map_err(|e| e.to_string())?;
    Ok(render_result("submit", &result, format))
}

fn parse_job_id(args: &[String], verb: &str) -> Result<JobId, String> {
    let flags = Flags::parse(args, &BARE_FLAGS).map_err(|e| e.to_string())?;
    let raw = flags
        .positional
        .first()
        .ok_or_else(|| format!("{verb} requires a job id"))?;
    raw.parse::<u64>()
        .map(JobId::from_raw)
        .map_err(|_| format!("invalid job id {raw:?}"))
}

fn status(service: &MiningService, args: &[String], format: Format) -> Result<String, String> {
    let job = parse_job_id(args, "status")?;
    let status = service.status(job).map_err(|e| e.to_string())?;
    Ok(match format {
        Format::Text => format!("job {job} {status}"),
        Format::Json => {
            format!("{{\"ok\":true,\"cmd\":\"status\",\"job\":{job},\"status\":\"{status}\"}}")
        }
    })
}

fn cancel(service: &MiningService, args: &[String], format: Format) -> Result<String, String> {
    let job = parse_job_id(args, "cancel")?;
    let status = service.cancel(job).map_err(|e| e.to_string())?;
    Ok(match format {
        Format::Text => format!("job {job} {status}"),
        Format::Json => {
            format!("{{\"ok\":true,\"cmd\":\"cancel\",\"job\":{job},\"status\":\"{status}\"}}")
        }
    })
}

fn fetch(service: &MiningService, args: &[String], format: Format) -> Result<String, String> {
    let job = parse_job_id(args, "fetch")?;
    match service.fetch(job) {
        Ok(result) => Ok(render_result("fetch", &result, format)),
        Err(ServiceError::Cancelled(job)) => Ok(match format {
            Format::Text => format!("job {job} cancelled (never ran, no result)"),
            Format::Json => {
                format!("{{\"ok\":true,\"cmd\":\"fetch\",\"job\":{job},\"status\":\"cancelled\"}}")
            }
        }),
        Err(e) => Err(e.to_string()),
    }
}

fn metrics(service: &MiningService, args: &[String], format: Format) -> Result<String, String> {
    let flags = Flags::parse(args, &BARE_FLAGS).map_err(|e| e.to_string())?;
    let m = service.metrics();
    match flags.positional.first().map(String::as_str) {
        // `metrics prom`: Prometheus text exposition (multi-line — the one
        // deliberate exception to the line-per-response protocol, so a
        // scraper can be pointed straight at a serve session).
        Some("prom") => {
            let registry = qcm_obs::Registry::new();
            m.publish(&registry);
            qcm_graph::neighborhoods::perf::snapshot().publish(&registry);
            return Ok(qcm_obs::prometheus::render(&registry)
                .trim_end()
                .to_string());
        }
        Some(other) => {
            return Err(format!(
                "unknown metrics view {other:?} (expected `metrics` or `metrics prom`)"
            ))
        }
        None => {}
    }
    Ok(match format {
        Format::Text => format!(
            "queue {} | in-flight {} | submitted {} (rejected {}) | completed {} | \
             cancelled {} | cache {}/{} hits (entries {}) | mined {} | \
             latency p50 {:?} p99 {:?} over {} samples ({} dropped)",
            m.queue_depth,
            m.in_flight,
            m.submitted,
            m.rejected,
            m.completed,
            m.cancelled,
            m.cache_hits,
            m.cache_hits + m.cache_misses,
            m.cache_entries,
            m.jobs_mined,
            m.p50_latency,
            m.p99_latency,
            m.latency_samples,
            m.latency_samples_dropped,
        ),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"metrics\",\"queue_depth\":{},\"in_flight\":{},\
             \"submitted\":{},\"rejected\":{},\"completed\":{},\"cancelled\":{},\
             \"failed\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\
             \"jobs_mined\":{},\"p50_latency_ms\":{},\"p99_latency_ms\":{},\
             \"latency_samples\":{},\"latency_samples_dropped\":{}}}",
            m.queue_depth,
            m.in_flight,
            m.submitted,
            m.rejected,
            m.completed,
            m.cancelled,
            m.failed,
            m.cache_hits,
            m.cache_misses,
            m.cache_entries,
            m.jobs_mined,
            m.p50_latency.as_millis(),
            m.p99_latency.as_millis(),
            m.latency_samples,
            m.latency_samples_dropped,
        ),
    })
}

fn render_result(cmd: &str, result: &JobResult, format: Format) -> String {
    let outcome = match result.outcome() {
        RunOutcome::Complete => "complete",
        RunOutcome::Cancelled => "cancelled",
        RunOutcome::DeadlineExceeded => "deadline_exceeded",
        RunOutcome::Faulted => "faulted",
    };
    match format {
        Format::Text => format!(
            "job {} {} {} — {} maximal sets, mined in {:?}{}",
            result.job,
            if result.cache_hit { "HOT" } else { "cold" },
            outcome,
            result.maximal().len(),
            result.answer.mining_time,
            if result.is_complete() {
                ""
            } else {
                " (partial)"
            },
        ),
        Format::Json => format!(
            "{{\"ok\":true,\"cmd\":\"{cmd}\",\"job\":{},\"tenant\":{},\
             \"outcome\":\"{outcome}\",\"complete\":{},\"cache_hit\":{},\
             \"num_maximal\":{},\"raw_reported\":{},\"mining_ms\":{}}}",
            result.job,
            json_string(&result.tenant),
            result.is_complete(),
            result.cache_hit,
            result.maximal().len(),
            result.answer.raw_reported,
            result.answer.mining_time.as_millis(),
        ),
    }
}

/// Minimal JSON string encoding (quotes, backslashes and control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::io;

    fn request(
        service: &MiningService,
        graphs: &mut GraphRegistry,
        line: &str,
        format: Format,
    ) -> String {
        let tokens: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        handle_request(service, graphs, &tokens[0], &tokens[1..], format)
    }

    fn with_tiny_graph_file<R>(tag: &str, f: impl FnOnce(&str) -> R) -> R {
        let dir = std::env::temp_dir().join(format!("qcm_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(9);
        io::write_edge_list_file(&dataset.graph, &path).unwrap();
        let result = f(&path.to_string_lossy());
        std::fs::remove_dir_all(&dir).ok();
        result
    }

    #[test]
    fn submit_twice_reports_cache_hit_in_json() {
        with_tiny_graph_file("hit", |path| {
            let service = MiningService::start(ServiceConfig::default());
            let mut graphs = GraphRegistry::default();
            let line = format!("submit {path} --gamma 0.8 --min-size 6");
            let cold = request(&service, &mut graphs, &line, Format::Json);
            assert!(cold.contains("\"ok\":true"), "{cold}");
            assert!(cold.contains("\"cache_hit\":false"), "{cold}");
            let hot = request(&service, &mut graphs, &line, Format::Json);
            assert!(hot.contains("\"cache_hit\":true"), "{hot}");
            let metrics = request(&service, &mut graphs, "metrics", Format::Json);
            assert!(metrics.contains("\"cache_hits\":1"), "{metrics}");
            assert!(metrics.contains("\"jobs_mined\":1"), "{metrics}");
            service.shutdown();
        });
    }

    #[test]
    fn nowait_submit_supports_status_and_fetch() {
        with_tiny_graph_file("nowait", |path| {
            let service = MiningService::start(ServiceConfig::default());
            let mut graphs = GraphRegistry::default();
            let line = format!("submit {path} --gamma 0.8 --min-size 6 --nowait --tenant lab");
            let resp = request(&service, &mut graphs, &line, Format::Json);
            assert!(resp.contains("\"job\":1"), "{resp}");
            let fetched = request(&service, &mut graphs, "fetch 1", Format::Json);
            assert!(fetched.contains("\"tenant\":\"lab\""), "{fetched}");
            let status = request(&service, &mut graphs, "status 1", Format::Json);
            assert!(status.contains("\"status\":\"completed\""), "{status}");
            service.shutdown();
        });
    }

    #[test]
    fn metrics_prom_is_wellformed_exposition() {
        with_tiny_graph_file("prom", |path| {
            let service = MiningService::start(ServiceConfig::default());
            let mut graphs = GraphRegistry::default();
            let line = format!("submit {path} --gamma 0.8 --min-size 6");
            let submitted = request(&service, &mut graphs, &line, Format::Json);
            assert!(submitted.contains("\"ok\":true"), "{submitted}");
            let prom = request(&service, &mut graphs, "metrics prom", Format::Text);
            qcm_obs::prometheus::check_text(&prom).expect("exposition must be well-formed");
            assert!(
                prom.contains("# TYPE qcm_service_jobs_mined_total counter"),
                "{prom}"
            );
            assert!(prom.contains("qcm_service_jobs_mined_total 1"), "{prom}");
            assert!(prom.contains("qcm_graph_edge_queries_total"), "{prom}");
            let bogus = request(&service, &mut graphs, "metrics nope", Format::Text);
            assert!(bogus.starts_with("error:"), "{bogus}");
            service.shutdown();
        });
    }

    #[test]
    fn errors_are_responses_not_crashes() {
        let service = MiningService::start(ServiceConfig::default());
        let mut graphs = GraphRegistry::default();
        for (line, needle) in [
            ("status 99", "unknown job"),
            ("status abc", "invalid job id"),
            ("submit /no/such/file.txt", "I/O"),
            ("frobnicate 1", "unknown request"),
            ("submit", "requires a graph file"),
        ] {
            let text = request(&service, &mut graphs, line, Format::Text);
            assert!(
                text.starts_with("error:") && text.contains(needle),
                "{line} → {text}"
            );
            let json = request(&service, &mut graphs, line, Format::Json);
            assert!(json.starts_with("{\"ok\":false"), "{line} → {json}");
        }
        service.shutdown();
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
