//! CLI subcommand implementations and a small, strict flag parser.
//!
//! Every subcommand returns the workspace-wide typed [`QcmError`]; `qcm mine`
//! drives the unified [`Session`] front door, so the CLI gets builder-time
//! validation, deadlines (`--deadline-ms`) and partial-result labelling for
//! free.

use qcm::{Backend, MiningReport, QcmError, Session};
use qcm_graph::{io, Graph, GraphStats};
use qcm_sync::Arc;
use std::collections::HashMap;
use std::io::Write;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
qcm — maximal quasi-clique miner (algorithm-system codesign reproduction)

USAGE:
    qcm mine <edge_list> --gamma <0..1> --min-size <n> [options]
    qcm trace <edge_list> [mine options] [--out <file>]
    qcm serve [--listen <addr>] [--workers <n>] [--format json|text] [options]
    qcm generate --dataset <name> --output <file> [--seed <n>]
    qcm stats <edge_list>
    qcm fingerprint <edge_list>
    qcm datasets
    qcm help

TRACE:
    runs one traced mining run (hierarchical spans: run → decompose → task →
    mine_phase → steal/pull/spill) and writes Chrome trace-event JSON — load
    it in Perfetto or chrome://tracing. Takes the MINE OPTIONS below (except
    --format/--output) plus:

    --out <file>          trace output path (default trace.json)

SERVE:
    runs the multi-tenant mining job service. With --listen it speaks the
    versioned HTTP/1.1 JSON API (POST /v1/jobs, GET /v1/jobs/<id>?wait_ms=,
    DELETE /v1/jobs/<id>, GET|PUT /v1/graphs, GET /metrics, GET /healthz);
    without it, the DEPRECATED stdin/stdout line protocol (one request per
    line, one response line each — type `help` inside the session).

    --listen <addr>       serve HTTP on <addr> (e.g. 127.0.0.1:8080; port 0
                          picks a free port, printed at startup)
    --token <t>=<tenant>  HTTP bearer-token auth (comma-separate for more);
                          without it the service is open access
    --graph-root <dir>    confine graph paths in requests to this directory
                          (HTTP mode defaults to the working directory;
                          without --listen the default is unconfined)
    --workers <n>         worker threads (default 2)
    --max-queued <n>      admission: max queued jobs (default 64)
    --max-in-flight <n>   admission: max concurrently mined jobs (default: unbounded)
    --quota <n>           admission: max unfinished jobs per tenant (default 16)
    --cache-capacity <n>  result-cache capacity in answers (default 128)
    --cache-ttl-ms <n>    result-cache time-to-live (default: no expiry)
    --format <fmt>        response format: text (default) or json

MINE OPTIONS:
    --gamma <f>          minimum degree ratio γ (default 0.9)
    --min-size <n>       minimum quasi-clique size τ_size (default 10)
    --threads <n>        mining threads per machine (default: available cores, max 8)
    --machines <n>       simulated machines (default 1)
    --tau-split <n>      big-task threshold τ_split (default 100)
    --tau-time-ms <n>    decomposition timeout τ_time in milliseconds (default 10)
    --deadline-ms <n>    wall-clock budget; an exceeded deadline returns the
                         partial results found so far, labelled as such
    --transport <t>      inter-machine transport: inproc (default, zero-copy)
                         or strict (every message round-trips its wire form)
    --format <fmt>       output format: text (default) or json
    --serial             use the single-threaded reference miner
    --output <file>      write the result sets to a file (default: print summary only)";

/// Which flags a subcommand accepts.
pub(crate) struct FlagSpec {
    /// `--key value` flags.
    pub(crate) values: &'static [&'static str],
    /// Bare `--switch` flags.
    pub(crate) switches: &'static [&'static str],
}

const MINE_FLAGS: FlagSpec = FlagSpec {
    values: &[
        "gamma",
        "min-size",
        "threads",
        "machines",
        "tau-split",
        "tau-time-ms",
        "deadline-ms",
        "transport",
        "format",
        "output",
    ],
    switches: &["serial"],
};

const TRACE_FLAGS: FlagSpec = FlagSpec {
    values: &[
        "gamma",
        "min-size",
        "threads",
        "machines",
        "tau-split",
        "tau-time-ms",
        "deadline-ms",
        "transport",
        "out",
    ],
    switches: &["serial"],
};

const GENERATE_FLAGS: FlagSpec = FlagSpec {
    values: &["dataset", "output", "seed"],
    switches: &[],
};

const STATS_FLAGS: FlagSpec = FlagSpec {
    values: &[],
    switches: &[],
};

/// Parsed command-line flags: `--key value` pairs plus bare switches.
#[derive(Debug)]
pub(crate) struct Flags {
    pub(crate) positional: Vec<String>,
    pub(crate) values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` against `spec`, rejecting unknown and duplicate flags.
    pub(crate) fn parse(args: &[String], spec: &FlagSpec) -> Result<Self, QcmError> {
        let mut positional = Vec::new();
        let mut values = HashMap::new();
        let mut switches: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                if spec.switches.contains(&name) {
                    if switches.iter().any(|s| s == name) {
                        return Err(QcmError::InvalidConfig(format!("duplicate flag --{name}")));
                    }
                    switches.push(name.to_string());
                    i += 1;
                    continue;
                }
                if !spec.values.contains(&name) {
                    return Err(QcmError::InvalidConfig(format!(
                        "unknown flag --{name} (run `qcm help` for the flag list)"
                    )));
                }
                let value = args.get(i + 1).ok_or_else(|| {
                    QcmError::InvalidConfig(format!("flag --{name} expects a value"))
                })?;
                if values.insert(name.to_string(), value.clone()).is_some() {
                    return Err(QcmError::InvalidConfig(format!("duplicate flag --{name}")));
                }
                i += 2;
            } else {
                positional.push(arg.clone());
                i += 1;
            }
        }
        Ok(Flags {
            positional,
            values,
            switches,
        })
    }

    pub(crate) fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, QcmError> {
        Ok(self.get_opt(name)?.unwrap_or(default))
    }

    pub(crate) fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, QcmError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
                QcmError::InvalidConfig(format!("invalid value {raw:?} for --{name}"))
            }),
        }
    }

    pub(crate) fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Output format of `qcm mine`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
}

/// `qcm mine <edge_list> …`
pub fn mine(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &MINE_FLAGS)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| QcmError::InvalidConfig("mine requires an edge-list path".into()))?;
    let format = match flags.values.get("format").map(String::as_str) {
        None | Some("text") => OutputFormat::Text,
        Some("json") => OutputFormat::Json,
        Some(other) => {
            return Err(QcmError::InvalidConfig(format!(
                "invalid value {other:?} for --format (expected text or json)"
            )))
        }
    };
    let graph = load_graph(path)?;
    let (builder, gamma, min_size) = session_builder_from_flags(&flags)?;
    let session = builder.build()?;

    if format == OutputFormat::Text {
        println!(
            "graph: {} vertices, {} edges; mining γ={gamma}, τ_size={min_size}",
            graph.num_vertices(),
            graph.num_edges()
        );
    }
    let graph = Arc::new(graph);
    let report = session.run(&graph)?;

    match format {
        OutputFormat::Json => println!("{}", report_to_json(&report, gamma, min_size)),
        OutputFormat::Text => print_text_report(&report),
    }
    if let Some(path) = flags.values.get("output") {
        write_results(&report, path)?;
        if format == OutputFormat::Text {
            println!("results written to {path}");
        }
    }
    Ok(())
}

/// Builds a [`SessionBuilder`] from the shared mine/trace flag set,
/// validating the cluster-shape flags unconditionally so a bad value is
/// rejected even when `--serial` makes them unused. Returns the builder
/// plus the parsed `(γ, τ_size)` for report headers.
fn session_builder_from_flags(
    flags: &Flags,
) -> Result<(qcm::SessionBuilder, f64, usize), QcmError> {
    let gamma: f64 = flags.get("gamma", 0.9)?;
    let min_size: usize = flags.get("min-size", 10)?;
    let threads: usize = flags.get("threads", default_threads())?;
    let machines: usize = flags.get("machines", 1usize)?;
    if threads == 0 {
        return Err(QcmError::InvalidConfig(
            "--threads must be at least 1".into(),
        ));
    }
    if machines == 0 {
        return Err(QcmError::InvalidConfig(
            "--machines must be at least 1".into(),
        ));
    }
    let backend = if flags.has_switch("serial") {
        Backend::Serial
    } else {
        let transport = match flags.values.get("transport").map(String::as_str) {
            None | Some("inproc") => qcm::TransportKind::InProc,
            Some("strict") => qcm::TransportKind::InProcStrict,
            Some(other) => {
                return Err(QcmError::InvalidConfig(format!(
                    "invalid value {other:?} for --transport (expected inproc or strict; \
                     the fault simulator is driven through the library API)"
                )))
            }
        };
        Backend::Parallel {
            threads,
            machines,
            transport,
        }
    };
    let tau_split: usize = flags.get("tau-split", 100usize)?;
    let tau_time_ms: u64 = flags.get("tau-time-ms", 10u64)?;
    let mut builder = Session::builder()
        .gamma(gamma)
        .min_size(min_size)
        .backend(backend)
        .tau_split(tau_split)
        .tau_time(Duration::from_millis(tau_time_ms));
    if let Some(ms) = flags.get_opt::<u64>("deadline-ms")? {
        builder = builder.deadline(Duration::from_millis(ms));
    }
    Ok((builder, gamma, min_size))
}

fn print_text_report(report: &MiningReport) {
    println!(
        "found {} maximal quasi-cliques in {:.3} s",
        report.maximal.len(),
        report.elapsed.as_secs_f64()
    );
    if !report.is_complete() {
        println!(
            "note: run ended early ({:?}); only part of the search space was explored and \
             some reported sets may not be maximal in the full graph",
            report.outcome
        );
    }
    if let Some(p) = report
        .engine_metrics()
        .and_then(|m| m.task_time_percentiles())
    {
        println!(
            "task time p50/p95/p99: {:.3} / {:.3} / {:.3} ms",
            p.p50.as_secs_f64() * 1e3,
            p.p95.as_secs_f64() * 1e3,
            p.p99.as_secs_f64() * 1e3
        );
    }
    for (i, members) in report.maximal.iter().take(10).enumerate() {
        let ids: Vec<String> = members.iter().map(|v| v.to_string()).collect();
        println!(
            "  #{:<3} |S|={:<3} {{{}}}",
            i + 1,
            members.len(),
            ids.join(", ")
        );
    }
    if report.maximal.len() > 10 {
        println!(
            "  … ({} more; use --output to save all)",
            report.maximal.len() - 10
        );
    }
}

/// Renders the report as a single JSON object (no external dependencies, so
/// the encoding is hand-rolled; all emitted values are numbers, booleans and
/// fixed keywords).
fn report_to_json(report: &MiningReport, gamma: f64, min_size: usize) -> String {
    let outcome = match report.outcome {
        qcm::RunOutcome::Complete => "complete",
        qcm::RunOutcome::Cancelled => "cancelled",
        qcm::RunOutcome::DeadlineExceeded => "deadline_exceeded",
        qcm::RunOutcome::Faulted => "faulted",
    };
    let sets: Vec<String> = report
        .maximal
        .iter()
        .map(|members| {
            let ids: Vec<String> = members.iter().map(|v| v.raw().to_string()).collect();
            format!("[{}]", ids.join(","))
        })
        .collect();
    // Per-task wall-time percentiles, present only for engine-backed runs
    // (the serial miner has no task log).
    let task_time = report
        .engine_metrics()
        .and_then(|m| m.task_time_percentiles())
        .map(|p| {
            format!(
                ",\"task_time_ms\":{{\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}}",
                p.p50.as_secs_f64() * 1e3,
                p.p95.as_secs_f64() * 1e3,
                p.p99.as_secs_f64() * 1e3
            )
        })
        .unwrap_or_default();
    format!(
        "{{\"gamma\":{gamma},\"min_size\":{min_size},\"outcome\":\"{outcome}\",\
         \"complete\":{},\"elapsed_ms\":{},\"raw_reported\":{},\"num_maximal\":{}{task_time},\
         \"maximal\":[{}]}}",
        report.is_complete(),
        report.elapsed.as_millis(),
        report.raw_reported,
        report.maximal.len(),
        sets.join(",")
    )
}

/// `qcm trace <edge_list> … --out <file>` — one traced mining run.
///
/// Accepts the `qcm mine` run flags, enables span recording for the run and
/// writes the result as Chrome trace-event JSON (loadable in Perfetto /
/// `chrome://tracing`), then prints a one-line span summary plus the
/// per-phase self-time breakdown — the greppable surface CI's trace-smoke
/// step asserts on.
pub fn trace(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &TRACE_FLAGS)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| QcmError::InvalidConfig("trace requires an edge-list path".into()))?;
    let out_path = flags
        .values
        .get("out")
        .cloned()
        .unwrap_or_else(|| "trace.json".to_string());
    let graph = Arc::new(load_graph(path)?);
    let (builder, gamma, min_size) = session_builder_from_flags(&flags)?;
    let session = builder.tracing(qcm_obs::TraceConfig::default()).build()?;
    println!(
        "graph: {} vertices, {} edges; tracing mine γ={gamma}, τ_size={min_size}",
        graph.num_vertices(),
        graph.num_edges()
    );
    let report = session.run(&graph)?;
    let trace = report.trace.as_ref().ok_or_else(|| {
        QcmError::Engine(
            "tracing was unavailable: another recording is active in this process".into(),
        )
    })?;
    let json = qcm_obs::chrome::render(trace);
    std::fs::write(&out_path, &json)
        .map_err(|e| QcmError::Engine(format!("cannot write {out_path}: {e}")))?;
    println!(
        "spans={} run={} mine_phase={} task={} dropped={}",
        trace.spans.len(),
        trace.count(qcm_obs::SpanKind::Run),
        trace.count(qcm_obs::SpanKind::MinePhase),
        trace.count(qcm_obs::SpanKind::Task),
        trace.dropped
    );
    for (kind, us) in qcm_obs::self_time_by_kind(trace) {
        println!("self_time_us {kind}={us}");
    }
    println!(
        "found {} maximal quasi-cliques; trace written to {out_path}",
        report.maximal.len()
    );
    Ok(())
}

/// `qcm generate --dataset <name> --output <file>`
pub fn generate(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &GENERATE_FLAGS)?;
    let name = flags
        .values
        .get("dataset")
        .ok_or_else(|| QcmError::InvalidConfig("generate requires --dataset <name>".into()))?;
    let output = flags
        .values
        .get("output")
        .ok_or_else(|| QcmError::InvalidConfig("generate requires --output <file>".into()))?;
    let mut spec = qcm_gen::datasets::all_datasets()
        .into_iter()
        .chain(std::iter::once(qcm_gen::datasets::tiny_test_spec(7)))
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            QcmError::InvalidConfig(format!(
                "unknown dataset {name}; run `qcm datasets` for the list"
            ))
        })?;
    spec.seed = flags.get("seed", spec.seed)?;
    let dataset = spec.generate();
    io::write_edge_list_file(&dataset.graph, output)?;
    println!(
        "wrote {} ({} vertices, {} edges, {} planted communities) to {output}",
        spec.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.planted.len()
    );
    println!(
        "suggested mining parameters: --gamma {} --min-size {} --tau-split {} --tau-time-ms {}",
        spec.gamma, spec.min_size, spec.tau_split, spec.tau_time_ms
    );
    Ok(())
}

/// `qcm stats <edge_list>`
pub fn stats(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &STATS_FLAGS)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| QcmError::InvalidConfig("stats requires an edge-list path".into()))?;
    let graph = load_graph(path)?;
    print_stats(&graph);
    Ok(())
}

/// Loads a graph from either a SNAP-style edge list or a `QCMGRPH` binary
/// snapshot, sniffing the magic bytes (the snapshot path goes through the
/// checksummed loader, so corrupt files are rejected with a typed error).
pub(crate) fn load_graph(path: &str) -> Result<Graph, QcmError> {
    Ok(io::read_auto_file(path)?)
}

/// `qcm fingerprint <edge_list>` — prints the stable content hash that keys
/// the service result cache and graph registries, plus the neighborhood-index
/// shape a service would build for this graph (hub threshold, hub count and
/// index memory), so cache keys and perf reports are explainable.
pub fn fingerprint(args: &[String]) -> Result<(), QcmError> {
    let flags = Flags::parse(args, &STATS_FLAGS)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| QcmError::InvalidConfig("fingerprint requires an edge-list path".into()))?;
    let graph = Arc::new(load_graph(path)?);
    println!(
        "{path}: {} vertices, {} edges, content hash {:#018x}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.content_hash()
    );
    let index = qcm::NeighborhoodIndex::build(graph.clone(), qcm::IndexSpec::Auto);
    println!(
        "neighborhood index (auto): bitset threshold {} (degree ≥), {} hub vertices of {}, \
         index memory {} bytes (csr {} bytes)",
        index.threshold(),
        index.hub_count(),
        graph.num_vertices(),
        index.memory_bytes(),
        graph.memory_bytes()
    );
    Ok(())
}

/// `qcm datasets`
pub fn list_datasets() -> Result<(), QcmError> {
    println!("available synthetic stand-in datasets (see DESIGN.md for the mapping to Table 1):");
    let tiny = qcm_gen::datasets::tiny_test_spec(7);
    for spec in qcm_gen::datasets::all_datasets()
        .into_iter()
        .chain(std::iter::once(tiny))
    {
        println!(
            "  {:<12} |V|≈{:<7} γ={:<4} τ_size={:<3} τ_split={:<5} τ_time={}ms",
            spec.name,
            spec.num_vertices,
            spec.gamma,
            spec.min_size,
            spec.tau_split,
            spec.tau_time_ms
        );
    }
    Ok(())
}

fn print_stats(graph: &Graph) {
    let stats = GraphStats::compute(graph);
    println!("vertices            : {}", stats.num_vertices);
    println!("edges               : {}", stats.num_edges);
    println!(
        "min / avg / max deg : {} / {:.2} / {}",
        stats.min_degree, stats.avg_degree, stats.max_degree
    );
    println!("degeneracy          : {}", stats.degeneracy);
    println!(
        "connected components: {} (largest {})",
        stats.num_components, stats.largest_component
    );
}

fn write_results(report: &MiningReport, path: &str) -> Result<(), QcmError> {
    let mut file = std::fs::File::create(path)
        .map_err(|e| QcmError::Engine(format!("cannot create {path}: {e}")))?;
    for members in report.maximal.iter() {
        let ids: Vec<String> = members.iter().map(|v| v.to_string()).collect();
        writeln!(file, "{}", ids.join(" "))
            .map_err(|e| QcmError::Engine(format!("write error: {e}")))?;
    }
    Ok(())
}

fn default_threads() -> usize {
    qcm_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parser_handles_values_switches_and_positionals() {
        let flags = Flags::parse(
            &args(&[
                "input.txt",
                "--gamma",
                "0.8",
                "--serial",
                "--min-size",
                "12",
            ]),
            &MINE_FLAGS,
        )
        .unwrap();
        assert_eq!(flags.positional, vec!["input.txt"]);
        assert_eq!(flags.get::<f64>("gamma", 0.9).unwrap(), 0.8);
        assert_eq!(flags.get::<usize>("min-size", 10).unwrap(), 12);
        assert_eq!(flags.get::<usize>("threads", 3).unwrap(), 3);
        assert!(flags.has_switch("serial"));
        assert!(!flags.has_switch("quick"));
    }

    #[test]
    fn flag_parser_rejects_missing_values_and_bad_numbers() {
        assert!(matches!(
            Flags::parse(&args(&["--gamma"]), &MINE_FLAGS),
            Err(QcmError::InvalidConfig(_))
        ));
        let flags = Flags::parse(&args(&["--gamma", "abc"]), &MINE_FLAGS).unwrap();
        assert!(matches!(
            flags.get::<f64>("gamma", 0.9),
            Err(QcmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn flag_parser_rejects_unknown_flags() {
        let err = Flags::parse(&args(&["--no-such-flag", "1"]), &MINE_FLAGS).unwrap_err();
        let QcmError::InvalidConfig(msg) = err else {
            panic!("expected InvalidConfig");
        };
        assert!(msg.contains("--no-such-flag"), "{msg}");
        // A value flag of one command is unknown to another.
        assert!(Flags::parse(&args(&["--gamma", "0.9"]), &GENERATE_FLAGS).is_err());
    }

    #[test]
    fn flag_parser_rejects_duplicate_flags() {
        let err =
            Flags::parse(&args(&["--gamma", "0.9", "--gamma", "0.8"]), &MINE_FLAGS).unwrap_err();
        let QcmError::InvalidConfig(msg) = err else {
            panic!("expected InvalidConfig");
        };
        assert!(msg.contains("duplicate"), "{msg}");
        assert!(Flags::parse(&args(&["--serial", "--serial"]), &MINE_FLAGS).is_err());
    }

    #[test]
    fn mine_rejects_invalid_session_configs_with_typed_errors() {
        let dir = std::env::temp_dir().join(format!("qcm_cli_badcfg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("tiny.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(5);
        io::write_edge_list_file(&dataset.graph, &graph_path).unwrap();
        let path = graph_path.to_string_lossy().into_owned();

        let err = mine(&args(&[&path, "--gamma", "1.5"])).unwrap_err();
        assert!(matches!(err, QcmError::InvalidConfig(_)));
        let err = mine(&args(&[&path, "--threads", "0"])).unwrap_err();
        assert!(matches!(err, QcmError::InvalidConfig(_)));
        let err = mine(&args(&[&path, "--format", "xml"])).unwrap_err();
        assert!(matches!(err, QcmError::InvalidConfig(_)));
        // Cluster-shape flags are validated even when --serial ignores them.
        let err = mine(&args(&[&path, "--serial", "--threads", "abc"])).unwrap_err();
        assert!(matches!(err, QcmError::InvalidConfig(_)));
        let err = mine(&args(&[&path, "--transport", "bogus"])).unwrap_err();
        let QcmError::InvalidConfig(msg) = err else {
            panic!("expected InvalidConfig for --transport bogus");
        };
        assert!(msg.contains("transport"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_transport_mines_the_same_results_as_the_default() {
        let dir = std::env::temp_dir().join(format!("qcm_cli_strict_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("tiny.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(6);
        io::write_edge_list_file(&dataset.graph, &graph_path).unwrap();
        let gamma = format!("{}", dataset.spec.gamma);
        let min_size = dataset.spec.min_size.to_string();
        let run = |transport: &str, out: &std::path::Path| {
            mine(&args(&[
                &graph_path.to_string_lossy(),
                "--gamma",
                &gamma,
                "--min-size",
                &min_size,
                "--threads",
                "2",
                "--machines",
                "2",
                "--transport",
                transport,
                "--output",
                &out.to_string_lossy(),
            ]))
            .unwrap();
        };
        let default_out = dir.join("inproc.txt");
        let strict_out = dir.join("strict.txt");
        run("inproc", &default_out);
        run("strict", &strict_out);
        let a = std::fs::read_to_string(&default_out).unwrap();
        let b = std::fs::read_to_string(&strict_out).unwrap();
        assert_eq!(a, b, "strict transport changed the mined result sets");
        assert!(!a.trim().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_stats_and_mine() {
        let dir = std::env::temp_dir().join(format!("qcm_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("tiny.txt");
        let results_path = dir.join("results.txt");

        // Write a small graph via the library and exercise stats + mine.
        let dataset = qcm_gen::datasets::tiny_test_dataset(5);
        io::write_edge_list_file(&dataset.graph, &graph_path).unwrap();

        stats(&args(&[&graph_path.to_string_lossy()])).unwrap();

        let gamma = format!("{}", dataset.spec.gamma);
        let min_size = dataset.spec.min_size.to_string();
        let mine_args = args(&[
            &graph_path.to_string_lossy(),
            "--gamma",
            &gamma,
            "--min-size",
            &min_size,
            "--threads",
            "2",
            "--format",
            "json",
            "--output",
            &results_path.to_string_lossy(),
        ]);
        mine(&mine_args).unwrap();
        let written = std::fs::read_to_string(&results_path).unwrap();
        assert!(
            !written.trim().is_empty(),
            "mining the planted graph must find results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_zero_still_succeeds_with_partial_results() {
        let dir = std::env::temp_dir().join(format!("qcm_cli_deadline_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("tiny.txt");
        let dataset = qcm_gen::datasets::tiny_test_dataset(5);
        io::write_edge_list_file(&dataset.graph, &graph_path).unwrap();
        let gamma = format!("{}", dataset.spec.gamma);
        let min_size = dataset.spec.min_size.to_string();
        mine(&args(&[
            &graph_path.to_string_lossy(),
            "--gamma",
            &gamma,
            "--min-size",
            &min_size,
            "--serial",
            "--deadline-ms",
            "0",
            "--format",
            "json",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_report_encodes_outcome_and_results() {
        let dataset = qcm_gen::datasets::tiny_test_dataset(4);
        let graph = Arc::new(dataset.graph.clone());
        let session = Session::builder()
            .gamma(dataset.spec.gamma)
            .min_size(dataset.spec.min_size)
            .build()
            .unwrap();
        let report = session.run(&graph).unwrap();
        let json = report_to_json(&report, dataset.spec.gamma, dataset.spec.min_size);
        assert!(json.contains("\"outcome\":\"complete\""));
        assert!(json.contains("\"complete\":true"));
        assert!(json.contains(&format!("\"num_maximal\":{}", report.maximal.len())));
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let err = generate(&args(&[
            "--dataset",
            "NoSuchGraph",
            "--output",
            "/tmp/never_written.txt",
        ]))
        .unwrap_err();
        assert!(matches!(err, QcmError::InvalidConfig(_)));
        assert!(list_datasets().is_ok());
    }
}
