//! CLI subcommand implementations and a small flag parser.

use qcm_core::{mine_serial, MiningParams, QuasiCliqueSet};
use qcm_engine::EngineConfig;
use qcm_graph::{io, Graph, GraphStats};
use qcm_parallel::ParallelMiner;
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "\
qcm — maximal quasi-clique miner (algorithm-system codesign reproduction)

USAGE:
    qcm mine <edge_list> --gamma <0..1> --min-size <n> [options]
    qcm generate --dataset <name> --output <file> [--seed <n>]
    qcm stats <edge_list>
    qcm datasets
    qcm help

MINE OPTIONS:
    --gamma <f>          minimum degree ratio γ (default 0.9)
    --min-size <n>       minimum quasi-clique size τ_size (default 10)
    --threads <n>        mining threads per machine (default: available cores, max 8)
    --machines <n>       simulated machines (default 1)
    --tau-split <n>      big-task threshold τ_split (default 100)
    --tau-time-ms <n>    decomposition timeout τ_time in milliseconds (default 10)
    --serial             use the single-threaded reference miner
    --output <file>      write the result sets to a file (default: print summary only)";

/// Parsed command-line flags: `--key value` pairs plus bare switches.
struct Flags {
    positional: Vec<String>,
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                // Switches without values.
                if name == "serial" {
                    switches.push(name.to_string());
                    i += 1;
                    continue;
                }
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} expects a value"))?;
                values.insert(name.to_string(), value.clone());
                i += 2;
            } else {
                positional.push(arg.clone());
                i += 1;
            }
        }
        Ok(Flags {
            positional,
            values,
            switches,
        })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// `qcm mine <edge_list> …`
pub fn mine(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| "mine requires an edge-list path".to_string())?;
    let graph = io::read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let gamma: f64 = flags.get("gamma", 0.9)?;
    let min_size: usize = flags.get("min-size", 10)?;
    let params = MiningParams::new(gamma, min_size);
    println!(
        "graph: {} vertices, {} edges; mining γ={gamma}, τ_size={min_size}",
        graph.num_vertices(),
        graph.num_edges()
    );

    let (maximal, elapsed) = if flags.has_switch("serial") {
        let out = mine_serial(&graph, params);
        (out.maximal, out.elapsed)
    } else {
        let threads: usize = flags.get("threads", default_threads())?;
        let machines: usize = flags.get("machines", 1usize)?;
        let tau_split: usize = flags.get("tau-split", 100usize)?;
        let tau_time_ms: u64 = flags.get("tau-time-ms", 10u64)?;
        let config = EngineConfig::cluster(machines, threads)
            .with_decomposition(tau_split, Duration::from_millis(tau_time_ms));
        let out = ParallelMiner::new(params, config).mine(Arc::new(graph));
        (out.maximal, out.metrics.elapsed)
    };

    println!(
        "found {} maximal quasi-cliques in {:.3} s",
        maximal.len(),
        elapsed.as_secs_f64()
    );
    match flags.values.get("output") {
        Some(path) => {
            write_results(&maximal, path)?;
            println!("results written to {path}");
        }
        None => {
            for (i, members) in maximal.iter().take(10).enumerate() {
                let ids: Vec<String> = members.iter().map(|v| v.to_string()).collect();
                println!(
                    "  #{:<3} |S|={:<3} {{{}}}",
                    i + 1,
                    members.len(),
                    ids.join(", ")
                );
            }
            if maximal.len() > 10 {
                println!(
                    "  … ({} more; use --output to save all)",
                    maximal.len() - 10
                );
            }
        }
    }
    Ok(())
}

/// `qcm generate --dataset <name> --output <file>`
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let name = flags
        .values
        .get("dataset")
        .ok_or_else(|| "generate requires --dataset <name>".to_string())?;
    let output = flags
        .values
        .get("output")
        .ok_or_else(|| "generate requires --output <file>".to_string())?;
    let mut spec = qcm_gen::datasets::all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name}; run `qcm datasets` for the list"))?;
    spec.seed = flags.get("seed", spec.seed)?;
    let dataset = spec.generate();
    io::write_edge_list_file(&dataset.graph, output)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "wrote {} ({} vertices, {} edges, {} planted communities) to {output}",
        spec.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.planted.len()
    );
    println!(
        "suggested mining parameters: --gamma {} --min-size {} --tau-split {} --tau-time-ms {}",
        spec.gamma, spec.min_size, spec.tau_split, spec.tau_time_ms
    );
    Ok(())
}

/// `qcm stats <edge_list>`
pub fn stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| "stats requires an edge-list path".to_string())?;
    let graph = io::read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    print_stats(&graph);
    Ok(())
}

/// `qcm datasets`
pub fn list_datasets() -> Result<(), String> {
    println!("available synthetic stand-in datasets (see DESIGN.md for the mapping to Table 1):");
    for spec in qcm_gen::datasets::all_datasets() {
        println!(
            "  {:<12} |V|≈{:<7} γ={:<4} τ_size={:<3} τ_split={:<5} τ_time={}ms",
            spec.name,
            spec.num_vertices,
            spec.gamma,
            spec.min_size,
            spec.tau_split,
            spec.tau_time_ms
        );
    }
    Ok(())
}

fn print_stats(graph: &Graph) {
    let stats = GraphStats::compute(graph);
    println!("vertices            : {}", stats.num_vertices);
    println!("edges               : {}", stats.num_edges);
    println!(
        "min / avg / max deg : {} / {:.2} / {}",
        stats.min_degree, stats.avg_degree, stats.max_degree
    );
    println!("degeneracy          : {}", stats.degeneracy);
    println!(
        "connected components: {} (largest {})",
        stats.num_components, stats.largest_component
    );
}

fn write_results(results: &QuasiCliqueSet, path: &str) -> Result<(), String> {
    let mut file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    for members in results.iter() {
        let ids: Vec<String> = members.iter().map(|v| v.to_string()).collect();
        writeln!(file, "{}", ids.join(" ")).map_err(|e| format!("write error: {e}"))?;
    }
    Ok(())
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parser_handles_values_switches_and_positionals() {
        let args: Vec<String> = [
            "input.txt",
            "--gamma",
            "0.8",
            "--serial",
            "--min-size",
            "12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(flags.positional, vec!["input.txt"]);
        assert_eq!(flags.get::<f64>("gamma", 0.9).unwrap(), 0.8);
        assert_eq!(flags.get::<usize>("min-size", 10).unwrap(), 12);
        assert_eq!(flags.get::<usize>("threads", 3).unwrap(), 3);
        assert!(flags.has_switch("serial"));
        assert!(!flags.has_switch("quick"));
    }

    #[test]
    fn flag_parser_rejects_missing_values_and_bad_numbers() {
        let args: Vec<String> = ["--gamma"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
        let args: Vec<String> = ["--gamma", "abc"].iter().map(|s| s.to_string()).collect();
        let flags = Flags::parse(&args).unwrap();
        assert!(flags.get::<f64>("gamma", 0.9).is_err());
    }

    #[test]
    fn end_to_end_generate_stats_and_mine() {
        let dir = std::env::temp_dir().join(format!("qcm_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("tiny.txt");
        let results_path = dir.join("results.txt");

        // Write a small graph via the library and exercise stats + mine.
        let dataset = qcm_gen::datasets::tiny_test_dataset(5);
        io::write_edge_list_file(&dataset.graph, &graph_path).unwrap();

        let args: Vec<String> = vec![graph_path.to_string_lossy().into_owned()];
        stats(&args).unwrap();

        let args: Vec<String> = vec![
            graph_path.to_string_lossy().into_owned(),
            "--gamma".into(),
            format!("{}", dataset.spec.gamma),
            "--min-size".into(),
            dataset.spec.min_size.to_string(),
            "--threads".into(),
            "2".into(),
            "--output".into(),
            results_path.to_string_lossy().into_owned(),
        ];
        mine(&args).unwrap();
        let written = std::fs::read_to_string(&results_path).unwrap();
        assert!(
            !written.trim().is_empty(),
            "mining the planted graph must find results"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let args: Vec<String> = vec![
            "--dataset".into(),
            "NoSuchGraph".into(),
            "--output".into(),
            "/tmp/never_written.txt".into(),
        ];
        assert!(generate(&args).is_err());
        assert!(list_datasets().is_ok());
    }
}
