//! `qcm` — command-line front end for the quasi-clique miner.
//!
//! ```text
//! qcm mine <edge_list> --gamma 0.9 --min-size 10 [--threads 8] [--machines 1]
//!                      [--tau-split 100] [--tau-time-ms 10] [--deadline-ms 5000]
//!                      [--format json|text] [--serial] [--output results.txt]
//! qcm trace <edge_list> [mine flags] [--out trace.json]   # traced run → Chrome trace JSON
//! qcm serve [--listen addr] [--workers 4] [--format json]  # mining job service (HTTP with --listen)
//! qcm generate --dataset <name> --output graph.txt        # synthetic stand-in datasets
//! qcm stats <edge_list>                                    # graph summary statistics
//! qcm fingerprint <edge_list>                              # stable content hash (cache key)
//! qcm datasets                                             # list available stand-ins
//! ```
//!
//! All subcommands report failures through the workspace-wide typed
//! [`qcm::QcmError`]; exit codes come from the shared service error table
//! (`qcm_core::api::ERROR_CODE_TABLE`): configuration mistakes (unknown
//! flags, out-of-range γ, zero threads) exit with status 2, runtime
//! failures with status 1, retry-later conditions with status 3.

use qcm::prelude::ErrorCode;
use qcm::QcmError;
use std::process::ExitCode;

mod commands;
mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "mine" => commands::mine(rest),
        "trace" => commands::trace(rest),
        "serve" => serve::serve(rest),
        "generate" => commands::generate(rest),
        "stats" => commands::stats(rest),
        "fingerprint" => commands::fingerprint(rest),
        "datasets" => commands::list_datasets(),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(QcmError::InvalidConfig(format!(
            "unknown command {other:?}\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            // Route through the shared code table so the CLI and the HTTP
            // surface can never disagree on what a failure class means.
            let code = match err {
                QcmError::InvalidConfig(_) => ErrorCode::BadRequest,
                _ => ErrorCode::Internal,
            };
            ExitCode::from(code.cli_exit_code())
        }
    }
}
