//! The task model and application interface of the reforged engine.
//!
//! G-thinker programs are written as two user-defined functions: `spawn(v)`
//! creates a task from a vertex of the local vertex table, and
//! `compute(t, frontier)` advances a task by one iteration, optionally pulling
//! more vertices, emitting results and creating new (sub)tasks. The
//! [`GThinkerApp`] trait captures that contract; the quasi-clique application
//! in `qcm-parallel` is its only non-test implementor, mirroring Algorithms
//! 4–10 of the paper.

use crate::vertex_table::AdjList;
use qcm_core::MiningScratch;
use qcm_graph::VertexId;
use std::collections::BTreeMap;
use std::time::Duration;

/// Serialisation hooks used when tasks are spilled to disk (Section 5: task
/// queues spill batches of `C` tasks when full).
pub trait TaskCodec: Sized {
    /// Appends a binary encoding of the task to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a task from the front of `data`, advancing the slice. Returns
    /// `None` on malformed input.
    fn decode(data: &mut &[u8]) -> Option<Self>;
}

/// Adjacency lists delivered to a task for the vertices it pulled in its
/// previous iteration (the `frontier` argument of `compute`).
///
/// Entries are [`AdjList`]s: locally owned vertices borrow the shared graph
/// in place, lists that crossed the transport are owned. `insert` accepts
/// anything convertible (an `AdjList`, an `Arc<Vec<VertexId>>`, a plain
/// `Vec<VertexId>`), so application code and tests build frontiers the same
/// way they always did.
///
/// Iteration is in increasing vertex-id order (a `BTreeMap`, not a
/// `HashMap`): applications fold frontiers into task state, so a
/// seed-and-replay deterministic run — the fault simulator's core promise —
/// needs the iteration order itself to be reproducible.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    lists: BTreeMap<VertexId, AdjList>,
}

impl Frontier {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the adjacency list of `v`.
    pub fn insert(&mut self, v: VertexId, adj: impl Into<AdjList>) {
        self.lists.insert(v, adj.into());
    }

    /// The adjacency list of `v`, if it was pulled.
    pub fn get(&self, v: VertexId) -> Option<&[VertexId]> {
        self.lists.get(&v).map(|a| a.as_slice())
    }

    /// Iterates over `(vertex, adjacency list)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.lists.iter().map(|(&v, a)| (v, a.as_slice()))
    }

    /// Number of pulled vertices.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True if no vertices were pulled.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }
}

/// Per-task timing the application reports back to the engine, used for
/// Table 6 (mining time vs subgraph-materialisation time) and Figures 1–3
/// (per-task time distributions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskTimings {
    /// Time spent on actual mining (backtracking over the set-enumeration
    /// tree).
    pub mining: Duration,
    /// Time spent materialising subgraphs for decomposed subtasks.
    pub materialization: Duration,
}

impl TaskTimings {
    /// Adds another timing record into this one.
    pub fn merge(&mut self, other: &TaskTimings) {
        self.mining += other.mining;
        self.materialization += other.materialization;
    }
}

/// Everything a `compute`/`spawn` call can hand back to the engine.
///
/// Vertex pulls are *not* part of this context: a task's outstanding data
/// requests must live inside the task itself (see
/// [`GThinkerApp::pending_pulls`]) so that a task waiting for data can be
/// queued, spilled to disk and stolen without losing its request set — the
/// same reason the original G-thinker serialises requests with suspended
/// tasks.
#[derive(Debug)]
pub struct ComputeContext<T> {
    /// New tasks created by this call (task decomposition / initial spawn).
    pub new_tasks: Vec<T>,
    /// Result rows (quasi-cliques) found by this call.
    pub results: Vec<Vec<VertexId>>,
    /// Timing attribution for this call.
    pub timings: TaskTimings,
    /// Set by the application when this call observed the run's cancellation
    /// token fired and cut its work short; the engine aggregates it so the
    /// run's outcome reflects what was actually truncated.
    pub interrupted: bool,
    /// The worker's mining scratch arena, loaned to the application for the
    /// duration of this call. The engine moves one long-lived arena from
    /// context to context, so the frames warmed up by one task's recursion
    /// serve every later task on the same worker without reallocating.
    pub scratch: MiningScratch,
}

impl<T> Default for ComputeContext<T> {
    fn default() -> Self {
        ComputeContext {
            new_tasks: Vec::new(),
            results: Vec::new(),
            timings: TaskTimings::default(),
            interrupted: false,
            scratch: MiningScratch::default(),
        }
    }
}

impl<T> ComputeContext<T> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new task to be scheduled by the engine.
    pub fn add_task(&mut self, task: T) {
        self.new_tasks.push(task);
    }

    /// Emits a result row.
    pub fn emit(&mut self, members: Vec<VertexId>) {
        self.results.push(members);
    }
}

/// A G-thinker application: the pair of UDFs plus the big-task classifier used
/// by the reforged scheduler.
pub trait GThinkerApp: Send + Sync + 'static {
    /// The task type. Tasks move between threads and may be spilled to disk.
    type Task: TaskCodec + Send + 'static;

    /// UDF `spawn(v)`: optionally creates the initial task for vertex `v` of
    /// the local vertex table (Algorithm 4). `adj` is Γ(v).
    fn spawn(&self, v: VertexId, adj: &[VertexId], ctx: &mut ComputeContext<Self::Task>);

    /// The adjacency lists `task` is currently waiting for. The engine
    /// resolves these through the local vertex table / remote-vertex cache and
    /// delivers them as the `frontier` of the next `compute` call. Freshly
    /// spawned tasks typically request Γ(v) here (Algorithm 4 lines 6–7).
    /// Borrowed from the task — the request set lives inside the task (so it
    /// survives queueing/spilling/stealing) and the engine reads it in place
    /// instead of cloning a vector per compute iteration.
    fn pending_pulls<'t>(&self, task: &'t Self::Task) -> &'t [VertexId];

    /// UDF `compute(t, frontier)`: advances `task` by one iteration
    /// (Algorithm 5). `frontier` contains the adjacency lists requested by
    /// [`GThinkerApp::pending_pulls`] before this call. Returns `true` if the
    /// task needs another iteration, `false` when finished.
    fn compute(
        &self,
        task: &mut Self::Task,
        frontier: &Frontier,
        ctx: &mut ComputeContext<Self::Task>,
    ) -> bool;

    /// Classifies a task as *big* (goes to the machine-wide global queue and
    /// participates in inter-machine stealing) or small (stays in the
    /// spawning thread's local queue). The quasi-clique app compares
    /// `|ext(S)|` against τ_split.
    fn is_big(&self, task: &Self::Task) -> bool;

    /// Approximate in-memory size of a task in bytes, used for the engine's
    /// peak-memory accounting (Table 2's RAM column). The default assumes a
    /// small constant.
    fn task_memory_bytes(&self, _task: &Self::Task) -> usize {
        64
    }

    /// A label for the task used in the per-task time log (Figures 1–3); the
    /// quasi-clique app reports the spawning vertex and subgraph size.
    fn task_label(&self, _task: &Self::Task) -> TaskLabel {
        TaskLabel::default()
    }
}

/// Descriptive label attached to per-task timing records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskLabel {
    /// The vertex the root task was spawned from (if known).
    pub root: Option<VertexId>,
    /// Number of vertices in the task's subgraph (|V(t.g)| or |ext(S)|).
    pub subgraph_size: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_sync::Arc;

    #[derive(Clone, Debug, PartialEq)]
    struct DummyTask(u32);

    impl TaskCodec for DummyTask {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(data: &mut &[u8]) -> Option<Self> {
            if data.len() < 4 {
                return None;
            }
            let (head, rest) = data.split_at(4);
            *data = rest;
            Some(DummyTask(u32::from_le_bytes(head.try_into().unwrap())))
        }
    }

    #[test]
    fn frontier_stores_and_returns_lists() {
        let mut f = Frontier::new();
        assert!(f.is_empty());
        f.insert(
            VertexId::new(3),
            Arc::new(vec![VertexId::new(1), VertexId::new(2)]),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f.get(VertexId::new(3)).unwrap().len(), 2);
        assert!(f.get(VertexId::new(9)).is_none());
        assert_eq!(f.iter().count(), 1);
    }

    #[test]
    fn compute_context_accumulates_outputs() {
        let mut ctx: ComputeContext<DummyTask> = ComputeContext::new();
        ctx.add_task(DummyTask(1));
        ctx.emit(vec![VertexId::new(1), VertexId::new(2)]);
        assert_eq!(ctx.new_tasks.len(), 1);
        assert_eq!(ctx.results.len(), 1);
    }

    #[test]
    fn task_codec_roundtrip() {
        let mut buf = Vec::new();
        DummyTask(42).encode(&mut buf);
        DummyTask(7).encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(DummyTask::decode(&mut slice), Some(DummyTask(42)));
        assert_eq!(DummyTask::decode(&mut slice), Some(DummyTask(7)));
        assert_eq!(DummyTask::decode(&mut slice), None);
    }

    #[test]
    fn timings_merge_adds_durations() {
        let mut a = TaskTimings {
            mining: Duration::from_millis(5),
            materialization: Duration::from_millis(1),
        };
        let b = TaskTimings {
            mining: Duration::from_millis(3),
            materialization: Duration::from_millis(2),
        };
        a.merge(&b);
        assert_eq!(a.mining, Duration::from_millis(8));
        assert_eq!(a.materialization, Duration::from_millis(3));
    }
}
