//! Per-worker bounded task deques with a work-stealing protocol.
//!
//! Before this module every worker pop went through its machine's single
//! `Mutex<TaskQueue>` — one cache line ping-ponging across every mining
//! thread of the machine. [`WorkerQueues`] gives each worker its own bounded
//! deque behind its own lock:
//!
//! * **local push/pop are LIFO** (`push_back`/`pop_back`) — a worker keeps
//!   working on the subtrees it just decomposed while they are still hot in
//!   cache, and its lock is uncontended in the common case;
//! * **steals are FIFO** (`pop_front`) — a thief takes the victim's *oldest*
//!   tasks, which for the quasi-clique app are the closest to the root and
//!   therefore the largest remaining units of work, in batches of
//!   `steal_batch` to amortise the victim-lock acquisition;
//! * **overflow spills to the machine's global queue** — the deque is
//!   bounded by `local_capacity`; beyond it, tasks take the old path into the
//!   spill-backed global queue, so the paper's bounded-memory spilling
//!   semantics (Figure 8) are preserved, as is the big-task lane: big tasks
//!   never enter a worker deque at all.
//!
//! `steal_batch == 0` disables stealing entirely (workers only ever touch
//! their own deque plus the global queue), which is the within-binary
//! baseline the benchmark suite measures the protocol against.

use qcm_graph::neighborhoods::perf;
use qcm_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use qcm_sync::Mutex;
use std::collections::VecDeque;

/// One deque per worker thread plus the steal protocol over them.
#[derive(Debug)]
pub struct WorkerQueues<T> {
    slots: Vec<Slot<T>>,
    local_capacity: usize,
    steal_batch: usize,
    steals: AtomicU64,
    steal_failures: AtomicU64,
}

#[derive(Debug)]
struct Slot<T> {
    deque: Mutex<VecDeque<T>>,
    /// Length mirror read lock-free by thieves when picking a victim. Only
    /// advisory: the deque's lock is the source of truth.
    len: AtomicUsize,
}

impl<T> WorkerQueues<T> {
    /// Creates `workers` empty deques bounded at `local_capacity` tasks each.
    /// `steal_batch` is the number of tasks a successful steal moves
    /// (`0` disables stealing).
    pub fn new(workers: usize, local_capacity: usize, steal_batch: usize) -> Self {
        WorkerQueues {
            slots: (0..workers)
                .map(|_| Slot {
                    deque: Mutex::new(VecDeque::new()),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            local_capacity: local_capacity.max(1),
            steal_batch,
            steals: AtomicU64::new(0),
            steal_failures: AtomicU64::new(0),
        }
    }

    /// True when the steal protocol is active (`steal_batch > 0`).
    pub fn stealing_enabled(&self) -> bool {
        self.steal_batch > 0
    }

    /// Pushes to the hot (LIFO) end of `worker`'s own deque. Returns the task
    /// back when the deque is at capacity — the caller overflows it into the
    /// machine's spill-backed global queue.
    pub fn push_local(&self, worker: usize, task: T) -> Result<(), T> {
        let slot = &self.slots[worker];
        let mut deque = slot.deque.lock();
        if deque.len() >= self.local_capacity {
            return Err(task);
        }
        deque.push_back(task);
        // ordering: Relaxed — advisory mirror of the deque length for lock-free
        // victim selection; the deque mutex is the source of truth.
        slot.len.store(deque.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Pops from the hot (LIFO) end of `worker`'s own deque.
    pub fn pop_local(&self, worker: usize) -> Option<T> {
        let slot = &self.slots[worker];
        let mut deque = slot.deque.lock();
        let task = deque.pop_back();
        // ordering: Relaxed — advisory mirror of the deque length for lock-free
        // victim selection; the deque mutex is the source of truth.
        slot.len.store(deque.len(), Ordering::Relaxed);
        task
    }

    /// Advisory length of `worker`'s deque (lock-free).
    pub fn approx_len(&self, worker: usize) -> usize {
        // ordering: Relaxed — advisory read; steal_into re-checks under the lock.
        self.slots[worker].len.load(Ordering::Relaxed)
    }

    /// Tasks across all deques (advisory).
    pub fn total_approx_len(&self) -> usize {
        self.slots
            .iter()
            // ordering: Relaxed — advisory sum; idle/steal heuristics only.
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum()
    }

    /// Attempts to steal up to `steal_batch` tasks from the fullest victim in
    /// `victims` (FIFO end — the victim's oldest work). The first stolen task
    /// is returned for immediate processing, the rest land in the thief's own
    /// deque. Returns `None` when every victim was empty (counted as a steal
    /// failure) or when stealing is disabled.
    pub fn steal_into(&self, thief: usize, victims: std::ops::Range<usize>) -> Option<T> {
        if self.steal_batch == 0 {
            return None;
        }
        let mut candidates = false;
        let mut best = thief;
        let mut best_len = 0usize;
        for v in victims {
            if v == thief || v >= self.slots.len() {
                continue;
            }
            candidates = true;
            let len = self.approx_len(v);
            if len > best_len {
                best = v;
                best_len = len;
            }
        }
        if !candidates {
            return None;
        }
        if best_len == 0 {
            // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
            self.steal_failures.fetch_add(1, Ordering::Relaxed);
            perf::count_steal_failures(1);
            return None;
        }
        // Clamp the batch so the remainder never pushes the thief's deque
        // past its bound (the first task is processed immediately and never
        // enqueued, hence the +1). The advisory length is enough: the thief
        // is the only pusher of its own deque.
        let room = self
            .local_capacity
            .saturating_sub(self.approx_len(thief))
            .saturating_add(1);
        let (first, rest) = {
            let slot = &self.slots[best];
            let mut victim = slot.deque.lock();
            let take = self.steal_batch.min(room).min(victim.len());
            let mut batch = victim.drain(..take);
            let first = batch.next();
            let rest: Vec<T> = batch.by_ref().collect();
            drop(batch);
            // ordering: Relaxed — advisory mirror update under the victim's lock.
            slot.len.store(victim.len(), Ordering::Relaxed);
            (first, rest)
        };
        let first = match first {
            Some(t) => t,
            None => {
                // The victim drained between the advisory read and the lock.
                // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
                self.steal_failures.fetch_add(1, Ordering::Relaxed);
                perf::count_steal_failures(1);
                return None;
            }
        };
        let moved = 1 + rest.len() as u64;
        if !rest.is_empty() {
            let slot = &self.slots[thief];
            let mut own = slot.deque.lock();
            own.extend(rest);
            // ordering: Relaxed — advisory mirror update under the thief's lock.
            slot.len.store(own.len(), Ordering::Relaxed);
        }
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.steals.fetch_add(moved, Ordering::Relaxed);
        perf::count_steals(moved);
        Some(first)
    }

    /// Tasks moved by successful steals so far.
    pub fn steals(&self) -> u64 {
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.steals.load(Ordering::Relaxed)
    }

    /// Steal sweeps that found every victim empty.
    pub fn steal_failures(&self) -> u64 {
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.steal_failures.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_push_pop_is_lifo() {
        let q: WorkerQueues<u32> = WorkerQueues::new(2, 8, 2);
        for i in 0..4 {
            q.push_local(0, i).unwrap();
        }
        assert_eq!(q.approx_len(0), 4);
        assert_eq!(q.pop_local(0), Some(3));
        assert_eq!(q.pop_local(0), Some(2));
        assert_eq!(q.total_approx_len(), 2);
    }

    #[test]
    fn push_beyond_capacity_returns_the_task() {
        let q: WorkerQueues<u32> = WorkerQueues::new(1, 2, 1);
        q.push_local(0, 1).unwrap();
        q.push_local(0, 2).unwrap();
        assert_eq!(q.push_local(0, 3), Err(3));
        assert_eq!(q.approx_len(0), 2);
    }

    #[test]
    fn steal_takes_the_oldest_batch_from_the_fullest_victim() {
        let q: WorkerQueues<u32> = WorkerQueues::new(3, 16, 2);
        for i in 0..6 {
            q.push_local(1, i).unwrap();
        }
        q.push_local(2, 100).unwrap();
        let got = q.steal_into(0, 0..3);
        // Victim 1 is fullest; FIFO steal takes 0 and 1; 0 comes back for
        // immediate processing, 1 lands in the thief's deque.
        assert_eq!(got, Some(0));
        assert_eq!(q.pop_local(0), Some(1));
        assert_eq!(q.steals(), 2);
        // The victim's own LIFO end is untouched.
        assert_eq!(q.pop_local(1), Some(5));
    }

    #[test]
    fn steals_never_overflow_the_thief_deque_bound() {
        let q: WorkerQueues<u32> = WorkerQueues::new(3, 2, 8);
        q.push_local(0, 100).unwrap();
        q.push_local(0, 101).unwrap();
        for i in 0..2 {
            q.push_local(1, i).unwrap();
            q.push_local(2, i + 10).unwrap();
        }
        // A full thief still gets one task to process but enqueues none,
        // despite steal_batch = 8.
        assert_eq!(q.steal_into(0, 1..2), Some(0));
        assert_eq!(q.approx_len(0), 2);
        assert_eq!(q.steals(), 1);
        // With one free slot, at most one task is enqueued + one returned.
        q.pop_local(0).unwrap();
        assert_eq!(q.steal_into(0, 2..3), Some(10));
        assert_eq!(q.approx_len(0), 2);
        assert_eq!(q.steals(), 3);
    }

    #[test]
    fn failed_and_disabled_steals_are_distinguished() {
        let q: WorkerQueues<u32> = WorkerQueues::new(2, 8, 2);
        assert_eq!(q.steal_into(0, 0..2), None);
        assert_eq!(q.steal_failures(), 1);
        // Single-worker range: no candidate victims, not a failure.
        assert_eq!(q.steal_into(0, 0..1), None);
        assert_eq!(q.steal_failures(), 1);

        let disabled: WorkerQueues<u32> = WorkerQueues::new(2, 8, 0);
        disabled.push_local(1, 9).unwrap();
        assert!(!disabled.stealing_enabled());
        assert_eq!(disabled.steal_into(0, 0..2), None);
        assert_eq!(disabled.steal_failures(), 0);
    }
}
