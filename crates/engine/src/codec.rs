//! Binary encoding helpers for task spilling, plus the unified wire form of
//! every inter-machine engine message.
//!
//! The spill files and the inter-machine transport messages use a small
//! hand-rolled little-endian format built on these helpers, so the task
//! types in `qcm-parallel` do not need a serde dependency and the on-disk
//! framing stays under the engine's control. [`EngineMsg`] is the single
//! typed envelope carried by every [`crate::transport::Transport`]
//! implementation; the per-call-site byte packing that used to live next to
//! each subsystem is folded into its `encode`/`decode` pair.

use qcm_graph::VertexId;
use qcm_sync::Arc;

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Clamps a slice length to the `u32` framing space.
///
/// The length prefix of the wire format is a `u32`; a longer slice cannot be
/// framed. That would take a >16 GiB task, so it is a logic error — caught by
/// the `debug_assert!` in development — but the release-mode path must not
/// silently truncate the *prefix only* (the pre-hardening behaviour: `len as
/// u32` wrapped, making the frame undecodable). Instead the length saturates
/// and exactly that many elements are encoded, keeping the frame
/// self-consistent.
fn framed_len(len: usize) -> usize {
    debug_assert!(
        len <= u32::MAX as usize,
        "slice of {len} elements exceeds the u32 framing space"
    );
    len.min(u32::MAX as usize)
}

/// Appends a length-prefixed list of `u32`s.
pub fn put_u32_slice(buf: &mut Vec<u8>, values: &[u32]) {
    let len = framed_len(values.len());
    put_u32(buf, len as u32);
    for &v in &values[..len] {
        put_u32(buf, v);
    }
}

/// Appends a length-prefixed list of vertex ids.
pub fn put_vertices(buf: &mut Vec<u8>, values: &[VertexId]) {
    let len = framed_len(values.len());
    put_u32(buf, len as u32);
    for &v in &values[..len] {
        put_u32(buf, v.raw());
    }
}

/// Reads a `u32`, advancing the slice. `None` if the input is exhausted.
pub fn take_u32(data: &mut &[u8]) -> Option<u32> {
    if data.len() < 4 {
        return None;
    }
    let (head, rest) = data.split_at(4);
    *data = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

/// Reads a `u64`, advancing the slice.
pub fn take_u64(data: &mut &[u8]) -> Option<u64> {
    if data.len() < 8 {
        return None;
    }
    let (head, rest) = data.split_at(8);
    *data = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

/// Reads a length-prefixed list of `u32`s, advancing the slice.
pub fn take_u32_vec(data: &mut &[u8]) -> Option<Vec<u32>> {
    let len = take_u32(data)? as usize;
    // Guard against corrupted lengths that would cause huge allocations.
    if data.len() < len * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(take_u32(data)?);
    }
    Some(out)
}

/// Reads a length-prefixed list of vertex ids, advancing the slice.
pub fn take_vertices(data: &mut &[u8]) -> Option<Vec<VertexId>> {
    Some(take_u32_vec(data)?.into_iter().map(VertexId::new).collect())
}

/// Appends a length-prefixed opaque byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    let len = framed_len(bytes.len());
    put_u32(buf, len as u32);
    buf.extend_from_slice(&bytes[..len]);
}

/// Reads a length-prefixed opaque byte string, advancing the slice.
pub fn take_bytes(data: &mut &[u8]) -> Option<Vec<u8>> {
    let len = take_u32(data)? as usize;
    if data.len() < len {
        return None;
    }
    let (head, rest) = data.split_at(len);
    *data = rest;
    Some(head.to_vec())
}

/// Every message exchanged between machines, in one typed enum.
///
/// The in-memory form keeps adjacency lists behind `Arc` so the in-process
/// transport can move a response without copying the lists; the wire form
/// produced by [`EngineMsg::encode`] serialises their contents, so a strict
/// (serialising) transport and the fault simulator carry exactly the bytes a
/// real network would.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineMsg {
    /// Requester → owner: pull the adjacency lists of `vertices` (all owned
    /// by the receiving machine). `token` correlates the response.
    PullRequest {
        /// Correlation token, unique per outstanding pull.
        token: u64,
        /// Vertices whose adjacency lists are requested.
        vertices: Vec<VertexId>,
    },
    /// Owner → requester: the adjacency lists answering a
    /// [`EngineMsg::PullRequest`] with the same `token`.
    PullResponse {
        /// Correlation token echoed from the request.
        token: u64,
        /// `(vertex, adjacency)` pairs, in request order.
        lists: Vec<(VertexId, Arc<Vec<VertexId>>)>,
    },
    /// Balancer → rich machine: donate up to `count` big tasks to the
    /// machine the message's envelope names as sender (Figure 8 step ①).
    StealRequest {
        /// Balancer-assigned sequence number (log correlation).
        seq: u64,
        /// Maximum number of tasks to donate.
        count: u32,
    },
    /// Rich machine → poor machine: the donated tasks, each in its
    /// `TaskCodec` wire form (Figure 8 step ②).
    StealGrant {
        /// Sequence number echoed from the request.
        seq: u64,
        /// Encoded tasks.
        tasks: Vec<Vec<u8>>,
    },
    /// Poor machine → rich machine: the grant arrived; the donor may release
    /// its retransmit buffer (Figure 8 step ③).
    StealAck {
        /// Sequence number echoed from the grant.
        seq: u64,
    },
    /// A machine's global queue spilled a batch to disk — a load signal for
    /// the balancer.
    SpillNotice {
        /// The spilling machine.
        machine: u32,
        /// Its total pending tasks (in memory + spilled) after the spill.
        pending: u64,
    },
    /// A machine refilled a batch from its spill directory.
    RefillNotice {
        /// The refilling machine.
        machine: u32,
        /// How many tasks were restored.
        restored: u32,
    },
    /// Orderly stop: the receiving machine's workers should drain and exit.
    Shutdown,
}

const MSG_PULL_REQUEST: u32 = 1;
const MSG_PULL_RESPONSE: u32 = 2;
const MSG_STEAL_REQUEST: u32 = 3;
const MSG_STEAL_GRANT: u32 = 4;
const MSG_STEAL_ACK: u32 = 5;
const MSG_SPILL_NOTICE: u32 = 6;
const MSG_REFILL_NOTICE: u32 = 7;
const MSG_SHUTDOWN: u32 = 8;

impl EngineMsg {
    /// Short kind name for event logs.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineMsg::PullRequest { .. } => "pull-req",
            EngineMsg::PullResponse { .. } => "pull-resp",
            EngineMsg::StealRequest { .. } => "steal-req",
            EngineMsg::StealGrant { .. } => "steal-grant",
            EngineMsg::StealAck { .. } => "steal-ack",
            EngineMsg::SpillNotice { .. } => "spill-notice",
            EngineMsg::RefillNotice { .. } => "refill-notice",
            EngineMsg::Shutdown => "shutdown",
        }
    }

    /// Appends the wire form (tag + payload) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EngineMsg::PullRequest { token, vertices } => {
                put_u32(buf, MSG_PULL_REQUEST);
                put_u64(buf, *token);
                put_vertices(buf, vertices);
            }
            EngineMsg::PullResponse { token, lists } => {
                put_u32(buf, MSG_PULL_RESPONSE);
                put_u64(buf, *token);
                put_u32(buf, framed_len(lists.len()) as u32);
                for (v, adj) in lists {
                    put_u32(buf, v.raw());
                    put_vertices(buf, adj);
                }
            }
            EngineMsg::StealRequest { seq, count } => {
                put_u32(buf, MSG_STEAL_REQUEST);
                put_u64(buf, *seq);
                put_u32(buf, *count);
            }
            EngineMsg::StealGrant { seq, tasks } => {
                put_u32(buf, MSG_STEAL_GRANT);
                put_u64(buf, *seq);
                put_u32(buf, framed_len(tasks.len()) as u32);
                for task in tasks {
                    put_bytes(buf, task);
                }
            }
            EngineMsg::StealAck { seq } => {
                put_u32(buf, MSG_STEAL_ACK);
                put_u64(buf, *seq);
            }
            EngineMsg::SpillNotice { machine, pending } => {
                put_u32(buf, MSG_SPILL_NOTICE);
                put_u32(buf, *machine);
                put_u64(buf, *pending);
            }
            EngineMsg::RefillNotice { machine, restored } => {
                put_u32(buf, MSG_REFILL_NOTICE);
                put_u32(buf, *machine);
                put_u32(buf, *restored);
            }
            EngineMsg::Shutdown => put_u32(buf, MSG_SHUTDOWN),
        }
    }

    /// The wire form as a fresh buffer.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes one message, advancing the slice. `None` on truncated input or
    /// an unknown tag.
    pub fn decode(data: &mut &[u8]) -> Option<EngineMsg> {
        match take_u32(data)? {
            MSG_PULL_REQUEST => Some(EngineMsg::PullRequest {
                token: take_u64(data)?,
                vertices: take_vertices(data)?,
            }),
            MSG_PULL_RESPONSE => {
                let token = take_u64(data)?;
                let count = take_u32(data)? as usize;
                // The tightest possible frame per entry is 8 bytes (vertex id
                // + empty list), so this rejects corrupted counts early.
                if data.len() < count.saturating_mul(8) {
                    return None;
                }
                let mut lists = Vec::with_capacity(count);
                for _ in 0..count {
                    let v = VertexId::new(take_u32(data)?);
                    lists.push((v, Arc::new(take_vertices(data)?)));
                }
                Some(EngineMsg::PullResponse { token, lists })
            }
            MSG_STEAL_REQUEST => Some(EngineMsg::StealRequest {
                seq: take_u64(data)?,
                count: take_u32(data)?,
            }),
            MSG_STEAL_GRANT => {
                let seq = take_u64(data)?;
                let count = take_u32(data)? as usize;
                if data.len() < count.saturating_mul(4) {
                    return None;
                }
                let mut tasks = Vec::with_capacity(count);
                for _ in 0..count {
                    tasks.push(take_bytes(data)?);
                }
                Some(EngineMsg::StealGrant { seq, tasks })
            }
            MSG_STEAL_ACK => Some(EngineMsg::StealAck {
                seq: take_u64(data)?,
            }),
            MSG_SPILL_NOTICE => Some(EngineMsg::SpillNotice {
                machine: take_u32(data)?,
                pending: take_u64(data)?,
            }),
            MSG_REFILL_NOTICE => Some(EngineMsg::RefillNotice {
                machine: take_u32(data)?,
                restored: take_u32(data)?,
            }),
            MSG_SHUTDOWN => Some(EngineMsg::Shutdown),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32(&mut slice), Some(0xDEAD_BEEF));
        assert_eq!(take_u64(&mut slice), Some(u64::MAX - 1));
        assert!(slice.is_empty());
        assert_eq!(take_u32(&mut slice), None);
        assert_eq!(take_u64(&mut slice), None);
    }

    #[test]
    fn list_roundtrip() {
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_vertices(&mut buf, &[VertexId::new(9), VertexId::new(10)]);
        put_u32_slice(&mut buf, &[]);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice), Some(vec![1, 2, 3]));
        assert_eq!(
            take_vertices(&mut slice),
            Some(vec![VertexId::new(9), VertexId::new(10)])
        );
        assert_eq!(take_u32_vec(&mut slice), Some(vec![]));
        assert!(slice.is_empty());
    }

    #[test]
    fn large_slices_roundtrip_beyond_u16_lengths() {
        // Lengths above u16::MAX would break any accidental 16-bit framing
        // and exercise the checked-cast path with a realistic big task.
        let values: Vec<u32> = (0..70_000u32).collect();
        let vertices: Vec<VertexId> = (0..70_000u32).map(VertexId::new).collect();
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        put_vertices(&mut buf, &vertices);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice).as_deref(), Some(values.as_slice()));
        assert_eq!(
            take_vertices(&mut slice).as_deref(),
            Some(vertices.as_slice())
        );
        assert!(slice.is_empty());
    }

    #[test]
    fn corrupted_length_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000); // claims 1000 entries but provides none
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice), None);
    }

    fn roundtrip(msg: &EngineMsg) -> EngineMsg {
        let wire = msg.to_wire();
        let mut slice = wire.as_slice();
        let decoded = EngineMsg::decode(&mut slice).expect("decodable");
        assert!(slice.is_empty(), "{} leaves trailing bytes", msg.kind());
        decoded
    }

    #[test]
    fn every_engine_msg_variant_roundtrips() {
        let msgs = [
            EngineMsg::PullRequest {
                token: 7,
                vertices: vec![VertexId::new(1), VertexId::new(5)],
            },
            EngineMsg::PullResponse {
                token: 7,
                lists: vec![
                    (VertexId::new(1), Arc::new(vec![VertexId::new(2)])),
                    (VertexId::new(5), Arc::new(vec![])),
                ],
            },
            EngineMsg::StealRequest { seq: 3, count: 16 },
            EngineMsg::StealGrant {
                seq: 3,
                tasks: vec![vec![1, 2, 3], vec![], vec![255]],
            },
            EngineMsg::StealAck { seq: 3 },
            EngineMsg::SpillNotice {
                machine: 2,
                pending: 4096,
            },
            EngineMsg::RefillNotice {
                machine: 2,
                restored: 64,
            },
            EngineMsg::Shutdown,
        ];
        for msg in &msgs {
            assert_eq!(&roundtrip(msg), msg);
        }
    }

    #[test]
    fn truncated_or_unknown_engine_msgs_are_rejected() {
        let msg = EngineMsg::PullResponse {
            token: 1,
            lists: vec![(VertexId::new(9), Arc::new(vec![VertexId::new(10)]))],
        };
        let wire = msg.to_wire();
        for cut in 1..wire.len() {
            let mut slice = &wire[..cut];
            assert_eq!(EngineMsg::decode(&mut slice), None, "cut at {cut}");
        }
        let mut unknown = Vec::new();
        put_u32(&mut unknown, 999);
        let mut slice = unknown.as_slice();
        assert_eq!(EngineMsg::decode(&mut slice), None);
    }
}
