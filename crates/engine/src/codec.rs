//! Binary encoding helpers for task spilling.
//!
//! The spill files and the (simulated) inter-machine steal messages use a
//! small hand-rolled little-endian format built on these helpers, so the task
//! types in `qcm-parallel` do not need a serde dependency and the on-disk
//! framing stays under the engine's control.

use qcm_graph::VertexId;

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Clamps a slice length to the `u32` framing space.
///
/// The length prefix of the wire format is a `u32`; a longer slice cannot be
/// framed. That would take a >16 GiB task, so it is a logic error — caught by
/// the `debug_assert!` in development — but the release-mode path must not
/// silently truncate the *prefix only* (the pre-hardening behaviour: `len as
/// u32` wrapped, making the frame undecodable). Instead the length saturates
/// and exactly that many elements are encoded, keeping the frame
/// self-consistent.
fn framed_len(len: usize) -> usize {
    debug_assert!(
        len <= u32::MAX as usize,
        "slice of {len} elements exceeds the u32 framing space"
    );
    len.min(u32::MAX as usize)
}

/// Appends a length-prefixed list of `u32`s.
pub fn put_u32_slice(buf: &mut Vec<u8>, values: &[u32]) {
    let len = framed_len(values.len());
    put_u32(buf, len as u32);
    for &v in &values[..len] {
        put_u32(buf, v);
    }
}

/// Appends a length-prefixed list of vertex ids.
pub fn put_vertices(buf: &mut Vec<u8>, values: &[VertexId]) {
    let len = framed_len(values.len());
    put_u32(buf, len as u32);
    for &v in &values[..len] {
        put_u32(buf, v.raw());
    }
}

/// Reads a `u32`, advancing the slice. `None` if the input is exhausted.
pub fn take_u32(data: &mut &[u8]) -> Option<u32> {
    if data.len() < 4 {
        return None;
    }
    let (head, rest) = data.split_at(4);
    *data = rest;
    Some(u32::from_le_bytes(head.try_into().ok()?))
}

/// Reads a `u64`, advancing the slice.
pub fn take_u64(data: &mut &[u8]) -> Option<u64> {
    if data.len() < 8 {
        return None;
    }
    let (head, rest) = data.split_at(8);
    *data = rest;
    Some(u64::from_le_bytes(head.try_into().ok()?))
}

/// Reads a length-prefixed list of `u32`s, advancing the slice.
pub fn take_u32_vec(data: &mut &[u8]) -> Option<Vec<u32>> {
    let len = take_u32(data)? as usize;
    // Guard against corrupted lengths that would cause huge allocations.
    if data.len() < len * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(take_u32(data)?);
    }
    Some(out)
}

/// Reads a length-prefixed list of vertex ids, advancing the slice.
pub fn take_vertices(data: &mut &[u8]) -> Option<Vec<VertexId>> {
    Some(take_u32_vec(data)?.into_iter().map(VertexId::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32(&mut slice), Some(0xDEAD_BEEF));
        assert_eq!(take_u64(&mut slice), Some(u64::MAX - 1));
        assert!(slice.is_empty());
        assert_eq!(take_u32(&mut slice), None);
        assert_eq!(take_u64(&mut slice), None);
    }

    #[test]
    fn list_roundtrip() {
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &[1, 2, 3]);
        put_vertices(&mut buf, &[VertexId::new(9), VertexId::new(10)]);
        put_u32_slice(&mut buf, &[]);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice), Some(vec![1, 2, 3]));
        assert_eq!(
            take_vertices(&mut slice),
            Some(vec![VertexId::new(9), VertexId::new(10)])
        );
        assert_eq!(take_u32_vec(&mut slice), Some(vec![]));
        assert!(slice.is_empty());
    }

    #[test]
    fn large_slices_roundtrip_beyond_u16_lengths() {
        // Lengths above u16::MAX would break any accidental 16-bit framing
        // and exercise the checked-cast path with a realistic big task.
        let values: Vec<u32> = (0..70_000u32).collect();
        let vertices: Vec<VertexId> = (0..70_000u32).map(VertexId::new).collect();
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        put_vertices(&mut buf, &vertices);
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice).as_deref(), Some(values.as_slice()));
        assert_eq!(
            take_vertices(&mut slice).as_deref(),
            Some(vertices.as_slice())
        );
        assert!(slice.is_empty());
    }

    #[test]
    fn corrupted_length_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000); // claims 1000 entries but provides none
        let mut slice = buf.as_slice();
        assert_eq!(take_u32_vec(&mut slice), None);
    }
}
