//! Disk spilling of task batches.
//!
//! When a task queue is full but a new task must be inserted, G-thinker spills
//! a batch of `C` tasks from the tail of the queue to local disk; when a queue
//! runs low it refills from the spilled files first, to keep the volume of
//! partially processed tasks on disk small (Section 5). [`SpillStore`] is that
//! file list (`L_small` per thread, `L_big` per machine). For unit tests the
//! store can also run in a memory-backed mode with identical accounting.

use crate::task::TaskCodec;
use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::Arc;
use std::collections::VecDeque;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

/// Shared counters describing spill activity (the "Disk" column of Table 2).
#[derive(Debug, Default)]
pub struct SpillMetrics {
    /// Total bytes ever written to spill storage.
    pub bytes_written: AtomicU64,
    /// Total bytes read back.
    pub bytes_read: AtomicU64,
    /// Number of spill batches written.
    pub batches_written: AtomicU64,
    /// Largest number of bytes simultaneously resident in spill storage.
    pub peak_bytes: AtomicU64,
}

impl SpillMetrics {
    fn record_write(&self, bytes: u64, resident: u64) {
        // ordering: Relaxed — spill throughput/peak statistics; the final read
        // happens after workers join.
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.batches_written.fetch_add(1, Ordering::Relaxed);
        self.peak_bytes.fetch_max(resident, Ordering::Relaxed);
    }

    fn record_read(&self, bytes: u64) {
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// One spilled batch: either a file on disk or an in-memory buffer.
#[derive(Debug)]
enum Batch {
    File {
        path: PathBuf,
        bytes: u64,
        count: usize,
    },
    Memory {
        data: Vec<u8>,
        count: usize,
    },
}

/// A FIFO list of spilled task batches.
#[derive(Debug)]
pub struct SpillStore {
    /// Spill directory; `None` keeps batches in memory.
    dir: Option<PathBuf>,
    /// Unique name prefix for files from this store.
    prefix: String,
    /// Pending batches, oldest first.
    batches: VecDeque<Batch>,
    /// Sequence number for file names.
    next_seq: u64,
    /// Bytes currently resident (on disk or in memory).
    resident_bytes: u64,
    /// Shared metrics sink.
    metrics: Arc<SpillMetrics>,
}

impl SpillStore {
    /// Creates a store that writes files into `dir` (created if missing), or
    /// keeps batches in memory when `dir` is `None`.
    pub fn new(
        dir: Option<PathBuf>,
        prefix: impl Into<String>,
        metrics: Arc<SpillMetrics>,
    ) -> Self {
        if let Some(d) = &dir {
            let _ = fs::create_dir_all(d);
        }
        SpillStore {
            dir,
            prefix: prefix.into(),
            batches: VecDeque::new(),
            next_seq: 0,
            resident_bytes: 0,
            metrics,
        }
    }

    /// Number of pending batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True if no batches are pending.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Number of tasks across all pending batches.
    pub fn pending_tasks(&self) -> usize {
        self.batches
            .iter()
            .map(|b| match b {
                Batch::File { count, .. } | Batch::Memory { count, .. } => *count,
            })
            .sum()
    }

    /// Spills a batch of tasks (encoded back-to-back). The batch is appended
    /// to the tail of the file list.
    pub fn spill<T: TaskCodec>(&mut self, tasks: &[T]) {
        if tasks.is_empty() {
            return;
        }
        let mut data = Vec::new();
        for t in tasks {
            t.encode(&mut data);
        }
        let bytes = data.len() as u64;
        self.resident_bytes += bytes;
        let batch = match &self.dir {
            Some(dir) => {
                let path = dir.join(format!("{}-{:08}.spill", self.prefix, self.next_seq));
                self.next_seq += 1;
                match fs::File::create(&path).and_then(|mut f| f.write_all(&data)) {
                    Ok(()) => Batch::File {
                        path,
                        bytes,
                        count: tasks.len(),
                    },
                    Err(_) => Batch::Memory {
                        data,
                        count: tasks.len(),
                    },
                }
            }
            None => Batch::Memory {
                data,
                count: tasks.len(),
            },
        };
        self.metrics.record_write(bytes, self.resident_bytes);
        self.batches.push_back(batch);
    }

    /// Loads the oldest batch back into memory, removing it from the store.
    /// Returns `None` when the store is empty.
    pub fn refill<T: TaskCodec>(&mut self) -> Option<Vec<T>> {
        let batch = self.batches.pop_front()?;
        let (data, bytes) = match batch {
            Batch::File { path, bytes, .. } => {
                let mut buf = Vec::new();
                if let Ok(mut f) = fs::File::open(&path) {
                    let _ = f.read_to_end(&mut buf);
                }
                let _ = fs::remove_file(&path);
                (buf, bytes)
            }
            Batch::Memory { data, .. } => {
                let bytes = data.len() as u64;
                (data, bytes)
            }
        };
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
        self.metrics.record_read(bytes);
        let mut slice = data.as_slice();
        let mut tasks = Vec::new();
        while !slice.is_empty() {
            match T::decode(&mut slice) {
                Some(t) => tasks.push(t),
                None => break,
            }
        }
        Some(tasks)
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort cleanup of leftover spill files.
        for batch in &self.batches {
            if let Batch::File { path, .. } = batch {
                let _ = fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct T(u32, Vec<u32>);

    impl TaskCodec for T {
        fn encode(&self, buf: &mut Vec<u8>) {
            crate::codec::put_u32(buf, self.0);
            crate::codec::put_u32_slice(buf, &self.1);
        }
        fn decode(data: &mut &[u8]) -> Option<Self> {
            let id = crate::codec::take_u32(data)?;
            let list = crate::codec::take_u32_vec(data)?;
            Some(T(id, list))
        }
    }

    fn sample_tasks(n: u32) -> Vec<T> {
        (0..n).map(|i| T(i, vec![i, i + 1, i + 2])).collect()
    }

    #[test]
    fn memory_backed_roundtrip() {
        let metrics = Arc::new(SpillMetrics::default());
        let mut store = SpillStore::new(None, "test", metrics.clone());
        assert!(store.is_empty());
        store.spill(&sample_tasks(5));
        store.spill(&sample_tasks(3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.pending_tasks(), 8);
        let first: Vec<T> = store.refill().unwrap();
        assert_eq!(first, sample_tasks(5));
        let second: Vec<T> = store.refill().unwrap();
        assert_eq!(second, sample_tasks(3));
        assert!(store.refill::<T>().is_none());
        assert!(metrics.bytes_written.load(Ordering::Relaxed) > 0);
        assert_eq!(
            metrics.bytes_written.load(Ordering::Relaxed),
            metrics.bytes_read.load(Ordering::Relaxed)
        );
        assert_eq!(metrics.batches_written.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disk_backed_roundtrip_and_cleanup() {
        let dir = std::env::temp_dir().join(format!("qcm_spill_test_{}", std::process::id()));
        let metrics = Arc::new(SpillMetrics::default());
        {
            let mut store = SpillStore::new(Some(dir.clone()), "w0", metrics.clone());
            store.spill(&sample_tasks(10));
            assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
            let tasks: Vec<T> = store.refill().unwrap();
            assert_eq!(tasks.len(), 10);
            // File deleted after refill.
            assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
            // Leave one batch unspilled to exercise Drop cleanup.
            store.spill(&sample_tasks(2));
            assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        }
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_spill_is_a_noop() {
        let metrics = Arc::new(SpillMetrics::default());
        let mut store = SpillStore::new(None, "noop", metrics.clone());
        store.spill::<T>(&[]);
        assert!(store.is_empty());
        assert_eq!(metrics.batches_written.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn peak_bytes_tracks_high_watermark() {
        let metrics = Arc::new(SpillMetrics::default());
        let mut store = SpillStore::new(None, "peak", metrics.clone());
        store.spill(&sample_tasks(50));
        let peak_after_first = metrics.peak_bytes.load(Ordering::Relaxed);
        store.spill(&sample_tasks(50));
        let peak_after_second = metrics.peak_bytes.load(Ordering::Relaxed);
        assert!(peak_after_second > peak_after_first);
        let _: Vec<T> = store.refill().unwrap();
        let _: Vec<T> = store.refill().unwrap();
        // Peak is a high watermark: unchanged by refills.
        assert_eq!(
            metrics.peak_bytes.load(Ordering::Relaxed),
            peak_after_second
        );
    }
}
