//! Pluggable message passing between machines.
//!
//! Every cross-machine interaction of the engine — vertex-table pulls and
//! responses, Figure-8 steal requests/grants, spill/refill notices, shutdown —
//! travels as an [`EngineMsg`] through a [`Transport`]. Same-machine worker
//! deques stay shared-memory; only the machine-to-machine edges go through
//! the trait, which is exactly the boundary a real cluster deployment would
//! replace with sockets.
//!
//! Two implementations ship with the engine:
//!
//! * [`InProcTransport`] — machines are thread groups in one address space.
//!   The default configuration preserves the historical zero-copy fast path
//!   (owners' adjacency slices are read directly through the shared
//!   [`PartitionedVertexTable`]); *strict* mode disables that and forces every
//!   pull through a full [`EngineMsg`] wire-form round trip, so the codec path
//!   is exercised under the live multi-threaded engine.
//! * [`crate::sim::SimTransport`] — a deterministic discrete-event simulator
//!   with per-link latency, message drop, node crash + restart and a seeded
//!   event log (see [`crate::sim`]).
//!
//! The vendored `crossbeam` stand-in provides only `thread::scope`, not
//! channels, so the in-process mailboxes are plain `Mutex<VecDeque<_>>`
//! queues — the engine's workers poll them from their scheduling loop, which
//! is the same discipline they already use for the task queues.

use crate::codec::EngineMsg;
use crate::vertex_table::PartitionedVertexTable;
use qcm_graph::VertexId;
use qcm_sync::atomic::{AtomicU32, AtomicU64, Ordering};
use qcm_sync::{Arc, Mutex, OnceLock};
use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

/// Index of a machine (a vertex-table partition owner).
pub type MachineId = usize;

/// The in-memory payload of a successful pull: `(vertex, adjacency)` pairs.
pub type PullReply = Vec<(VertexId, Arc<Vec<VertexId>>)>;

/// Why a transport operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// No response arrived within the caller's timeout (the request or the
    /// response was lost, or the peer is down/slow).
    Timeout,
    /// The destination machine is not part of this transport.
    Closed,
    /// The operation is not supported by this implementation (e.g. blocking
    /// pulls on the discrete-event simulator, which is single-threaded and
    /// uses split-phase pulls instead).
    Unsupported,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "request timed out"),
            TransportError::Closed => write!(f, "destination machine is not reachable"),
            TransportError::Unsupported => write!(f, "operation unsupported by this transport"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A received message together with its sender.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// The sending machine.
    pub from: MachineId,
    /// The message.
    pub msg: EngineMsg,
}

/// Counters every transport keeps; folded into `EngineMetrics` after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages accepted by [`Transport::send`] (including pull round trips).
    pub messages_sent: u64,
    /// Messages dropped in flight (fault injection / simulated loss).
    pub messages_dropped: u64,
    /// Completed request/response pull round trips.
    pub pull_round_trips: u64,
    /// Serialized bytes moved through the wire form (0 on the zero-copy
    /// fast path, which never serialises).
    pub wire_bytes: u64,
}

/// Message passing between the engine's machines.
///
/// Implementations must be cheap to share (`Arc<dyn Transport>`) and safe to
/// call from every worker thread concurrently.
pub trait Transport: Send + Sync {
    /// Number of machines connected by this transport.
    fn machines(&self) -> usize;

    /// Called once per run with the partitioned vertex table, before any
    /// worker starts. Transports that answer pulls themselves (the in-process
    /// data service) keep a handle; others ignore it.
    fn bind(&self, _table: &PartitionedVertexTable) {}

    /// Sends `msg` from `from` to `to`'s mailbox. One-way messages never
    /// block; delivery is asynchronous.
    fn send(&self, from: MachineId, to: MachineId, msg: EngineMsg) -> Result<(), TransportError>;

    /// Pops the next message addressed to `machine`, if any.
    fn try_recv(&self, machine: MachineId) -> Option<Envelope>;

    /// Synchronous pull of adjacency lists from their owner: sends a
    /// [`EngineMsg::PullRequest`] and waits up to `timeout` for the matching
    /// [`EngineMsg::PullResponse`]. Retry policy lives in the caller (the
    /// data service), so one call is exactly one attempt.
    fn pull(
        &self,
        from: MachineId,
        owner: MachineId,
        vertices: &[VertexId],
        timeout: Duration,
    ) -> Result<PullReply, TransportError>;

    /// True when requesters may read owners' partitions directly through the
    /// shared vertex table — the zero-copy fast path of the in-process
    /// transport. Strict and simulated transports return false.
    fn shared_memory(&self) -> bool {
        false
    }

    /// Simulated per-fetch latency applied on the shared-memory fast path
    /// (the `fetch_latency` knob of the pre-transport engine).
    fn fetch_latency(&self) -> Duration {
        Duration::ZERO
    }

    /// Counters accumulated so far.
    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

/// Builds the transport for a run; the engine-config-level selector.
///
/// `EngineConfig` carries a factory rather than a live `Arc<dyn Transport>`
/// so configs stay `Clone + Debug` and each `run` gets a fresh transport
/// (mailboxes and counters zeroed).
#[derive(Clone, Debug, PartialEq)]
pub enum TransportFactory {
    /// The in-process transport (machines are thread groups).
    InProc {
        /// Sleep injected per remote fetch on the zero-copy fast path.
        fetch_latency: Duration,
        /// Disable the fast path: every pull round-trips through the
        /// [`EngineMsg`] wire form.
        strict: bool,
        /// Fault injection: drop this many pull attempts before delivering
        /// any (each dropped attempt times out and is retried by the data
        /// service).
        drop_first_pulls: u32,
    },
}

impl Default for TransportFactory {
    fn default() -> Self {
        TransportFactory::InProc {
            fetch_latency: Duration::ZERO,
            strict: false,
            drop_first_pulls: 0,
        }
    }
}

impl TransportFactory {
    /// The default zero-copy in-process transport.
    pub fn in_proc() -> Self {
        TransportFactory::default()
    }

    /// The serialising in-process transport (no shared-memory fast path).
    pub fn strict() -> Self {
        TransportFactory::InProc {
            fetch_latency: Duration::ZERO,
            strict: true,
            drop_first_pulls: 0,
        }
    }

    /// Sets the simulated per-fetch latency.
    pub fn with_fetch_latency(self, latency: Duration) -> Self {
        match self {
            TransportFactory::InProc {
                strict,
                drop_first_pulls,
                ..
            } => TransportFactory::InProc {
                fetch_latency: latency,
                strict,
                drop_first_pulls,
            },
        }
    }

    /// Arms pull-drop fault injection (testing).
    pub fn with_pull_drops(self, drops: u32) -> Self {
        match self {
            TransportFactory::InProc {
                fetch_latency,
                strict,
                ..
            } => TransportFactory::InProc {
                fetch_latency,
                strict,
                drop_first_pulls: drops,
            },
        }
    }

    /// Builds a fresh transport connecting `machines` machines.
    pub fn build(&self, machines: usize) -> Arc<dyn Transport> {
        match *self {
            TransportFactory::InProc {
                fetch_latency,
                strict,
                drop_first_pulls,
            } => Arc::new(InProcTransport::new(
                machines,
                strict,
                fetch_latency,
                drop_first_pulls,
            )),
        }
    }
}

/// In-process transport: per-machine mailboxes in one address space.
///
/// In the default (non-strict) configuration [`Transport::shared_memory`]
/// returns true and the data service reads owners' partitions directly — the
/// historical zero-copy behaviour. Strict mode answers pulls by round-tripping
/// request and response through their wire forms, so the full protocol runs
/// under the live engine. Pulls are answered synchronously by the transport
/// itself (the per-machine *data-serving* role G-thinker assigns to dedicated
/// comm threads), which keeps mining workers free of mutual pull blocking.
pub struct InProcTransport {
    machines: usize,
    strict: bool,
    fetch_latency: Duration,
    inboxes: Vec<Mutex<VecDeque<Envelope>>>,
    table: OnceLock<PartitionedVertexTable>,
    next_token: AtomicU64,
    drop_pulls: AtomicU32,
    messages_sent: AtomicU64,
    messages_dropped: AtomicU64,
    pull_round_trips: AtomicU64,
    wire_bytes: AtomicU64,
}

impl InProcTransport {
    /// Creates the transport; `drop_first_pulls` pull attempts are lost
    /// before any succeed (fault injection).
    pub fn new(
        machines: usize,
        strict: bool,
        fetch_latency: Duration,
        drop_first_pulls: u32,
    ) -> Self {
        InProcTransport {
            machines: machines.max(1),
            strict,
            fetch_latency,
            inboxes: (0..machines.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            table: OnceLock::new(),
            next_token: AtomicU64::new(1),
            drop_pulls: AtomicU32::new(drop_first_pulls),
            messages_sent: AtomicU64::new(0),
            messages_dropped: AtomicU64::new(0),
            pull_round_trips: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
        }
    }

    /// Serves a pull against the bound table, as the owner would.
    fn serve(&self, vertices: &[VertexId]) -> Result<PullReply, TransportError> {
        let table = self.table.get().ok_or(TransportError::Closed)?;
        Ok(vertices
            .iter()
            .map(|&v| (v, Arc::new(table.adjacency(v).to_vec())))
            .collect())
    }

    /// Consumes one armed pull drop, if any remain.
    fn take_drop(&self) -> bool {
        self.drop_pulls
            // ordering: Relaxed — the fault budget only needs atomic decrement;
            // it guards no other memory.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }
}

impl Transport for InProcTransport {
    fn machines(&self) -> usize {
        self.machines
    }

    fn bind(&self, table: &PartitionedVertexTable) {
        let _ = self.table.set(table.clone());
    }

    fn send(&self, from: MachineId, to: MachineId, msg: EngineMsg) -> Result<(), TransportError> {
        if to >= self.machines {
            return Err(TransportError::Closed);
        }
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.inboxes[to].lock().push_back(Envelope { from, msg });
        Ok(())
    }

    fn try_recv(&self, machine: MachineId) -> Option<Envelope> {
        self.inboxes.get(machine)?.lock().pop_front()
    }

    fn pull(
        &self,
        from: MachineId,
        owner: MachineId,
        vertices: &[VertexId],
        _timeout: Duration,
    ) -> Result<PullReply, TransportError> {
        if owner >= self.machines {
            return Err(TransportError::Closed);
        }
        if self.take_drop() {
            // The armed loss swallows this attempt; the caller observes it as
            // a timeout (without sleeping the wall-clock out in tests).
            // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
            self.messages_dropped.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::Timeout);
        }
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.messages_sent.fetch_add(2, Ordering::Relaxed); // request + response
        if !self.fetch_latency.is_zero() {
            qcm_sync::thread::sleep(self.fetch_latency);
        }
        let reply = if self.strict {
            // Full wire-form round trip: exactly the bytes a socket would
            // carry, including the re-materialised adjacency lists.
            // ordering: Relaxed — unique pull tokens only need RMW atomicity.
            let token = self.next_token.fetch_add(1, Ordering::Relaxed);
            let request = EngineMsg::PullRequest {
                token,
                vertices: vertices.to_vec(),
            }
            .to_wire();
            let decoded_req =
                EngineMsg::decode(&mut request.as_slice()).ok_or(TransportError::Closed)?;
            let EngineMsg::PullRequest { token, vertices } = decoded_req else {
                return Err(TransportError::Closed);
            };
            let response = EngineMsg::PullResponse {
                token,
                lists: self.serve(&vertices)?,
            }
            .to_wire();
            self.wire_bytes
                // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
                .fetch_add((request.len() + response.len()) as u64, Ordering::Relaxed);
            let EngineMsg::PullResponse { lists, .. } =
                EngineMsg::decode(&mut response.as_slice()).ok_or(TransportError::Closed)?
            else {
                return Err(TransportError::Closed);
            };
            lists
        } else {
            self.serve(vertices)?
        };
        let _ = from;
        // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
        self.pull_round_trips.fetch_add(1, Ordering::Relaxed);
        Ok(reply)
    }

    fn shared_memory(&self) -> bool {
        !self.strict
    }

    fn fetch_latency(&self) -> Duration {
        self.fetch_latency
    }

    fn stats(&self) -> TransportStats {
        TransportStats {
            // ordering: Relaxed — monitoring snapshot; counters may be mutually
            // skewed by in-flight sends, which callers tolerate.
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            pull_round_trips: self.pull_round_trips.load(Ordering::Relaxed),
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Which transport a parallel run uses — the user-facing selector surfaced
/// through `Backend::Parallel` and `Session::builder().transport(...)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum TransportKind {
    /// In-process mailboxes with the zero-copy fast path (the default, and
    /// the pre-transport behaviour).
    #[default]
    InProc,
    /// In-process mailboxes, but every pull round-trips through the wire
    /// form — for exercising the full protocol under the live engine.
    InProcStrict,
    /// The deterministic discrete-event fault simulator; the run executes in
    /// virtual time under the scenario in [`crate::sim::SimConfig`].
    Sim(crate::sim::SimConfig),
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::Graph;

    fn table(machines: usize) -> PartitionedVertexTable {
        let g = Arc::new(
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap(),
        );
        PartitionedVertexTable::new(g, machines)
    }

    #[test]
    fn send_and_try_recv_are_fifo_per_machine() {
        let t = InProcTransport::new(2, false, Duration::ZERO, 0);
        t.send(0, 1, EngineMsg::StealAck { seq: 1 }).unwrap();
        t.send(0, 1, EngineMsg::StealAck { seq: 2 }).unwrap();
        assert_eq!(t.try_recv(0), None);
        let first = t.try_recv(1).unwrap();
        assert_eq!(first.from, 0);
        assert_eq!(first.msg, EngineMsg::StealAck { seq: 1 });
        assert_eq!(t.try_recv(1).unwrap().msg, EngineMsg::StealAck { seq: 2 });
        assert_eq!(t.try_recv(1), None);
        assert!(matches!(
            t.send(0, 7, EngineMsg::Shutdown),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn strict_pull_round_trips_the_wire_form() {
        let t = InProcTransport::new(2, true, Duration::ZERO, 0);
        assert!(!t.shared_memory());
        let tbl = table(2);
        t.bind(&tbl);
        let v = VertexId::new(1);
        let reply = t.pull(1, 0, &[v], Duration::from_millis(10)).unwrap();
        assert_eq!(reply.len(), 1);
        assert_eq!(reply[0].0, v);
        assert_eq!(reply[0].1.as_slice(), tbl.adjacency(v));
        let stats = t.stats();
        assert_eq!(stats.pull_round_trips, 1);
        assert!(stats.wire_bytes > 0, "strict mode must serialise");
    }

    #[test]
    fn fast_path_pull_serves_without_serialising() {
        let t = InProcTransport::new(2, false, Duration::ZERO, 0);
        assert!(t.shared_memory());
        let tbl = table(2);
        t.bind(&tbl);
        let reply = t
            .pull(1, 0, &[VertexId::new(0)], Duration::from_millis(10))
            .unwrap();
        assert_eq!(reply[0].1.as_slice(), tbl.adjacency(VertexId::new(0)));
        assert_eq!(t.stats().wire_bytes, 0);
    }

    #[test]
    fn armed_drops_surface_as_timeouts_then_clear() {
        let t = InProcTransport::new(2, true, Duration::ZERO, 2);
        let tbl = table(2);
        t.bind(&tbl);
        let v = [VertexId::new(2)];
        let timeout = Duration::from_millis(5);
        assert_eq!(t.pull(1, 0, &v, timeout), Err(TransportError::Timeout));
        assert_eq!(t.pull(1, 0, &v, timeout), Err(TransportError::Timeout));
        assert!(t.pull(1, 0, &v, timeout).is_ok(), "drops must clear");
        assert_eq!(t.stats().messages_dropped, 2);
    }

    #[test]
    fn factory_builds_the_configured_flavour() {
        let fast = TransportFactory::in_proc().build(3);
        assert_eq!(fast.machines(), 3);
        assert!(fast.shared_memory());
        let strict = TransportFactory::strict()
            .with_fetch_latency(Duration::from_micros(1))
            .build(2);
        assert!(!strict.shared_memory());
        assert_eq!(strict.fetch_latency(), Duration::from_micros(1));
    }
}
