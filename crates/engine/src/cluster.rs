//! The simulated cluster: machines, mining threads, the reforged scheduler
//! and big-task stealing.
//!
//! This is the system half of the paper's codesign (Section 5). A
//! [`Cluster`] runs a [`GThinkerApp`] over a shared input graph on
//! `num_machines × threads_per_machine` mining threads. Each *machine* is a
//! thread group owning
//!
//! * a hash partition of the vertex table and a remote-vertex cache,
//! * a **global task queue** for big tasks (the reforge addition) with its own
//!   spill file list `L_big`,
//! * a spawn cursor over its owned vertices,
//!
//! while each *mining thread* owns a local queue (+ `L_small`) for small
//! tasks. The worker loop follows the reforged Algorithm 3: big tasks are
//! popped with priority, queues refill from spill files before spawning new
//! roots, and spawning stops as soon as it produces a big task. A master
//! load-balancer thread periodically evens out pending big tasks across
//! machines (task stealing).

use crate::codec::EngineMsg;
use crate::config::EngineConfig;
use crate::metrics::{EngineMetrics, TaskTimeRecord};
use crate::queue::TaskQueue;
use crate::spill::{SpillMetrics, SpillStore};
use crate::steal::WorkerQueues;
use crate::task::{ComputeContext, Frontier, GThinkerApp, TaskCodec, TaskTimings};
use crate::transport::Transport;
use crate::vertex_table::{DataService, FetchMetrics, PartitionedVertexTable};

use qcm_core::{MiningScratch, RunOutcome};
use qcm_graph::{Graph, VertexId};
use qcm_obs::clock::Instant;
use qcm_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use qcm_sync::Arc;
use qcm_sync::Mutex;
use std::collections::VecDeque;
use std::time::Duration;

/// The output of an engine run: raw result rows (the application's emitted
/// quasi-cliques, before maximality post-processing) and the run metrics.
#[derive(Clone, Debug, Default)]
pub struct EngineOutput {
    /// Emitted result rows (members sorted by the caller if needed).
    pub results: Vec<Vec<VertexId>>,
    /// Metrics of the run.
    pub metrics: EngineMetrics,
    /// The neighborhood index the run's vertex table served edge queries
    /// through — handed back so post-processing (maximality, result
    /// validation) reuses it instead of rebuilding.
    pub index: Option<Arc<qcm_graph::NeighborhoodIndex>>,
}

/// Per-machine shared state.
struct MachineState<T> {
    global_queue: Mutex<TaskQueue<T>>,
    spawn_cursor: Mutex<VecDeque<VertexId>>,
    data: DataService,
}

/// Cluster-wide shared state used by the worker and balancer threads.
struct SharedState<'a, A: GThinkerApp> {
    app: &'a A,
    config: &'a EngineConfig,
    table: PartitionedVertexTable,
    machines: Vec<MachineState<A::Task>>,
    /// Per-worker bounded deques + the intra-machine steal protocol. Small
    /// tasks live here; the machines' global queues keep the big-task lane
    /// and the spill/overflow path.
    worker_queues: WorkerQueues<A::Task>,
    /// The inter-machine message-passing layer. All cross-machine
    /// interactions (pulls, steal requests/grants, spill/refill notices,
    /// shutdown) travel through it; same-machine paths stay shared-memory.
    transport: Arc<dyn Transport>,
    /// Monotonic sequence numbers for steal requests, so grants and acks can
    /// be correlated in event logs.
    steal_seq: AtomicU64,
    /// True once a fault (pull retry budget exhausted, undecodable stolen
    /// task) dropped part of the workload; labels the run
    /// [`RunOutcome::Faulted`] unless cancellation explains the loss.
    faulted: AtomicBool,
    /// Tasks spawned or decomposed but not yet fully processed (plus a
    /// transient +1 held while a spawn call is in flight, which closes the
    /// race between the spawn-cursor decrement and the task registration).
    pending_tasks: AtomicUsize,
    /// Vertices not yet consumed by any spawn cursor.
    unspawned: AtomicUsize,
    done: AtomicBool,
    /// True once any task's compute call observed the cancellation token
    /// fired and truncated its own backtracking. Combined with the
    /// work-remaining check after shutdown to label the run outcome, so a
    /// run that drained everything is never mislabelled as partial when the
    /// deadline passes during metric assembly, and vice versa.
    interrupted: AtomicBool,
    results: Mutex<Vec<Vec<VertexId>>>,
    task_times: Mutex<Vec<TaskTimeRecord>>,
    tasks_spawned: AtomicU64,
    tasks_processed: AtomicU64,
    tasks_decomposed: AtomicU64,
    active_task_bytes: AtomicU64,
    peak_task_bytes: AtomicU64,
    mining_nanos: AtomicU64,
    materialization_nanos: AtomicU64,
    stolen_tasks: AtomicU64,
    pop_contention: AtomicU64,
}

impl<'a, A: GThinkerApp> SharedState<'a, A> {
    fn add_active_bytes(&self, bytes: u64) {
        // ordering: Relaxed — live-bytes gauge and its peak are advisory
        // accounting; no synchronisation piggybacks on them.
        let now = self.active_task_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_task_bytes.fetch_max(now, Ordering::Relaxed);
    }

    fn sub_active_bytes(&self, bytes: u64) {
        // ordering: Relaxed — see add_active_bytes.
        self.active_task_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A simulated G-thinker cluster executing one application.
pub struct Cluster<A: GThinkerApp> {
    app: Arc<A>,
    config: EngineConfig,
}

impl<A: GThinkerApp> Cluster<A> {
    /// Creates a cluster for `app` with the given configuration.
    pub fn new(app: Arc<A>, config: EngineConfig) -> Self {
        config.validate();
        Cluster { app, config }
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the application over `graph` until every spawned task (and every
    /// task transitively created by decomposition) has completed.
    pub fn run(&self, graph: Arc<Graph>) -> EngineOutput {
        let start = Instant::now();
        let config = &self.config;
        // Reuse the caller's per-graph index when one was threaded through
        // (session/service layers build it once per graph); otherwise build
        // per the configured policy.
        let index = match &config.shared_index {
            Some(shared) if Arc::ptr_eq(shared.graph(), &graph) => shared.clone(),
            _ => Arc::new(qcm_graph::NeighborhoodIndex::build(graph, config.index)),
        };
        let table = PartitionedVertexTable::with_index(index.clone(), config.num_machines);
        let spill_metrics = Arc::new(SpillMetrics::default());
        let fetch_metrics = Arc::new(FetchMetrics::default());
        let transport = config.transport.build(config.num_machines);
        transport.bind(&table);

        let machines: Vec<MachineState<A::Task>> = (0..config.num_machines)
            .map(|m| {
                let owned: VecDeque<VertexId> = table.owned_vertices(m).into();
                MachineState {
                    global_queue: Mutex::new(TaskQueue::new(
                        config.global_queue_capacity,
                        config.batch_size,
                        SpillStore::new(
                            config.spill_dir.clone(),
                            format!("m{m}-global"),
                            spill_metrics.clone(),
                        ),
                    )),
                    spawn_cursor: Mutex::new(owned),
                    data: DataService::new(
                        table.clone(),
                        m,
                        config.vertex_cache_capacity,
                        fetch_metrics.clone(),
                        transport.clone(),
                        config.pull_timeout,
                        config.pull_retries,
                    ),
                }
            })
            .collect();

        let unspawned_total: usize = table.graph().num_vertices();
        let shared = SharedState {
            app: self.app.as_ref(),
            config,
            table,
            machines,
            worker_queues: WorkerQueues::new(
                config.total_threads(),
                config.local_capacity,
                config.steal_batch,
            ),
            transport: transport.clone(),
            steal_seq: AtomicU64::new(0),
            faulted: AtomicBool::new(false),
            pending_tasks: AtomicUsize::new(0),
            unspawned: AtomicUsize::new(unspawned_total),
            done: AtomicBool::new(false),
            interrupted: AtomicBool::new(false),
            results: Mutex::new(Vec::new()),
            task_times: Mutex::new(Vec::new()),
            tasks_spawned: AtomicU64::new(0),
            tasks_processed: AtomicU64::new(0),
            tasks_decomposed: AtomicU64::new(0),
            active_task_bytes: AtomicU64::new(0),
            peak_task_bytes: AtomicU64::new(0),
            mining_nanos: AtomicU64::new(0),
            materialization_nanos: AtomicU64::new(0),
            stolen_tasks: AtomicU64::new(0),
            pop_contention: AtomicU64::new(0),
        };

        let total_workers = config.total_threads();
        let worker_busy: Mutex<Vec<Duration>> = Mutex::new(vec![Duration::ZERO; total_workers]);

        crossbeam::thread::scope(|scope| {
            // Master load balancer (big-task stealing between machines).
            if config.num_machines > 1 {
                scope.spawn(|_| balancer_loop(&shared));
            }
            for worker in 0..total_workers {
                let machine_id = worker / config.threads_per_machine;
                let shared_ref = &shared;
                let busy_ref = &worker_busy;
                scope.spawn(move |_| {
                    let busy = worker_loop(shared_ref, machine_id, worker);
                    busy_ref.lock()[worker] = busy;
                });
            }
        })
        .expect("engine worker thread panicked");

        let results = shared.results.into_inner();
        let transport_stats = transport.stats();
        let metrics = EngineMetrics {
            elapsed: start.elapsed(),
            // ordering: Relaxed — read after the worker scope joined; the join
            // edge already orders every worker's counter writes before these loads.
            tasks_spawned: shared.tasks_spawned.load(Ordering::Relaxed),
            tasks_processed: shared.tasks_processed.load(Ordering::Relaxed),
            tasks_decomposed: shared.tasks_decomposed.load(Ordering::Relaxed),
            results_emitted: results.len() as u64,
            peak_task_bytes: shared.peak_task_bytes.load(Ordering::Relaxed),
            spill_bytes_written: spill_metrics.bytes_written.load(Ordering::Relaxed),
            spill_bytes_read: spill_metrics.bytes_read.load(Ordering::Relaxed),
            spill_peak_bytes: spill_metrics.peak_bytes.load(Ordering::Relaxed),
            local_reads: fetch_metrics.local_reads.load(Ordering::Relaxed),
            remote_fetches: fetch_metrics.remote_fetches.load(Ordering::Relaxed),
            remote_bytes: fetch_metrics.remote_bytes.load(Ordering::Relaxed),
            cache_hits: fetch_metrics.cache_hits.load(Ordering::Relaxed),
            cache_evictions: fetch_metrics.cache_evictions.load(Ordering::Relaxed),
            pull_retries: fetch_metrics.pull_retries.load(Ordering::Relaxed),
            pull_failures: fetch_metrics.pull_failures.load(Ordering::Relaxed),
            transport_messages: transport_stats.messages_sent,
            transport_dropped: transport_stats.messages_dropped,
            virtual_time: None,
            stolen_tasks: shared.stolen_tasks.load(Ordering::Relaxed),
            steals: shared.worker_queues.steals(),
            steal_failures: shared.worker_queues.steal_failures(),
            pop_contention: shared.pop_contention.load(Ordering::Relaxed),
            total_mining_time: Duration::from_nanos(shared.mining_nanos.load(Ordering::Relaxed)),
            total_materialization_time: Duration::from_nanos(
                shared.materialization_nanos.load(Ordering::Relaxed),
            ),
            task_times: shared.task_times.into_inner(),
            worker_busy: worker_busy.into_inner(),
            // Interrupted iff work was actually dropped: a task truncated its
            // own backtracking, a queued/in-flight task was abandoned, a
            // vertex was never spawned, or a fault lost part of the workload.
            // A cancellation that fires after the pool drained leaves the run
            // Complete; dropped work with no cancellation to blame is a fault.
            // ordering: Acquire — redundant after the join edge, kept to mirror
            // the in-run readers of these control flags.
            outcome: if shared.interrupted.load(Ordering::Acquire)
                || shared.pending_tasks.load(Ordering::Acquire) > 0
                || shared.unspawned.load(Ordering::Acquire) > 0
                || shared.faulted.load(Ordering::Acquire)
            {
                match config.cancel.run_outcome() {
                    RunOutcome::Complete => RunOutcome::Faulted,
                    cancelled => cancelled,
                }
            } else {
                RunOutcome::Complete
            },
        };
        EngineOutput {
            results,
            metrics,
            index: Some(index),
        }
    }
}

/// Main loop of one mining thread (the reforged Algorithm 3, on the
/// work-stealing pop path).
fn worker_loop<A: GThinkerApp>(
    shared: &SharedState<'_, A>,
    machine_id: usize,
    worker_id: usize,
) -> Duration {
    let config = shared.config;
    // Tag this thread's trace lane with its (simulated) machine, so the
    // Chrome export renders one swimlane group per machine.
    qcm_obs::set_lane(machine_id as u32);
    // The worker's mining scratch arena, loaned to every task it processes —
    // the recursion frames warmed up by one task serve all later tasks on
    // this worker without reallocating.
    let mut scratch = MiningScratch::default();
    let mut busy = Duration::ZERO;
    loop {
        // ordering: Acquire — pairs with the Release stores of `done`, so a
        // worker that observes the flag also observes the finisher's writes.
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        // Cooperative cancellation (deadline or explicit): stop popping and
        // tell every other worker to drain out. Results emitted so far are
        // kept; whether the run counts as interrupted is decided after all
        // workers exit, from the work that actually remained.
        if config.cancel.is_cancelled() {
            // ordering: Release — publishes everything this thread wrote before
            // finishing; pairs with the Acquire polls of `done`.
            shared.done.store(true, Ordering::Release);
            broadcast_shutdown(shared, machine_id);
            break;
        }
        // Drain this machine's transport mailbox first: steal grants refill
        // the global queue and must land before the idle check below, or an
        // in-flight batch could starve behind sleeping workers.
        pump_inbox(shared, machine_id);
        if let Some(task) = pop_task(shared, machine_id, worker_id) {
            let t0 = Instant::now();
            process_task(shared, machine_id, worker_id, &mut scratch, task);
            busy += t0.elapsed();
            continue;
        }
        let t0 = Instant::now();
        if spawn_batch(shared, machine_id, worker_id) {
            busy += t0.elapsed();
            continue;
        }
        // Nothing to pop, nothing to spawn: either the job is finished or
        // other workers still hold pending tasks. Tasks serialised inside an
        // in-flight steal grant still count as pending, so a machine never
        // declares completion while a batch is on the wire.
        // ordering: Acquire — pairs with the AcqRel RMWs on both counters.
        // `pending_tasks` is incremented before `unspawned` is decremented on
        // the spawn path, so both reading zero proves no task exists, is in
        // flight, or is still unspawned.
        if shared.pending_tasks.load(Ordering::Acquire) == 0
            && shared.unspawned.load(Ordering::Acquire) == 0
        {
            // ordering: Release — publishes everything this thread wrote before
            // finishing; pairs with the Acquire polls of `done`.
            shared.done.store(true, Ordering::Release);
            broadcast_shutdown(shared, machine_id);
            break;
        }
        qcm_sync::thread::sleep(Duration::from_micros(200));
    }
    busy
}

/// Tells every other machine the run is over (`done` is also a shared flag,
/// but the explicit [`EngineMsg::Shutdown`] keeps the protocol complete for
/// transports whose machines do not share memory).
fn broadcast_shutdown<A: GThinkerApp>(shared: &SharedState<'_, A>, machine_id: usize) {
    for peer in 0..shared.config.num_machines {
        if peer != machine_id {
            let _ = shared.transport.send(machine_id, peer, EngineMsg::Shutdown);
        }
    }
}

/// Drains and handles every message currently queued for `machine_id`.
///
/// Any worker of the machine may pump; the mailbox is machine-addressed, not
/// worker-addressed. Pull requests are answered defensively (the in-process
/// transport serves pulls synchronously itself, so none should appear here,
/// but a split-phase transport stays live), steal requests are granted from
/// the machine's big-task lane, grants are decoded into it.
fn pump_inbox<A: GThinkerApp>(shared: &SharedState<'_, A>, machine_id: usize) {
    while let Some(env) = shared.transport.try_recv(machine_id) {
        match env.msg {
            EngineMsg::PullRequest { token, vertices } => {
                let lists = vertices
                    .iter()
                    .map(|&v| (v, Arc::new(shared.table.adjacency(v).to_vec())))
                    .collect();
                let _ = shared.transport.send(
                    machine_id,
                    env.from,
                    EngineMsg::PullResponse { token, lists },
                );
            }
            // Stray pull response (its requester already timed out): ignore.
            EngineMsg::PullResponse { .. } => {}
            EngineMsg::StealRequest { seq, count } => {
                let batch = shared.machines[machine_id]
                    .global_queue
                    .lock()
                    .take_batch(count as usize);
                if batch.is_empty() {
                    continue;
                }
                let tasks: Vec<Vec<u8>> = batch
                    .iter()
                    .map(|t| {
                        let mut buf = Vec::new();
                        t.encode(&mut buf);
                        buf
                    })
                    .collect();
                if shared
                    .transport
                    .send(machine_id, env.from, EngineMsg::StealGrant { seq, tasks })
                    .is_err()
                {
                    // Unreachable peer: keep the batch local rather than lose it.
                    let mut gq = shared.machines[machine_id].global_queue.lock();
                    for t in batch {
                        gq.push(t);
                    }
                }
            }
            EngineMsg::StealGrant { seq, tasks } => {
                let mut decoded = Vec::with_capacity(tasks.len());
                let mut lost = 0usize;
                for buf in &tasks {
                    let mut slice = buf.as_slice();
                    match <A::Task as TaskCodec>::decode(&mut slice) {
                        Some(t) => decoded.push(t),
                        None => lost += 1,
                    }
                }
                if lost > 0 {
                    // An undecodable task can never run: release its pending
                    // slot so the pool still drains, and label the run.
                    // ordering: Release — the fault flag must be visible before the
                    // pending slot it excuses is released.
                    shared.faulted.store(true, Ordering::Release);
                    // ordering: AcqRel — counter protocol: a decrement publishes the work
                    // accounted to the slot and joins prior decrements, so a zero read
                    // proves global completion.
                    shared.pending_tasks.fetch_sub(lost, Ordering::AcqRel);
                }
                let n = decoded.len() as u64;
                if n > 0 {
                    let mut gq = shared.machines[machine_id].global_queue.lock();
                    for t in decoded {
                        gq.push(t);
                    }
                    // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
                    shared.stolen_tasks.fetch_add(n, Ordering::Relaxed);
                }
                let _ = shared
                    .transport
                    .send(machine_id, env.from, EngineMsg::StealAck { seq });
            }
            // The in-process transport is lossless once a grant is enqueued,
            // so the ack closes the loop without retransmit state.
            EngineMsg::StealAck { .. } => {}
            // Load hints from other machines' spill paths; the balancer reads
            // authoritative queue depths directly, so these are informational.
            EngineMsg::SpillNotice { .. } | EngineMsg::RefillNotice { .. } => {}
            EngineMsg::Shutdown => {
                // ordering: Release — publishes everything this thread wrote before
                // finishing; pairs with the Acquire polls of `done`.
                shared.done.store(true, Ordering::Release);
            }
        }
    }
}

/// Pops the next task for `worker_id`:
///
/// 1. the worker's own deque (LIFO — hottest subtree first, own lock,
///    contention-free in the common case);
/// 2. the machine's global queue (big tasks with priority, plus overflow),
///    refilled from its spill files when it runs below one batch — a
///    try-lock, so a worker never stalls behind a sibling's pop (the miss is
///    counted as `pop_contention`);
/// 3. a FIFO steal from the fullest sibling deque on the same machine
///    (Figure 8's stealing, brought inside the machine).
fn pop_task<A: GThinkerApp>(
    shared: &SharedState<'_, A>,
    machine_id: usize,
    worker_id: usize,
) -> Option<A::Task> {
    if let Some(task) = shared.worker_queues.pop_local(worker_id) {
        return Some(task);
    }
    match shared.machines[machine_id].global_queue.try_lock() {
        Some(mut gq) => {
            if gq.needs_refill() {
                // Spill span (refill direction): recorded only when tasks
                // actually came back from the spill store.
                let mut refill_span = qcm_obs::span(qcm_obs::SpanKind::Spill);
                let restored = gq.refill_from_spill();
                if restored > 0 {
                    refill_span.set_arg(restored as u64);
                } else {
                    refill_span.cancel();
                }
                if restored > 0 {
                    // Lock order is global-queue → inbox here and inbox →
                    // global-queue in the pump, but the pump releases the
                    // inbox lock before touching the queue, so no cycle.
                    notify_master(
                        shared,
                        machine_id,
                        EngineMsg::RefillNotice {
                            machine: machine_id as u32,
                            restored: restored as u32,
                        },
                    );
                }
            }
            if let Some(task) = gq.pop() {
                return Some(task);
            }
        }
        None => {
            // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
            shared.pop_contention.fetch_add(1, Ordering::Relaxed);
        }
    }
    let tpm = shared.config.threads_per_machine;
    let siblings = machine_id * tpm..(machine_id + 1) * tpm;
    // Steal span: recorded only when the sweep actually moved a task.
    let mut steal_span = qcm_obs::span(qcm_obs::SpanKind::Steal);
    let stolen = shared.worker_queues.steal_into(worker_id, siblings);
    if stolen.is_none() {
        steal_span.cancel();
    }
    stolen
}

/// Routes a freshly created task: big tasks go to the machine's global queue
/// (the big-task lane the balancer steals from), small tasks go to the
/// worker's own deque, overflowing into the global queue — and from there to
/// disk — when the deque is at capacity (the paper's bounded-memory spilling
/// semantics).
fn route_task<A: GThinkerApp>(
    shared: &SharedState<'_, A>,
    machine_id: usize,
    worker_id: usize,
    task: A::Task,
) -> bool {
    let big = shared.app.is_big(&task);
    // Spill span: measures the push-with-possible-spill; cancelled (nothing
    // recorded) when the push stayed in memory.
    let mut spill_span = qcm_obs::span(qcm_obs::SpanKind::Spill);
    let (spilled, pending) = if big {
        let mut gq = shared.machines[machine_id].global_queue.lock();
        (gq.push(task), gq.total_pending())
    } else if let Err(task) = shared.worker_queues.push_local(worker_id, task) {
        let mut gq = shared.machines[machine_id].global_queue.lock();
        (gq.push(task), gq.total_pending())
    } else {
        (0, 0)
    };
    if spilled > 0 {
        spill_span.set_arg(spilled as u64);
    } else {
        spill_span.cancel();
    }
    if spilled > 0 {
        // Tell the master this machine is under memory pressure; the
        // balancer reads authoritative depths itself, so the notice is a
        // protocol-level load hint (and shows up in simulator event logs).
        notify_master(
            shared,
            machine_id,
            EngineMsg::SpillNotice {
                machine: machine_id as u32,
                pending: pending as u64,
            },
        );
    }
    big
}

/// Sends a notice to machine 0, where the master balancer conceptually
/// lives. Self-notices (machine 0's own spills) are observed locally and not
/// sent.
fn notify_master<A: GThinkerApp>(shared: &SharedState<'_, A>, machine_id: usize, msg: EngineMsg) {
    if shared.config.num_machines > 1 && machine_id != 0 {
        let _ = shared.transport.send(machine_id, 0, msg);
    }
}

/// Spawns up to one batch of root tasks from the machine's spawn cursor,
/// stopping early as soon as a spawned task is big (the paper's rule to avoid
/// flooding the global queue from a single refill). Returns true if at least
/// one vertex was consumed.
fn spawn_batch<A: GThinkerApp>(
    shared: &SharedState<'_, A>,
    machine_id: usize,
    worker_id: usize,
) -> bool {
    let mut consumed_any = false;
    for _ in 0..shared.config.batch_size {
        // Hold a transient pending slot across the spawn so that the
        // (unspawned, pending) pair can never both read zero mid-spawn.
        // ordering: AcqRel — counter protocol (see worker_loop's zero check):
        // the increment lands before the task becomes poppable.
        shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
        let vertex = {
            let mut cursor = shared.machines[machine_id].spawn_cursor.lock();
            cursor.pop_front()
        };
        let Some(v) = vertex else {
            // ordering: AcqRel — counter protocol: releases this task's pending
            // slot after its effects are written.
            shared.pending_tasks.fetch_sub(1, Ordering::AcqRel);
            break;
        };
        // ordering: AcqRel — decremented only after the vertex's pending slot
        // (or its skip) is settled, keeping pending+unspawned > 0 while work
        // remains.
        shared.unspawned.fetch_sub(1, Ordering::AcqRel);
        consumed_any = true;

        let adj = shared.table.adjacency(v).to_vec();
        let mut ctx = ComputeContext::new();
        shared.app.spawn(v, &adj, &mut ctx);
        if !ctx.results.is_empty() {
            let mut results = shared.results.lock();
            results.extend(ctx.results);
        }
        let mut spawned_big = false;
        for task in ctx.new_tasks {
            // ordering: AcqRel — counter protocol (see worker_loop's zero check):
            // the increment lands before the task becomes poppable.
            shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
            // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
            shared.tasks_spawned.fetch_add(1, Ordering::Relaxed);
            spawned_big |= route_task(shared, machine_id, worker_id, task);
        }
        // ordering: AcqRel — counter protocol: releases this task's pending
        // slot after its effects are written.
        shared.pending_tasks.fetch_sub(1, Ordering::AcqRel);
        if spawned_big {
            break;
        }
    }
    consumed_any
}

/// Processes one task to completion: repeatedly resolves its pending pulls
/// into a frontier and calls `compute` until the application reports the task
/// finished, routing any decomposed subtasks and results along the way.
fn process_task<A: GThinkerApp>(
    shared: &SharedState<'_, A>,
    machine_id: usize,
    worker_id: usize,
    scratch: &mut MiningScratch,
    mut task: A::Task,
) {
    let start = Instant::now();
    let mut task_span = qcm_obs::span(qcm_obs::SpanKind::Task);
    let mut mem = shared.app.task_memory_bytes(&task) as u64;
    shared.add_active_bytes(mem);
    let mut timings = TaskTimings::default();
    let mut fetch_scratch = crate::vertex_table::FetchScratch::default();
    loop {
        let mut frontier = Frontier::new();
        {
            let pending = shared.app.pending_pulls(&task);
            // Pull span: one fetch round; payload is the number of vertices
            // resolved. Skipped entirely when the task needs nothing, and
            // closed before compute runs so it measures only the fetches.
            let _pull_span = (!pending.is_empty())
                .then(|| qcm_obs::span_with(qcm_obs::SpanKind::Pull, pending.len() as u64));
            for &v in pending {
                match shared.machines[machine_id]
                    .data
                    .fetch_with(v, &mut fetch_scratch)
                {
                    Ok(adj) => frontier.insert(v, adj),
                    Err(_) => {
                        // The pull exhausted its retry budget: abandon the task
                        // and label the run as partial. Results already emitted
                        // by this task's earlier iterations are kept.
                        // ordering: Release — the fault flag must be visible before the
                        // pending slot it excuses is released.
                        shared.faulted.store(true, Ordering::Release);
                        shared.machines[machine_id].data.flush(&mut fetch_scratch);
                        shared.sub_active_bytes(mem);
                        // ordering: AcqRel — counter protocol: releases this task's pending
                        // slot after its effects are written.
                        shared.pending_tasks.fetch_sub(1, Ordering::AcqRel);
                        return;
                    }
                }
            }
        }
        let mut ctx = ComputeContext::new();
        // Loan the worker's arena to the application for this call.
        ctx.scratch = std::mem::take(scratch);
        let more = shared.app.compute(&mut task, &frontier, &mut ctx);
        *scratch = std::mem::take(&mut ctx.scratch);
        timings.merge(&ctx.timings);
        if ctx.interrupted {
            // The application observed the token and truncated this task.
            // ordering: Release — the truncated task's partial results are
            // published before the interruption becomes visible to the outcome
            // check.
            shared.interrupted.store(true, Ordering::Release);
        }
        if !ctx.results.is_empty() {
            shared.results.lock().extend(ctx.results);
        }
        for subtask in ctx.new_tasks {
            // ordering: AcqRel — counter protocol (see worker_loop's zero check):
            // the increment lands before the task becomes poppable.
            shared.pending_tasks.fetch_add(1, Ordering::AcqRel);
            // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
            shared.tasks_decomposed.fetch_add(1, Ordering::Relaxed);
            route_task(shared, machine_id, worker_id, subtask);
        }
        // The task's subgraph may have grown (iterations 1–2 materialise it).
        let new_mem = shared.app.task_memory_bytes(&task) as u64;
        if new_mem > mem {
            shared.add_active_bytes(new_mem - mem);
        } else {
            shared.sub_active_bytes(mem - new_mem);
        }
        mem = new_mem;
        if !more {
            break;
        }
    }
    let label = shared.app.task_label(&task);
    task_span.set_arg(label.root.map_or(0, |v| u64::from(v.raw())));
    shared.machines[machine_id].data.flush(&mut fetch_scratch);
    shared.sub_active_bytes(mem);
    // ordering: Relaxed — statistics counter; no other memory depends on it and readers tolerate skew.
    shared.tasks_processed.fetch_add(1, Ordering::Relaxed);
    shared
        .mining_nanos
        // ordering: Relaxed — timing statistics, read after join.
        .fetch_add(timings.mining.as_nanos() as u64, Ordering::Relaxed);
    shared
        .materialization_nanos
        // ordering: Relaxed — timing statistics, read after join.
        .fetch_add(timings.materialization.as_nanos() as u64, Ordering::Relaxed);
    shared.task_times.lock().push(TaskTimeRecord {
        root: label.root,
        subgraph_size: label.subgraph_size,
        elapsed: start.elapsed(),
        timings,
    });
    // ordering: AcqRel — counter protocol: releases this task's pending
    // slot after its effects are written.
    shared.pending_tasks.fetch_sub(1, Ordering::AcqRel);
}

/// Master load-balancing loop: every `balance_period`, even out pending big
/// tasks across machines by asking the richest machine to grant a batch to
/// the poorest (Section 5's stealing plan). The move itself is
/// message-passing: the master sends an [`EngineMsg::StealRequest`] on the
/// poor machine's behalf, the rich machine's workers answer with an
/// [`EngineMsg::StealGrant`] carrying the serialised batch, and the poor
/// machine decodes it into its big-task lane and acks. Queue depths are read
/// through the shared locks — a control-plane read the master performs
/// directly, the way G-thinker's master aggregates load reports.
fn balancer_loop<A: GThinkerApp>(shared: &SharedState<'_, A>) {
    let config = shared.config;
    // ordering: Acquire — same pairing as the worker-loop `done` poll.
    while !shared.done.load(Ordering::Acquire) {
        qcm_sync::thread::sleep(config.balance_period);
        let counts: Vec<usize> = shared
            .machines
            .iter()
            .map(|m| m.global_queue.lock().total_pending())
            .collect();
        let total: usize = counts.iter().sum();
        if total == 0 {
            continue;
        }
        let avg = total / counts.len();
        let Some((rich, &rich_count)) = counts.iter().enumerate().max_by_key(|(_, &c)| c) else {
            continue;
        };
        let Some((poor, &poor_count)) = counts.iter().enumerate().min_by_key(|(_, &c)| c) else {
            continue;
        };
        if rich == poor || rich_count <= poor_count + 1 || rich_count <= avg {
            continue;
        }
        let to_move = config.batch_size.min((rich_count - poor_count) / 2).max(1);
        // ordering: Relaxed — unique sequence numbers only need RMW atomicity.
        let seq = shared.steal_seq.fetch_add(1, Ordering::Relaxed);
        let _ = shared.transport.send(
            poor,
            rich,
            EngineMsg::StealRequest {
                seq,
                count: to_move as u32,
            },
        );
    }
}
