//! Engine configuration.
//!
//! The knobs mirror Section 5 of the paper and Table 2's hyperparameter
//! columns: the big-task threshold τ_split, the decomposition timeout τ_time,
//! the spill batch size `C`, the queue/cache capacities and the simulated
//! cluster shape (number of machines × mining threads per machine).

use crate::transport::TransportFactory;
use qcm_core::CancelToken;
use qcm_graph::{IndexSpec, NeighborhoodIndex};
use qcm_sync::Arc;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of the simulated cluster and the task scheduler.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of simulated machines. Each machine owns a hash partition of the
    /// vertex table, a global big-task queue, a remote-vertex cache and its
    /// own group of mining threads.
    pub num_machines: usize,
    /// Mining threads per machine.
    pub threads_per_machine: usize,
    /// Big-task threshold τ_split: a task whose extension set is larger than
    /// this goes to the machine's global queue, otherwise to the spawning
    /// thread's local queue.
    pub tau_split: usize,
    /// Decomposition timeout τ_time: a task mines its subgraph by backtracking
    /// for at least this long before wrapping the remaining subtrees into new
    /// tasks (Algorithm 10).
    pub tau_time: Duration,
    /// Spill/steal batch size `C`: tasks are spilled to disk, refilled and
    /// (between machines) stolen in batches of this size.
    pub batch_size: usize,
    /// Capacity of each mining thread's bounded work-stealing deque. Small
    /// tasks beyond it overflow into the machine's spill-backed global queue,
    /// so per-worker memory stays bounded without per-worker spill files.
    pub local_capacity: usize,
    /// Number of tasks one successful intra-machine steal moves from a
    /// victim's deque (FIFO end) to the thief. `0` disables work stealing —
    /// workers then only use their own deque and the global queue, which is
    /// the pre-stealing behaviour the benchmark suite baselines against.
    pub steal_batch: usize,
    /// Capacity of each machine's global task queue before spilling.
    pub global_queue_capacity: usize,
    /// Maximum number of adjacency lists kept in a machine's remote-vertex
    /// cache.
    pub vertex_cache_capacity: usize,
    /// Directory used for spill files. `None` keeps spilled batches in memory
    /// (still accounted as "disk" bytes in the metrics) — useful for tests.
    pub spill_dir: Option<PathBuf>,
    /// Period of the master's load-balancing loop (big-task stealing).
    pub balance_period: Duration,
    /// Builds the inter-machine transport for each run. The config holds a
    /// factory rather than a live channel handle so it stays `Clone + Debug`
    /// and every run starts with fresh mailboxes and counters.
    pub transport: TransportFactory,
    /// Per-attempt timeout of a remote vertex pull.
    pub pull_timeout: Duration,
    /// Additional pull attempts after the first times out; when the budget is
    /// exhausted the task is abandoned and the run is labelled
    /// [`qcm_core::RunOutcome::Faulted`].
    pub pull_retries: u32,
    /// Cooperative cancellation: workers poll this at the top of their pop
    /// loop and drain out when it fires, so a cancelled or deadline-hit run
    /// returns the results emitted so far. Defaults to a never-firing token.
    pub cancel: CancelToken,
    /// Hybrid bitset neighborhood-index policy, applied both to the global
    /// vertex table (unless [`EngineConfig::shared_index`] supplies a
    /// prebuilt one) and to every mining task's materialised subgraph.
    pub index: IndexSpec,
    /// A prebuilt global [`NeighborhoodIndex`] to reuse (built once per
    /// graph by the session/service layer and shared across jobs). Must wrap
    /// the same graph the run mines; when `None` the cluster builds one per
    /// [`EngineConfig::index`].
    pub shared_index: Option<Arc<NeighborhoodIndex>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_machines: 1,
            threads_per_machine: num_cpus_fallback(),
            tau_split: 100,
            tau_time: Duration::from_millis(10),
            batch_size: 16,
            local_capacity: 256,
            steal_batch: 4,
            global_queue_capacity: 1024,
            vertex_cache_capacity: 100_000,
            spill_dir: None,
            balance_period: Duration::from_millis(20),
            transport: TransportFactory::default(),
            pull_timeout: Duration::from_millis(100),
            pull_retries: 3,
            cancel: CancelToken::never(),
            index: IndexSpec::Auto,
            shared_index: None,
        }
    }
}

impl EngineConfig {
    /// Creates a configuration for a single machine with the given number of
    /// mining threads (the most common setup for the experiment harness).
    pub fn single_machine(threads: usize) -> Self {
        EngineConfig {
            num_machines: 1,
            threads_per_machine: threads.max(1),
            ..Default::default()
        }
    }

    /// Creates a configuration for a simulated cluster.
    pub fn cluster(num_machines: usize, threads_per_machine: usize) -> Self {
        EngineConfig {
            num_machines: num_machines.max(1),
            threads_per_machine: threads_per_machine.max(1),
            ..Default::default()
        }
    }

    /// Sets the two hyperparameters of Table 2 (τ_split, τ_time).
    pub fn with_decomposition(mut self, tau_split: usize, tau_time: Duration) -> Self {
        self.tau_split = tau_split;
        self.tau_time = tau_time;
        self
    }

    /// Sets the work-stealing knobs: the per-worker deque bound and the
    /// steal batch size (`0` disables stealing).
    pub fn with_stealing(mut self, local_capacity: usize, steal_batch: usize) -> Self {
        self.local_capacity = local_capacity;
        self.steal_batch = steal_batch;
        self
    }

    /// Attaches a cancellation token polled by the worker loops.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Chooses the neighborhood-index policy (default [`IndexSpec::Auto`]).
    pub fn with_index(mut self, index: IndexSpec) -> Self {
        self.index = index;
        self
    }

    /// Reuses a prebuilt global neighborhood index instead of building one at
    /// cluster start.
    pub fn with_shared_index(mut self, index: Arc<NeighborhoodIndex>) -> Self {
        self.shared_index = Some(index);
        self
    }

    /// Chooses the inter-machine transport (default: zero-copy in-process).
    pub fn with_transport(mut self, transport: TransportFactory) -> Self {
        self.transport = transport;
        self
    }

    /// Pre-transport shim: sets the simulated per-remote-fetch latency on the
    /// in-process transport.
    #[deprecated(
        since = "0.2.0",
        note = "use with_transport(TransportFactory::in_proc().with_fetch_latency(..)) instead"
    )]
    pub fn with_fetch_latency(mut self, latency: Duration) -> Self {
        self.transport = self.transport.with_fetch_latency(latency);
        self
    }

    /// Total number of mining threads across the cluster.
    pub fn total_threads(&self) -> usize {
        self.num_machines * self.threads_per_machine
    }

    /// Validates the configuration, panicking on nonsensical values. Called by
    /// the cluster constructor.
    pub fn validate(&self) {
        assert!(self.num_machines >= 1, "need at least one machine");
        assert!(
            self.threads_per_machine >= 1,
            "need at least one thread per machine"
        );
        assert!(self.batch_size >= 1, "batch size must be at least 1");
        assert!(
            self.local_capacity >= 1,
            "local capacity must hold at least one task"
        );
        assert!(
            self.global_queue_capacity >= self.batch_size,
            "global queue capacity must hold at least one batch"
        );
    }
}

/// Conservative fallback for the default thread count (`std::thread` exposes
/// available parallelism but may fail in constrained environments).
fn num_cpus_fallback() -> usize {
    qcm_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        let c = EngineConfig::default();
        c.validate();
        assert_eq!(c.num_machines, 1);
        assert!(c.threads_per_machine >= 1);
    }

    #[test]
    fn cluster_constructor_sets_shape() {
        let c = EngineConfig::cluster(4, 8);
        assert_eq!(c.total_threads(), 32);
        c.validate();
        let c = EngineConfig::cluster(0, 0);
        assert_eq!(c.total_threads(), 1);
    }

    #[test]
    fn with_decomposition_sets_hyperparameters() {
        let c = EngineConfig::single_machine(2).with_decomposition(50, Duration::from_millis(1));
        assert_eq!(c.tau_split, 50);
        assert_eq!(c.tau_time, Duration::from_millis(1));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_fetch_latency_shim_configures_the_transport() {
        let c = EngineConfig::single_machine(2).with_fetch_latency(Duration::from_micros(50));
        let transport = c.transport.build(c.num_machines);
        assert_eq!(transport.fetch_latency(), Duration::from_micros(50));
        assert!(transport.shared_memory());
        let strict = EngineConfig::cluster(2, 2).with_transport(TransportFactory::strict());
        assert!(!strict.transport.build(2).shared_memory());
    }

    #[test]
    #[should_panic(expected = "batch")]
    fn validate_rejects_zero_batch() {
        let c = EngineConfig {
            batch_size: 0,
            ..EngineConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "local capacity")]
    fn validate_rejects_zero_local_capacity() {
        let c = EngineConfig {
            local_capacity: 0,
            ..EngineConfig::default()
        };
        c.validate();
    }
}
