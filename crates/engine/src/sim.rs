//! Deterministic discrete-event fault simulation of the engine.
//!
//! [`SimCluster`] runs a [`GThinkerApp`] over the same partitioned vertex
//! table as the live [`crate::cluster::Cluster`], but on a single thread in
//! *virtual time*: machines take turns according to a seeded discrete-event
//! scheduler, every cross-machine message goes through [`SimTransport`] (the
//! second [`Transport`] implementation) with configurable per-link latency and
//! drop probability, and a scenario script can crash, restart, slow down or
//! partition machines mid-run. The whole execution — including the random
//! latency jitter and message losses — derives from one seed, so a
//! 64-machine fault scenario replays byte-identically: the emitted event log
//! (and its FNV-1a hash) is the determinism witness the test suite asserts
//! on.
//!
//! Mechanics that differ from the live cluster, by design:
//!
//! * **Split-phase pulls.** The simulator is single-threaded, so a blocking
//!   [`Transport::pull`] would deadlock it; tasks park with their outstanding
//!   request set and resume when the responses arrive (exactly G-thinker's
//!   suspended-task model). [`SimTransport::pull`] therefore returns
//!   [`TransportError::Unsupported`].
//! * **Exactly-once results per root.** Every task is accounted to its
//!   spawning root ([`crate::task::TaskLabel::root`]). Lost work — a crashed
//!   machine's queue, an abandoned pull, a steal grant whose ack never came —
//!   marks the root *dirty*; once the event horizon drains, dirty roots are
//!   respawned from scratch at their owner (bounded by
//!   [`SimConfig::respawn_limit`]), with previously emitted results for that
//!   root discarded first. A root that cannot be respawned (owner down for
//!   good, limit hit) labels the run [`RunOutcome::Faulted`].
//! * **Virtual deadline.** Wall-clock cancellation tokens are ignored; the
//!   run is bounded by [`SimConfig::max_virtual_us`] instead, which also
//!   guarantees termination under adversarial drop/latency schedules.

use crate::codec::EngineMsg;
use crate::config::EngineConfig;
use crate::metrics::EngineMetrics;
use crate::task::{ComputeContext, Frontier, GThinkerApp, TaskCodec};
use crate::transport::{Envelope, MachineId, PullReply, Transport, TransportError, TransportStats};
use crate::vertex_table::{AdjList, PartitionedVertexTable};
use qcm_core::RunOutcome;
use qcm_graph::{Fnv1a64, Graph, NeighborhoodIndex, VertexId};
use qcm_sync::{Arc, Mutex};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::time::Duration;

/// Root key used for tasks whose application reports no spawning root; such
/// work cannot be respawned, so losing it is a permanent fault.
const ROOTLESS: u32 = u32::MAX;

/// A scripted fault applied to one machine at a virtual instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The machine dies: its queued and parked tasks, inbox and held steal
    /// grants are lost. Its vertex-table partition survives (re-readable
    /// state), so a later [`Fault::Restart`] resumes spawning where the
    /// cursor stopped.
    Crash,
    /// The machine comes back up (no-op if alive).
    Restart,
    /// Every subsequent compute/spawn step on the machine costs `factor`
    /// times as much virtual time (a straggler).
    SlowDown {
        /// Cost multiplier (clamped to at least 1).
        factor: u32,
    },
    /// The link between this machine and `peer` is severed in both
    /// directions; messages on it are dropped.
    Partition {
        /// The other end of the severed link.
        peer: usize,
    },
    /// Heals every severed link involving this machine.
    Heal,
}

/// One scenario entry: apply `fault` to `machine` at `at_us`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the fault, in microseconds.
    pub at_us: u64,
    /// The machine the fault applies to.
    pub machine: usize,
    /// The fault.
    pub fault: Fault,
}

/// Configuration of the deterministic fault simulator.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Seed of the single RNG behind latency jitter and message drops. Same
    /// seed + same scenario ⇒ byte-identical event log.
    pub seed: u64,
    /// Base one-way link latency in virtual microseconds.
    pub link_latency_us: u64,
    /// Uniform jitter added on top of the base latency (`0..=jitter`).
    pub latency_jitter_us: u64,
    /// Probability that a message is dropped in flight (0.0 disables loss).
    pub drop_probability: f64,
    /// Per-attempt timeout of a split-phase pull, in virtual microseconds.
    pub pull_timeout_us: u64,
    /// Additional pull attempts after the first times out; exhaustion
    /// abandons the task and dirties its root.
    pub pull_retries: u32,
    /// Steal-grant retransmissions before the granting machine declares the
    /// batch lost and dirties the affected roots.
    pub grant_retries: u32,
    /// Virtual cost of one compute step.
    pub compute_cost_us: u64,
    /// Virtual cost of spawning one batch of root tasks.
    pub spawn_cost_us: u64,
    /// Period of the master's balancing pass (inter-machine big-task steal).
    pub balance_period_us: u64,
    /// How many times a dirty root may be respawned before its loss becomes
    /// a permanent fault.
    pub respawn_limit: u32,
    /// Hard virtual-time horizon; exceeding it labels the run
    /// [`RunOutcome::Faulted`] (the simulator's termination guarantee).
    pub max_virtual_us: u64,
    /// The scripted faults.
    pub scenario: Vec<FaultEvent>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            link_latency_us: 500,
            latency_jitter_us: 200,
            drop_probability: 0.0,
            pull_timeout_us: 10_000,
            pull_retries: 3,
            grant_retries: 3,
            compute_cost_us: 100,
            spawn_cost_us: 50,
            balance_period_us: 5_000,
            respawn_limit: 3,
            max_virtual_us: 60_000_000,
            scenario: Vec::new(),
        }
    }
}

impl SimConfig {
    /// A fault-free simulation with the given seed.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Mid-mine crash: `machine` dies at `crash_at_us` and, when
    /// `restart_at_us` is `Some`, comes back up then (permitting a complete
    /// run via root respawn); `None` leaves it down for good.
    pub fn crash_scenario(
        seed: u64,
        machine: usize,
        crash_at_us: u64,
        restart_at_us: Option<u64>,
    ) -> Self {
        let mut scenario = vec![FaultEvent {
            at_us: crash_at_us,
            machine,
            fault: Fault::Crash,
        }];
        if let Some(at) = restart_at_us {
            scenario.push(FaultEvent {
                at_us: at,
                machine,
                fault: Fault::Restart,
            });
        }
        SimConfig {
            seed,
            scenario,
            ..SimConfig::default()
        }
    }

    /// Slow straggler: `machine` runs `factor`× slower from `at_us` on.
    pub fn straggler_scenario(seed: u64, machine: usize, at_us: u64, factor: u32) -> Self {
        SimConfig {
            seed,
            scenario: vec![FaultEvent {
                at_us,
                machine,
                fault: Fault::SlowDown { factor },
            }],
            ..SimConfig::default()
        }
    }

    /// Partitioned steal victim: the link `a`–`b` is severed at `at_us` and
    /// healed at `heal_at_us` (if given).
    pub fn partition_scenario(
        seed: u64,
        a: usize,
        b: usize,
        at_us: u64,
        heal_at_us: Option<u64>,
    ) -> Self {
        let mut scenario = vec![FaultEvent {
            at_us,
            machine: a,
            fault: Fault::Partition { peer: b },
        }];
        if let Some(at) = heal_at_us {
            scenario.push(FaultEvent {
                at_us: at,
                machine: a,
                fault: Fault::Heal,
            });
        }
        SimConfig {
            seed,
            scenario,
            ..SimConfig::default()
        }
    }

    /// Overrides the drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Overrides the link latency and jitter.
    pub fn with_latency(mut self, base_us: u64, jitter_us: u64) -> Self {
        self.link_latency_us = base_us;
        self.latency_jitter_us = jitter_us;
        self
    }
}

/// SplitMix64: a tiny, well-distributed, seedable PRNG. Chosen over the
/// vendored `rand` stand-in because the sequence is documented and fixed —
/// the event log must replay byte-identically across releases.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..=bound`.
    fn up_to(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % (bound + 1)
        }
    }

    /// True with probability `p`.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The discrete events driving the simulation.
#[derive(Clone, Debug)]
enum Event {
    /// One scheduling step on a machine (process a task or spawn a batch).
    Wake { machine: usize, epoch: u64 },
    /// A message arrives at its destination.
    Deliver { to: usize, env: Envelope },
    /// A parked task's pull attempt expires.
    PullTimeout {
        machine: usize,
        task_id: u64,
        attempt: u32,
    },
    /// A steal grant's ack did not arrive in time.
    AckTimeout { machine: usize, seq: u64 },
    /// Apply `scenario[idx]`.
    Fault { idx: usize },
    /// The master's balancing pass.
    Balance,
}

struct Scheduled {
    at: u64,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The seeded event log: human-readable lines plus a running FNV-1a hash —
/// the replay-determinism witness.
#[derive(Default)]
struct EventLog {
    lines: Vec<String>,
    hash: Fnv1a64,
}

impl EventLog {
    fn push(&mut self, at: u64, line: String) {
        let full = format!("t={at:>10} {line}");
        self.hash.write(full.as_bytes());
        self.hash.write(b"\n");
        self.lines.push(full);
    }
}

/// Shared network state: virtual clock, event heap, mailboxes, link faults.
struct NetInner {
    machines: usize,
    clock: u64,
    next_seq: u64,
    heap: BinaryHeap<Reverse<Scheduled>>,
    inboxes: Vec<VecDeque<Envelope>>,
    alive: Vec<bool>,
    severed: BTreeSet<(usize, usize)>,
    rng: SplitMix64,
    link_latency_us: u64,
    latency_jitter_us: u64,
    drop_probability: f64,
    log: EventLog,
    stats: TransportStats,
}

fn link_key(a: usize, b: usize) -> (usize, usize) {
    (a.min(b), a.max(b))
}

impl NetInner {
    fn schedule(&mut self, delay_us: u64, ev: Event) {
        let at = self.clock + delay_us.max(1);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }

    fn send(&mut self, from: usize, to: usize, msg: EngineMsg) -> Result<(), TransportError> {
        if to >= self.machines {
            return Err(TransportError::Closed);
        }
        let kind = msg.kind();
        let bytes = msg.to_wire().len() as u64;
        self.stats.messages_sent += 1;
        self.stats.wire_bytes += bytes;
        let clock = self.clock;
        if self.severed.contains(&link_key(from, to)) {
            self.stats.messages_dropped += 1;
            self.log
                .push(clock, format!("drop m{from}->m{to} {kind} (partitioned)"));
            return Ok(());
        }
        if self.rng.chance(self.drop_probability) {
            self.stats.messages_dropped += 1;
            self.log
                .push(clock, format!("drop m{from}->m{to} {kind} (loss)"));
            return Ok(());
        }
        let latency = self.link_latency_us + self.rng.up_to(self.latency_jitter_us);
        self.log.push(
            clock,
            format!("send m{from}->m{to} {kind} {bytes}B +{latency}us"),
        );
        self.schedule(
            latency,
            Event::Deliver {
                to,
                env: Envelope { from, msg },
            },
        );
        Ok(())
    }
}

/// The simulator's [`Transport`]: messages go through the seeded
/// discrete-event network. Blocking pulls are unsupported (the simulation is
/// single-threaded); the driver uses split-phase pulls instead.
pub struct SimTransport {
    net: Arc<Mutex<NetInner>>,
}

impl SimTransport {
    fn net(&self) -> qcm_sync::MutexGuard<'_, NetInner> {
        self.net.lock()
    }
}

impl Transport for SimTransport {
    fn machines(&self) -> usize {
        self.net().machines
    }

    fn send(&self, from: MachineId, to: MachineId, msg: EngineMsg) -> Result<(), TransportError> {
        self.net().send(from, to, msg)
    }

    fn try_recv(&self, machine: MachineId) -> Option<Envelope> {
        self.net().inboxes.get_mut(machine)?.pop_front()
    }

    fn pull(
        &self,
        _from: MachineId,
        _owner: MachineId,
        _vertices: &[VertexId],
        _timeout: Duration,
    ) -> Result<PullReply, TransportError> {
        Err(TransportError::Unsupported)
    }

    fn stats(&self) -> TransportStats {
        self.net().stats
    }
}

/// A task parked on outstanding pulls.
struct Parked {
    frontier: Frontier,
    /// Owner machine → vertices still awaited from it.
    outstanding: BTreeMap<usize, Vec<VertexId>>,
    attempt: u32,
}

struct TaskState<T> {
    task: T,
    root: u32,
    parked: Option<Parked>,
}

/// A steal grant awaiting its ack; the blobs are kept for retransmission.
struct PendingGrant {
    to: usize,
    blobs: Vec<Vec<u8>>,
    roots: Vec<u32>,
    retries: u32,
}

struct SimMachine<T> {
    queue: VecDeque<u64>,
    tasks: BTreeMap<u64, TaskState<T>>,
    cursor: VecDeque<VertexId>,
    wake_scheduled: bool,
    /// Incremented on crash so stale Wake events are ignored.
    epoch: u64,
    /// Compute-cost multiplier (stragglers run slower).
    speed: u64,
    pending_grants: BTreeMap<u64, PendingGrant>,
    seen_grants: BTreeSet<u64>,
}

impl<T> SimMachine<T> {
    fn new(cursor: VecDeque<VertexId>) -> Self {
        SimMachine {
            queue: VecDeque::new(),
            tasks: BTreeMap::new(),
            cursor,
            wake_scheduled: false,
            epoch: 0,
            speed: 1,
            pending_grants: BTreeMap::new(),
            seen_grants: BTreeSet::new(),
        }
    }

    fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.cursor.is_empty()
    }
}

/// Output of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Result rows, flattened in root-id order (exactly-once per root).
    pub results: Vec<Vec<VertexId>>,
    /// Run metrics; `virtual_time` is set and `elapsed` is the (irrelevant
    /// for benchmarking) wall time of the simulation itself.
    pub metrics: EngineMetrics,
    /// The run outcome (also in `metrics.outcome`).
    pub outcome: RunOutcome,
    /// The seeded event log.
    pub event_log: Vec<String>,
    /// FNV-1a hash over the event-log lines — the replay-determinism witness.
    pub log_hash: u64,
    /// Final virtual clock in microseconds.
    pub virtual_us: u64,
    /// The neighborhood index the run served edge queries through.
    pub index: Option<Arc<NeighborhoodIndex>>,
}

/// A deterministic simulated cluster executing one application under a fault
/// scenario.
pub struct SimCluster<A: GThinkerApp> {
    app: Arc<A>,
    engine: EngineConfig,
    sim: SimConfig,
}

impl<A: GThinkerApp> SimCluster<A> {
    /// Creates the simulated cluster. The cluster shape (machines) comes from
    /// `engine`; thread counts are not modelled — each machine performs one
    /// scheduling step per wake.
    pub fn new(app: Arc<A>, engine: EngineConfig, sim: SimConfig) -> Self {
        engine.validate();
        SimCluster { app, engine, sim }
    }

    /// Runs the application over `graph` in virtual time under the scenario.
    pub fn run(&self, graph: Arc<Graph>) -> SimOutput {
        let wall_start = qcm_obs::clock::now();
        let index = match &self.engine.shared_index {
            Some(shared) if Arc::ptr_eq(shared.graph(), &graph) => shared.clone(),
            _ => Arc::new(NeighborhoodIndex::build(graph, self.engine.index)),
        };
        let table = PartitionedVertexTable::with_index(index.clone(), self.engine.num_machines);
        let machines = self.engine.num_machines;

        let net = Arc::new(Mutex::new(NetInner {
            machines,
            clock: 0,
            next_seq: 0,
            heap: BinaryHeap::new(),
            inboxes: (0..machines).map(|_| VecDeque::new()).collect(),
            alive: vec![true; machines],
            severed: BTreeSet::new(),
            rng: SplitMix64::new(self.sim.seed),
            link_latency_us: self.sim.link_latency_us,
            latency_jitter_us: self.sim.latency_jitter_us,
            drop_probability: self.sim.drop_probability,
            log: EventLog::default(),
            stats: TransportStats::default(),
        }));
        let transport = SimTransport { net: net.clone() };

        let mut driver = Driver {
            app: self.app.as_ref(),
            engine: &self.engine,
            sim: &self.sim,
            table: &table,
            net,
            transport,
            machines: (0..machines)
                .map(|m| SimMachine::new(table.owned_vertices(m).into()))
                .collect(),
            live: BTreeMap::new(),
            dirty: BTreeSet::new(),
            respawns: BTreeMap::new(),
            results: BTreeMap::new(),
            outstanding_pulls: BTreeMap::new(),
            next_task: 0,
            next_token: 0,
            next_steal_seq: 0,
            balance_scheduled: false,
            tasks_spawned: 0,
            tasks_processed: 0,
            tasks_decomposed: 0,
            stolen_tasks: 0,
            pull_retry_count: 0,
            pull_failure_count: 0,
            local_reads: 0,
            remote_fetches: 0,
            faulted: false,
            interrupted: false,
        };
        driver.run();

        let (virtual_us, stats, lines, hash) = {
            let mut net = driver.net.lock();
            let log = std::mem::take(&mut net.log);
            (net.clock, net.stats, log.lines, log.hash.finish())
        };
        let outcome = if driver.faulted {
            RunOutcome::Faulted
        } else if driver.interrupted {
            RunOutcome::Cancelled
        } else {
            RunOutcome::Complete
        };
        let results: Vec<Vec<VertexId>> = driver.results.into_values().flatten().collect();
        let metrics = EngineMetrics {
            elapsed: wall_start.elapsed(),
            tasks_spawned: driver.tasks_spawned,
            tasks_processed: driver.tasks_processed,
            tasks_decomposed: driver.tasks_decomposed,
            results_emitted: results.len() as u64,
            local_reads: driver.local_reads,
            remote_fetches: driver.remote_fetches,
            remote_bytes: stats.wire_bytes,
            pull_retries: driver.pull_retry_count,
            pull_failures: driver.pull_failure_count,
            transport_messages: stats.messages_sent,
            transport_dropped: stats.messages_dropped,
            virtual_time: Some(Duration::from_micros(virtual_us)),
            stolen_tasks: driver.stolen_tasks,
            outcome,
            ..EngineMetrics::default()
        };
        SimOutput {
            results,
            metrics,
            outcome,
            event_log: lines,
            log_hash: hash,
            virtual_us,
            index: Some(index),
        }
    }
}

struct Driver<'a, A: GThinkerApp> {
    app: &'a A,
    engine: &'a EngineConfig,
    sim: &'a SimConfig,
    table: &'a PartitionedVertexTable,
    net: Arc<Mutex<NetInner>>,
    transport: SimTransport,
    machines: Vec<SimMachine<A::Task>>,
    /// Per-root live task balance; a root is drained when its count ≤ 0.
    live: BTreeMap<u32, i64>,
    /// Roots that lost work and must be respawned.
    dirty: BTreeSet<u32>,
    respawns: BTreeMap<u32, u32>,
    /// Result rows keyed by root — discarded wholesale on respawn, so every
    /// root contributes exactly once.
    results: BTreeMap<u32, Vec<Vec<VertexId>>>,
    /// Pull token → (requesting machine, task id).
    outstanding_pulls: BTreeMap<u64, (usize, u64)>,
    next_task: u64,
    next_token: u64,
    next_steal_seq: u64,
    balance_scheduled: bool,
    tasks_spawned: u64,
    tasks_processed: u64,
    tasks_decomposed: u64,
    stolen_tasks: u64,
    pull_retry_count: u64,
    pull_failure_count: u64,
    local_reads: u64,
    remote_fetches: u64,
    faulted: bool,
    interrupted: bool,
}

impl<'a, A: GThinkerApp> Driver<'a, A> {
    fn net(&self) -> qcm_sync::MutexGuard<'_, NetInner> {
        self.net.lock()
    }

    fn log(&self, line: String) {
        let mut net = self.net();
        let clock = net.clock;
        net.log.push(clock, line);
    }

    fn schedule(&self, delay_us: u64, ev: Event) {
        self.net().schedule(delay_us, ev);
    }

    fn ensure_wake(&mut self, m: usize) {
        let alive = self.net().alive[m];
        let mach = &mut self.machines[m];
        if alive && !mach.wake_scheduled && mach.has_work() {
            mach.wake_scheduled = true;
            let epoch = mach.epoch;
            self.schedule(1, Event::Wake { machine: m, epoch });
        }
    }

    fn ensure_balance(&mut self) {
        if self.machines.len() > 1 && !self.balance_scheduled {
            self.balance_scheduled = true;
            self.schedule(self.sim.balance_period_us, Event::Balance);
        }
    }

    fn run(&mut self) {
        for m in 0..self.machines.len() {
            self.ensure_wake(m);
        }
        for idx in 0..self.sim.scenario.len() {
            let at = self.sim.scenario[idx].at_us;
            self.schedule(at, Event::Fault { idx });
        }
        self.ensure_balance();

        loop {
            let next = self.net().heap.pop();
            match next {
                Some(Reverse(Scheduled { at, ev, .. })) => {
                    if at > self.sim.max_virtual_us {
                        self.faulted = true;
                        self.log(format!(
                            "horizon exceeded at {at}us (max {})",
                            self.sim.max_virtual_us
                        ));
                        break;
                    }
                    self.net().clock = at;
                    self.handle(ev);
                }
                None => {
                    if !self.respawn_round() {
                        break;
                    }
                }
            }
        }
        self.finalize();
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Wake { machine, epoch } => self.on_wake(machine, epoch),
            Event::Deliver { to, env } => self.on_deliver(to, env),
            Event::PullTimeout {
                machine,
                task_id,
                attempt,
            } => self.on_pull_timeout(machine, task_id, attempt),
            Event::AckTimeout { machine, seq } => self.on_ack_timeout(machine, seq),
            Event::Fault { idx } => self.on_fault(idx),
            Event::Balance => self.on_balance(),
        }
    }

    fn on_wake(&mut self, m: usize, epoch: u64) {
        if self.machines[m].epoch != epoch {
            return; // stale wake from before a crash
        }
        self.machines[m].wake_scheduled = false;
        if !self.net().alive[m] {
            return;
        }
        let cost = if let Some(tid) = self.machines[m].queue.pop_front() {
            self.step_task(m, tid)
        } else if !self.machines[m].cursor.is_empty() {
            self.spawn_batch(m)
        } else {
            return; // idle: a delivery or restart re-wakes the machine
        };
        let mach = &mut self.machines[m];
        if mach.has_work() {
            mach.wake_scheduled = true;
            let epoch = mach.epoch;
            self.schedule(cost.max(1), Event::Wake { machine: m, epoch });
        } else {
            // Re-wake once the in-flight step cost elapses anyway: parked
            // tasks or late deliveries may need the machine again, and the
            // deliver path also wakes it.
        }
    }

    /// Registers freshly created tasks on machine `m`.
    fn register_tasks(&mut self, m: usize, new_tasks: Vec<A::Task>, decomposed: bool) {
        for task in new_tasks {
            let root = self
                .app
                .task_label(&task)
                .root
                .map(|v| v.raw())
                .unwrap_or(ROOTLESS);
            *self.live.entry(root).or_insert(0) += 1;
            if decomposed {
                self.tasks_decomposed += 1;
            } else {
                self.tasks_spawned += 1;
            }
            let tid = self.next_task;
            self.next_task += 1;
            self.machines[m].tasks.insert(
                tid,
                TaskState {
                    task,
                    root,
                    parked: None,
                },
            );
            self.machines[m].queue.push_back(tid);
        }
    }

    fn record_results(&mut self, root: u32, rows: Vec<Vec<VertexId>>) {
        if !rows.is_empty() {
            self.results.entry(root).or_default().extend(rows);
        }
    }

    fn spawn_batch(&mut self, m: usize) -> u64 {
        for _ in 0..self.engine.batch_size {
            let Some(v) = self.machines[m].cursor.pop_front() else {
                break;
            };
            let adj = self.table.adjacency(v).to_vec();
            let mut ctx = ComputeContext::new();
            self.app.spawn(v, &adj, &mut ctx);
            self.interrupted |= ctx.interrupted;
            self.record_results(v.raw(), ctx.results);
            self.register_tasks(m, ctx.new_tasks, false);
        }
        self.sim.spawn_cost_us * self.machines[m].speed
    }

    /// One scheduling step for task `tid` on machine `m`; returns its virtual
    /// cost.
    fn step_task(&mut self, m: usize, tid: u64) -> u64 {
        let Some(state) = self.machines[m].tasks.get_mut(&tid) else {
            return 1; // stolen or lost since it was queued
        };
        // A parked task re-queued by the last pull response computes with its
        // assembled frontier; otherwise resolve this iteration's pulls.
        let frontier = if let Some(parked) = state.parked.take() {
            debug_assert!(parked.outstanding.is_empty());
            parked.frontier
        } else {
            let mut frontier = Frontier::new();
            let mut remote: BTreeMap<usize, Vec<VertexId>> = BTreeMap::new();
            for &v in self.app.pending_pulls(&state.task) {
                let owner = self.table.owner(v);
                if owner == m {
                    self.local_reads += 1;
                    frontier.insert(v, AdjList::Shared(self.table.graph().clone(), v));
                } else {
                    self.remote_fetches += 1;
                    remote.entry(owner).or_default().push(v);
                }
            }
            if !remote.is_empty() {
                // Park: send one pull request per owner, arm the timeout.
                let state = self.machines[m].tasks.get_mut(&tid).expect("task exists");
                state.parked = Some(Parked {
                    frontier,
                    outstanding: remote.clone(),
                    attempt: 0,
                });
                for (owner, vertices) in remote {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.outstanding_pulls.insert(token, (m, tid));
                    let _ =
                        self.transport
                            .send(m, owner, EngineMsg::PullRequest { token, vertices });
                }
                self.schedule(
                    self.sim.pull_timeout_us,
                    Event::PullTimeout {
                        machine: m,
                        task_id: tid,
                        attempt: 0,
                    },
                );
                return self.sim.spawn_cost_us * self.machines[m].speed;
            }
            frontier
        };

        let state = self.machines[m].tasks.get_mut(&tid).expect("task exists");
        let root = state.root;
        let mut ctx = ComputeContext::new();
        let more = self.app.compute(&mut state.task, &frontier, &mut ctx);
        self.interrupted |= ctx.interrupted;
        self.record_results(root, ctx.results);
        self.register_tasks(m, ctx.new_tasks, true);
        if more {
            self.machines[m].queue.push_back(tid);
        } else {
            self.machines[m].tasks.remove(&tid);
            self.tasks_processed += 1;
            *self.live.entry(root).or_insert(0) -= 1;
        }
        self.sim.compute_cost_us * self.machines[m].speed
    }

    fn on_deliver(&mut self, to: usize, env: Envelope) {
        if !self.net().alive[to] {
            let mut net = self.net();
            net.stats.messages_dropped += 1;
            let clock = net.clock;
            let kind = env.msg.kind();
            let from = env.from;
            net.log
                .push(clock, format!("lost m{from}->m{to} {kind} (down)"));
            return;
        }
        // Route through the transport mailbox so the trait surface is the
        // real delivery path, then handle immediately (control messages are
        // processed by the machine's communication layer, not its workers).
        self.net().inboxes[to].push_back(env);
        while let Some(env) = self.transport.try_recv(to) {
            self.handle_message(to, env);
        }
    }

    fn handle_message(&mut self, m: usize, env: Envelope) {
        let from = env.from;
        match env.msg {
            EngineMsg::PullRequest { token, vertices } => {
                let lists: PullReply = vertices
                    .iter()
                    .map(|&v| (v, Arc::new(self.table.adjacency(v).to_vec())))
                    .collect();
                let _ = self
                    .transport
                    .send(m, from, EngineMsg::PullResponse { token, lists });
            }
            EngineMsg::PullResponse { token, lists } => {
                let Some((machine, tid)) = self.outstanding_pulls.remove(&token) else {
                    self.log(format!("stale pull-resp token={token} at m{m}"));
                    return;
                };
                debug_assert_eq!(machine, m);
                let Some(state) = self.machines[m].tasks.get_mut(&tid) else {
                    return; // task abandoned or lost meanwhile
                };
                let Some(parked) = state.parked.as_mut() else {
                    return;
                };
                for (v, adj) in lists {
                    parked.frontier.insert(v, AdjList::Owned(adj));
                }
                parked.outstanding.remove(&from);
                if parked.outstanding.is_empty() {
                    self.machines[m].queue.push_back(tid);
                    self.ensure_wake(m);
                }
            }
            EngineMsg::StealRequest { seq, count } => {
                let mut blobs = Vec::new();
                let mut roots = Vec::new();
                for _ in 0..count {
                    // Steal from the cold (back) end of the queue.
                    let Some(tid) = self.machines[m].queue.pop_back() else {
                        break;
                    };
                    let Some(state) = self.machines[m].tasks.remove(&tid) else {
                        continue;
                    };
                    let mut buf = Vec::new();
                    state.task.encode(&mut buf);
                    blobs.push(buf);
                    roots.push(state.root);
                }
                if blobs.is_empty() {
                    return;
                }
                self.machines[m].pending_grants.insert(
                    seq,
                    PendingGrant {
                        to: from,
                        blobs: blobs.clone(),
                        roots,
                        retries: 0,
                    },
                );
                let _ = self
                    .transport
                    .send(m, from, EngineMsg::StealGrant { seq, tasks: blobs });
                self.schedule(
                    self.sim.pull_timeout_us,
                    Event::AckTimeout { machine: m, seq },
                );
            }
            EngineMsg::StealGrant { seq, tasks } => {
                if self.machines[m].seen_grants.contains(&seq) {
                    // Duplicate (our ack was lost): just re-ack.
                    let _ = self.transport.send(m, from, EngineMsg::StealAck { seq });
                    return;
                }
                self.machines[m].seen_grants.insert(seq);
                let mut decoded = Vec::with_capacity(tasks.len());
                for blob in &tasks {
                    let mut slice = blob.as_slice();
                    match <A::Task as TaskCodec>::decode(&mut slice) {
                        Some(t) => decoded.push(t),
                        None => {
                            // Undecodable stolen task: its root is unknowable
                            // here, so the loss is unrecoverable.
                            self.faulted = true;
                            self.log(format!("undecodable stolen task in seq={seq}"));
                        }
                    }
                }
                let n = decoded.len() as u64;
                for task in decoded {
                    // The task was already counted live by its origin machine;
                    // re-register without touching the live balance.
                    let tid = self.next_task;
                    self.next_task += 1;
                    let root = self
                        .app
                        .task_label(&task)
                        .root
                        .map(|v| v.raw())
                        .unwrap_or(ROOTLESS);
                    self.machines[m].tasks.insert(
                        tid,
                        TaskState {
                            task,
                            root,
                            parked: None,
                        },
                    );
                    self.machines[m].queue.push_back(tid);
                }
                self.stolen_tasks += n;
                let _ = self.transport.send(m, from, EngineMsg::StealAck { seq });
                self.ensure_wake(m);
            }
            EngineMsg::StealAck { seq } => {
                self.machines[m].pending_grants.remove(&seq);
            }
            EngineMsg::SpillNotice { .. } | EngineMsg::RefillNotice { .. } => {
                // The sim's queues are unbounded; notices are log-only.
            }
            EngineMsg::Shutdown => {}
        }
    }

    fn on_pull_timeout(&mut self, m: usize, tid: u64, attempt: u32) {
        let Some(state) = self.machines[m].tasks.get_mut(&tid) else {
            return;
        };
        let Some(parked) = state.parked.as_mut() else {
            return;
        };
        if parked.attempt != attempt || parked.outstanding.is_empty() {
            return; // resolved or already retried
        }
        if attempt < self.sim.pull_retries {
            parked.attempt = attempt + 1;
            let resend: Vec<(usize, Vec<VertexId>)> = parked
                .outstanding
                .iter()
                .map(|(&o, vs)| (o, vs.clone()))
                .collect();
            self.pull_retry_count += resend.len() as u64;
            for (owner, vertices) in resend {
                let token = self.next_token;
                self.next_token += 1;
                self.outstanding_pulls.insert(token, (m, tid));
                let _ = self
                    .transport
                    .send(m, owner, EngineMsg::PullRequest { token, vertices });
            }
            self.schedule(
                self.sim.pull_timeout_us,
                Event::PullTimeout {
                    machine: m,
                    task_id: tid,
                    attempt: attempt + 1,
                },
            );
        } else {
            // Retry budget exhausted: abandon the task, dirty its root.
            let root = state.root;
            self.machines[m].tasks.remove(&tid);
            self.pull_failure_count += 1;
            *self.live.entry(root).or_insert(0) -= 1;
            self.dirty.insert(root);
            self.log(format!(
                "abandon task={tid} root={root} (pull timeout) at m{m}"
            ));
        }
    }

    fn on_ack_timeout(&mut self, m: usize, seq: u64) {
        if !self.net().alive[m] {
            return; // crash already accounted for the held grants
        }
        let Some(grant) = self.machines[m].pending_grants.get_mut(&seq) else {
            return; // acked
        };
        if grant.retries < self.sim.grant_retries {
            grant.retries += 1;
            let to = grant.to;
            let blobs = grant.blobs.clone();
            let _ = self
                .transport
                .send(m, to, EngineMsg::StealGrant { seq, tasks: blobs });
            self.schedule(
                self.sim.pull_timeout_us,
                Event::AckTimeout { machine: m, seq },
            );
        } else {
            let grant = self.machines[m]
                .pending_grants
                .remove(&seq)
                .expect("grant present");
            self.log(format!(
                "steal-grant seq={seq} m{m}->m{} lost after retries",
                grant.to
            ));
            for root in grant.roots {
                *self.live.entry(root).or_insert(0) -= 1;
                self.dirty.insert(root);
            }
        }
    }

    fn on_fault(&mut self, idx: usize) {
        let FaultEvent {
            machine: m, fault, ..
        } = self.sim.scenario[idx];
        match fault {
            Fault::Crash => {
                if !self.net().alive[m] {
                    return;
                }
                self.net().alive[m] = false;
                self.net().inboxes[m].clear();
                self.log(format!("fault crash m{m}"));
                let mach = &mut self.machines[m];
                mach.queue.clear();
                mach.wake_scheduled = false;
                mach.epoch += 1;
                let lost: Vec<u32> = mach.tasks.values().map(|t| t.root).collect();
                mach.tasks.clear();
                let grants: Vec<PendingGrant> = std::mem::take(&mut mach.pending_grants)
                    .into_values()
                    .collect();
                for root in lost {
                    *self.live.entry(root).or_insert(0) -= 1;
                    self.dirty.insert(root);
                }
                for grant in grants {
                    for root in grant.roots {
                        *self.live.entry(root).or_insert(0) -= 1;
                        self.dirty.insert(root);
                    }
                }
            }
            Fault::Restart => {
                if self.net().alive[m] {
                    return;
                }
                self.net().alive[m] = true;
                self.log(format!("fault restart m{m}"));
                self.ensure_wake(m);
                self.ensure_balance();
            }
            Fault::SlowDown { factor } => {
                self.machines[m].speed = factor.max(1) as u64;
                self.log(format!("fault slowdown m{m} x{factor}"));
            }
            Fault::Partition { peer } => {
                self.net().severed.insert(link_key(m, peer));
                self.log(format!("fault partition m{m}--m{peer}"));
            }
            Fault::Heal => {
                self.net().severed.retain(|&(a, b)| a != m && b != m);
                self.log(format!("fault heal m{m}"));
            }
        }
    }

    fn on_balance(&mut self) {
        self.balance_scheduled = false;
        let alive = self.net().alive.clone();
        let counts: Vec<usize> = self
            .machines
            .iter()
            .enumerate()
            .map(|(i, mch)| if alive[i] { mch.queue.len() } else { 0 })
            .collect();
        let total: usize = counts.iter().sum();
        if total > 0 {
            let candidates: Vec<(usize, usize)> = counts
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| alive[i])
                .collect();
            if candidates.len() > 1 {
                let &(rich, rich_count) = candidates
                    .iter()
                    .max_by_key(|&&(_, c)| c)
                    .expect("nonempty");
                let &(poor, poor_count) = candidates
                    .iter()
                    .min_by_key(|&&(_, c)| c)
                    .expect("nonempty");
                if rich != poor && rich_count > poor_count + 1 {
                    let count = self
                        .engine
                        .batch_size
                        .min((rich_count - poor_count) / 2)
                        .max(1) as u32;
                    let seq = self.next_steal_seq;
                    self.next_steal_seq += 1;
                    let _ = self
                        .transport
                        .send(poor, rich, EngineMsg::StealRequest { seq, count });
                }
            }
        }
        let pending = (0..self.machines.len()).any(|i| {
            alive[i]
                && (self.machines[i].has_work()
                    || !self.machines[i].tasks.is_empty()
                    || !self.machines[i].pending_grants.is_empty())
        });
        if pending {
            self.ensure_balance();
        }
    }

    /// Called when the event heap drains: respawn dirty roots if possible.
    /// Returns true when new work was scheduled.
    fn respawn_round(&mut self) -> bool {
        let mut progress = false;
        let dirty: Vec<u32> = self.dirty.iter().copied().collect();
        for root in dirty {
            self.dirty.remove(&root);
            if root == ROOTLESS {
                self.faulted = true;
                self.log("permanent loss: rootless task".to_string());
                continue;
            }
            let v = VertexId::new(root);
            let owner = self.table.owner(v);
            if !self.net().alive[owner] {
                // No events remain, so the owner can never come back.
                self.faulted = true;
                self.log(format!("permanent loss: root={root} owner m{owner} down"));
                continue;
            }
            let attempts = self.respawns.get(&root).copied().unwrap_or(0);
            if attempts >= self.sim.respawn_limit {
                self.faulted = true;
                self.log(format!("permanent loss: root={root} respawn limit"));
                continue;
            }
            self.respawns.insert(root, attempts + 1);
            // Discard the root's partial results and re-mine from scratch —
            // exactly-once results per root.
            self.results.remove(&root);
            self.live.remove(&root);
            self.log(format!("respawn root={root} at m{owner}"));
            let adj = self.table.adjacency(v).to_vec();
            let mut ctx = ComputeContext::new();
            self.app.spawn(v, &adj, &mut ctx);
            self.interrupted |= ctx.interrupted;
            self.record_results(root, ctx.results);
            self.register_tasks(owner, ctx.new_tasks, false);
            self.ensure_wake(owner);
            progress = true;
        }
        if !progress {
            // Defensive: an alive machine with work but no wake means a
            // bookkeeping bug; re-arm rather than exit with work pending.
            for m in 0..self.machines.len() {
                if self.net().alive[m] && self.machines[m].has_work() {
                    self.ensure_wake(m);
                    if self.machines[m].wake_scheduled {
                        progress = true;
                    }
                }
            }
        }
        if progress {
            self.ensure_balance();
        }
        progress
    }

    fn finalize(&mut self) {
        // Anything still undone at exit is dropped work.
        for m in 0..self.machines.len() {
            if !self.machines[m].cursor.is_empty() || !self.machines[m].tasks.is_empty() {
                self.faulted = true;
            }
        }
        if !self.dirty.is_empty() || self.live.values().any(|&n| n > 0) {
            self.faulted = true;
        }
        let outcome = if self.faulted {
            "faulted"
        } else if self.interrupted {
            "interrupted"
        } else {
            "complete"
        };
        self.log(format!(
            "end outcome={outcome} spawned={} processed={} stolen={}",
            self.tasks_spawned, self.tasks_processed, self.stolen_tasks
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskLabel;

    /// A toy app: each vertex spawns one task that pulls the root's
    /// neighbors, then emits `[v, max_neighbor]` for every neighbor larger
    /// than the root. Pull-heavy enough to exercise the split-phase path.
    struct EchoApp;

    #[derive(Clone, Debug)]
    struct EchoTask {
        root: VertexId,
        pulls: Vec<VertexId>,
    }

    impl TaskCodec for EchoTask {
        fn encode(&self, buf: &mut Vec<u8>) {
            crate::codec::put_u32(buf, self.root.raw());
            crate::codec::put_u32(buf, self.pulls.len() as u32);
            for v in &self.pulls {
                crate::codec::put_u32(buf, v.raw());
            }
        }
        fn decode(data: &mut &[u8]) -> Option<Self> {
            let root = VertexId::new(crate::codec::take_u32(data)?);
            let n = crate::codec::take_u32(data)? as usize;
            let mut pulls = Vec::with_capacity(n);
            for _ in 0..n {
                pulls.push(VertexId::new(crate::codec::take_u32(data)?));
            }
            Some(EchoTask { root, pulls })
        }
    }

    impl GThinkerApp for EchoApp {
        type Task = EchoTask;

        fn spawn(&self, v: VertexId, adj: &[VertexId], ctx: &mut ComputeContext<Self::Task>) {
            if !adj.is_empty() {
                ctx.add_task(EchoTask {
                    root: v,
                    pulls: adj.to_vec(),
                });
            }
        }

        fn pending_pulls<'t>(&self, task: &'t Self::Task) -> &'t [VertexId] {
            &task.pulls
        }

        fn compute(
            &self,
            task: &mut Self::Task,
            frontier: &Frontier,
            ctx: &mut ComputeContext<Self::Task>,
        ) -> bool {
            for (u, adj) in frontier.iter() {
                if u > task.root && !adj.is_empty() {
                    ctx.emit(vec![task.root, u]);
                }
            }
            task.pulls.clear();
            false
        }

        fn is_big(&self, _task: &Self::Task) -> bool {
            true
        }

        fn task_label(&self, task: &Self::Task) -> TaskLabel {
            TaskLabel {
                root: Some(task.root),
                subgraph_size: task.pulls.len(),
            }
        }
    }

    fn ring(n: u32) -> Arc<Graph> {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Arc::new(Graph::from_edges(n as usize, edges).unwrap())
    }

    fn expected_rows(g: &Graph) -> usize {
        let mut count = 0;
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if u > v && !g.neighbors(u).is_empty() {
                    count += 1;
                }
            }
        }
        count
    }

    fn run(engine: EngineConfig, sim: SimConfig, g: Arc<Graph>) -> SimOutput {
        SimCluster::new(Arc::new(EchoApp), engine, sim).run(g)
    }

    #[test]
    fn fault_free_sim_completes_with_all_results() {
        let g = ring(24);
        let out = run(EngineConfig::cluster(4, 1), SimConfig::new(7), g.clone());
        assert_eq!(out.outcome, RunOutcome::Complete);
        assert_eq!(out.results.len(), expected_rows(&g));
        assert!(out.virtual_us > 0);
        assert_eq!(
            out.metrics.virtual_time,
            Some(Duration::from_micros(out.virtual_us))
        );
        assert!(out.metrics.transport_messages > 0);
    }

    #[test]
    fn sixty_four_machine_crash_scenario_replays_byte_identically() {
        let g = ring(192);
        let engine = EngineConfig::cluster(64, 1);
        let sim = SimConfig::crash_scenario(42, 5, 3_000, Some(40_000));
        let a = run(engine.clone(), sim.clone(), g.clone());
        let b = run(engine, sim, g);
        assert_eq!(a.log_hash, b.log_hash, "same seed must replay identically");
        assert_eq!(a.event_log, b.event_log);
        assert_eq!(a.results, b.results);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn different_seeds_diverge() {
        let g = ring(32);
        let engine = EngineConfig::cluster(8, 1);
        let a = run(
            engine.clone(),
            SimConfig::new(1).with_drop_probability(0.2),
            g.clone(),
        );
        let b = run(engine, SimConfig::new(2).with_drop_probability(0.2), g);
        assert_ne!(a.log_hash, b.log_hash);
    }

    #[test]
    fn crash_with_restart_recovers_to_complete() {
        let g = ring(24);
        let baseline = run(EngineConfig::cluster(3, 1), SimConfig::new(9), g.clone());
        assert_eq!(baseline.outcome, RunOutcome::Complete);
        let out = run(
            EngineConfig::cluster(3, 1),
            SimConfig::crash_scenario(9, 1, 2_000, Some(30_000)),
            g.clone(),
        );
        assert_eq!(
            out.outcome,
            RunOutcome::Complete,
            "restart permits completion"
        );
        let mut a = baseline.results.clone();
        let mut b = out.results.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "recovered run must match the fault-free result set");
    }

    #[test]
    fn crash_without_restart_is_faulted_and_partial() {
        let g = ring(24);
        let out = run(
            EngineConfig::cluster(3, 1),
            SimConfig::crash_scenario(11, 1, 1_500, None),
            g,
        );
        assert_eq!(out.outcome, RunOutcome::Faulted);
    }

    #[test]
    fn total_loss_terminates_via_retry_exhaustion() {
        let g = ring(12);
        let out = run(
            EngineConfig::cluster(2, 1),
            SimConfig::new(3).with_drop_probability(1.0),
            g,
        );
        assert_eq!(out.outcome, RunOutcome::Faulted);
        assert!(out.metrics.transport_dropped > 0);
        assert!(out.metrics.pull_failures > 0);
    }

    #[test]
    fn straggler_completes_slower_than_baseline() {
        let g = ring(24);
        let engine = EngineConfig::cluster(3, 1);
        let fast = run(engine.clone(), SimConfig::new(5), g.clone());
        let slow = run(engine, SimConfig::straggler_scenario(5, 0, 0, 50), g);
        assert_eq!(slow.outcome, RunOutcome::Complete);
        assert!(
            slow.virtual_us > fast.virtual_us,
            "a 50x straggler must stretch virtual time ({} vs {})",
            slow.virtual_us,
            fast.virtual_us
        );
        let mut a = fast.results.clone();
        let mut b = slow.results.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sim_transport_rejects_blocking_pulls() {
        let net = Arc::new(Mutex::new(NetInner {
            machines: 2,
            clock: 0,
            next_seq: 0,
            heap: BinaryHeap::new(),
            inboxes: vec![VecDeque::new(), VecDeque::new()],
            alive: vec![true; 2],
            severed: BTreeSet::new(),
            rng: SplitMix64::new(0),
            link_latency_us: 1,
            latency_jitter_us: 0,
            drop_probability: 0.0,
            log: EventLog::default(),
            stats: TransportStats::default(),
        }));
        let t = SimTransport { net };
        assert_eq!(
            t.pull(0, 1, &[VertexId::new(1)], Duration::from_millis(1)),
            Err(TransportError::Unsupported)
        );
        assert_eq!(t.machines(), 2);
        t.send(0, 1, EngineMsg::Shutdown).unwrap();
        assert_eq!(t.stats().messages_sent, 1);
    }
}
