//! Engine metrics.
//!
//! The experiment harness regenerates the paper's tables and figures from
//! these records:
//!
//! * Table 2's Time / RAM / Disk columns — wall time, peak in-memory task
//!   bytes (plus cache), spill bytes;
//! * Table 6 — the split between cumulative *mining* time and cumulative
//!   *subgraph materialisation* time across all tasks;
//! * Figures 1–3 — the per-task time log ([`TaskTimeRecord`]).

use crate::task::TaskTimings;
use qcm_core::RunOutcome;
use qcm_graph::VertexId;
use std::time::Duration;

/// One entry in the per-task time log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskTimeRecord {
    /// The vertex the root task was spawned from, if the application reported
    /// one.
    pub root: Option<VertexId>,
    /// Size of the task's subgraph (vertices), as reported by the application.
    pub subgraph_size: usize,
    /// Wall-clock time spent processing the task (all its compute iterations).
    pub elapsed: Duration,
    /// Mining vs materialisation attribution reported by the application.
    pub timings: TaskTimings,
}

/// The standard per-task wall-time percentile summary
/// ([`EngineMetrics::task_time_percentiles`]), surfaced by `qcm mine`'s
/// report output and the Prometheus exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskTimePercentiles {
    /// Median per-task wall time.
    pub p50: Duration,
    /// 95th-percentile per-task wall time.
    pub p95: Duration,
    /// 99th-percentile per-task wall time.
    pub p99: Duration,
}

/// Aggregate metrics of one engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Number of root tasks spawned from vertices.
    pub tasks_spawned: u64,
    /// Total number of tasks processed (roots + decomposed subtasks).
    pub tasks_processed: u64,
    /// Number of subtasks created by task decomposition.
    pub tasks_decomposed: u64,
    /// Number of result rows emitted (before maximality post-processing).
    pub results_emitted: u64,
    /// Peak bytes held by in-memory tasks (queued + being processed).
    pub peak_task_bytes: u64,
    /// Spill bytes written (the "Disk" column of Table 2).
    pub spill_bytes_written: u64,
    /// Spill bytes read back.
    pub spill_bytes_read: u64,
    /// Peak bytes resident in spill storage.
    pub spill_peak_bytes: u64,
    /// Adjacency lists served from local partitions.
    pub local_reads: u64,
    /// Adjacency lists fetched from remote machines.
    pub remote_fetches: u64,
    /// Bytes moved between machines for vertex data.
    pub remote_bytes: u64,
    /// Remote reads served by the vertex cache.
    pub cache_hits: u64,
    /// Vertex-cache evictions.
    pub cache_evictions: u64,
    /// Pull attempts that timed out and were retried.
    pub pull_retries: u64,
    /// Pulls abandoned after exhausting their retry budget (each one
    /// abandons a task and forces a [`RunOutcome::Faulted`] label).
    pub pull_failures: u64,
    /// Messages accepted by the transport (all kinds).
    pub transport_messages: u64,
    /// Messages the transport dropped in flight (fault injection /
    /// simulated loss).
    pub transport_dropped: u64,
    /// Virtual clock at the end of a simulated run (`None` for live runs).
    /// Simulated rows measure virtual time, so the bench harness excludes
    /// them from the wall-time regression gate.
    pub virtual_time: Option<Duration>,
    /// Big tasks moved between machines by the load balancer.
    pub stolen_tasks: u64,
    /// Tasks moved between worker deques by the intra-machine steal protocol.
    pub steals: u64,
    /// Intra-machine steal sweeps that found every victim deque empty.
    pub steal_failures: u64,
    /// Worker pops that found the machine's global queue lock already held
    /// (the contention the per-worker deques exist to avoid; with the old
    /// single-queue pop path every one of these was a stalled worker).
    pub pop_contention: u64,
    /// Cumulative mining time over all tasks (Table 6).
    pub total_mining_time: Duration,
    /// Cumulative subgraph-materialisation time over all tasks (Table 6).
    pub total_materialization_time: Duration,
    /// Per-task time log (Figures 1–3).
    pub task_times: Vec<TaskTimeRecord>,
    /// Per-worker busy time (used to verify that cores stay busy).
    pub worker_busy: Vec<Duration>,
    /// Whether the run drained the whole task pool or was interrupted by its
    /// cancellation token / deadline (in which case the emitted results cover
    /// only the processed tasks).
    pub outcome: RunOutcome,
}

impl EngineMetrics {
    /// Mining : materialisation time ratio (the last column of Table 6).
    /// Returns `None` when no materialisation time was recorded.
    pub fn mining_materialization_ratio(&self) -> Option<f64> {
        let mat = self.total_materialization_time.as_secs_f64();
        if mat <= 0.0 {
            None
        } else {
            Some(self.total_mining_time.as_secs_f64() / mat)
        }
    }

    /// Estimated peak memory in bytes: in-memory tasks plus remote-cache
    /// traffic high-water mark is dominated by task subgraphs, which is what
    /// the paper's RAM column tracks.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.peak_task_bytes
    }

    /// The `k` largest per-task wall times, sorted descending (Figure 2).
    ///
    /// Selects over an index vector with `select_nth_unstable` instead of
    /// cloning and fully sorting the record log: `O(n + k log k)` and
    /// 4 bytes per task of transient memory, regardless of record size.
    pub fn top_k_task_times(&self, k: usize) -> Vec<TaskTimeRecord> {
        let n = self.task_times.len();
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        if k < n {
            order.select_nth_unstable_by_key(k - 1, |&i| {
                std::cmp::Reverse(self.task_times[i as usize].elapsed)
            });
            order.truncate(k);
        }
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(self.task_times[i as usize].elapsed));
        order
            .into_iter()
            .map(|i| self.task_times[i as usize])
            .collect()
    }

    /// The `p`-th percentile (nearest-rank, `0.0 < p <= 1.0`) of per-task
    /// wall times, via `select_nth_unstable` over an index vector — no clone
    /// of the record log, no full sort. `None` when no tasks were recorded.
    pub fn task_time_percentile(&self, p: f64) -> Option<Duration> {
        let n = self.task_times.len();
        if n == 0 || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        let mut order: Vec<u32> = (0..n as u32).collect();
        let (_, &mut i, _) =
            order.select_nth_unstable_by_key(rank, |&i| self.task_times[i as usize].elapsed);
        Some(self.task_times[i as usize].elapsed)
    }

    /// The standard (p50, p95, p99) per-task wall-time summary, or `None`
    /// when no tasks were recorded. One selection pass per quantile over an
    /// index vector — see [`EngineMetrics::task_time_percentile`].
    pub fn task_time_percentiles(&self) -> Option<TaskTimePercentiles> {
        Some(TaskTimePercentiles {
            p50: self.task_time_percentile(0.50)?,
            p95: self.task_time_percentile(0.95)?,
            p99: self.task_time_percentile(0.99)?,
        })
    }

    /// Publishes this run's metrics into `registry` under the `qcm_engine_*`
    /// namespace — the engine's bridge into the unified registry the
    /// Prometheus exporter renders. Idempotent per registry: re-publishing
    /// overwrites the previous run's values.
    pub fn publish(&self, registry: &qcm_obs::Registry) {
        let counters: [(&'static str, &'static str, u64); 16] = [
            (
                "qcm_engine_tasks_spawned_total",
                "Root tasks spawned from vertices.",
                self.tasks_spawned,
            ),
            (
                "qcm_engine_tasks_processed_total",
                "Tasks processed (roots + subtasks).",
                self.tasks_processed,
            ),
            (
                "qcm_engine_tasks_decomposed_total",
                "Subtasks created by decomposition.",
                self.tasks_decomposed,
            ),
            (
                "qcm_engine_results_emitted_total",
                "Result rows emitted before post-processing.",
                self.results_emitted,
            ),
            (
                "qcm_engine_spill_bytes_written_total",
                "Spill bytes written to disk.",
                self.spill_bytes_written,
            ),
            (
                "qcm_engine_spill_bytes_read_total",
                "Spill bytes read back.",
                self.spill_bytes_read,
            ),
            (
                "qcm_engine_local_reads_total",
                "Adjacency lists served locally.",
                self.local_reads,
            ),
            (
                "qcm_engine_remote_fetches_total",
                "Adjacency lists fetched from remote machines.",
                self.remote_fetches,
            ),
            (
                "qcm_engine_remote_bytes_total",
                "Bytes moved between machines for vertex data.",
                self.remote_bytes,
            ),
            (
                "qcm_engine_cache_hits_total",
                "Remote reads served by the vertex cache.",
                self.cache_hits,
            ),
            (
                "qcm_engine_pull_retries_total",
                "Pull attempts that timed out and retried.",
                self.pull_retries,
            ),
            (
                "qcm_engine_pull_failures_total",
                "Pulls abandoned after their retry budget.",
                self.pull_failures,
            ),
            (
                "qcm_engine_stolen_tasks_total",
                "Big tasks moved between machines.",
                self.stolen_tasks,
            ),
            (
                "qcm_engine_steals_total",
                "Tasks moved between worker deques.",
                self.steals,
            ),
            (
                "qcm_engine_steal_failures_total",
                "Steal sweeps that found nothing.",
                self.steal_failures,
            ),
            (
                "qcm_engine_pop_contention_total",
                "Pops that found the global queue lock held.",
                self.pop_contention,
            ),
        ];
        for (name, help, value) in counters {
            registry.counter(name, help).set_total(value);
        }
        registry
            .gauge("qcm_engine_elapsed_seconds", "Wall-clock time of the run.")
            .set(self.elapsed.as_secs_f64());
        registry
            .gauge(
                "qcm_engine_peak_task_bytes",
                "Peak bytes held by in-memory tasks.",
            )
            .set(self.peak_task_bytes as f64);
        registry
            .gauge(
                "qcm_engine_spill_peak_bytes",
                "Peak bytes resident in spill storage.",
            )
            .set(self.spill_peak_bytes as f64);
        registry
            .gauge(
                "qcm_engine_worker_utilisation",
                "Busy fraction of total worker capacity.",
            )
            .set(self.worker_utilisation());
        if let Some(p) = self.task_time_percentiles() {
            let quantile = |q: &'static str, d: Duration| {
                registry
                    .gauge_with(
                        "qcm_engine_task_time_seconds",
                        "Per-task wall time over the run's task log.",
                        &[("quantile", q)],
                    )
                    .set(d.as_secs_f64());
            };
            quantile("0.5", p.p50);
            quantile("0.95", p.p95);
            quantile("0.99", p.p99);
        }
    }

    /// Aggregates per-root totals: for every spawning vertex, the summed wall
    /// time and the largest subgraph size over the root task and all subtasks
    /// attributed to it (Figure 1 plots these per-root totals).
    pub fn per_root_totals(&self) -> Vec<(VertexId, Duration, usize)> {
        use std::collections::HashMap;
        let mut acc: HashMap<VertexId, (Duration, usize)> = HashMap::new();
        for rec in &self.task_times {
            if let Some(root) = rec.root {
                let entry = acc.entry(root).or_insert((Duration::ZERO, 0));
                entry.0 += rec.elapsed;
                entry.1 = entry.1.max(rec.subgraph_size);
            }
        }
        let mut rows: Vec<(VertexId, Duration, usize)> =
            acc.into_iter().map(|(v, (d, s))| (v, d, s)).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Simulates the makespan of replaying the recorded per-task durations on
    /// `workers` parallel workers with greedy list scheduling (tasks assigned
    /// in recorded order to the earliest-free worker).
    ///
    /// This is the machine-independent scalability measure used by the
    /// experiment harness when the host lacks real parallelism (e.g. a
    /// single-core CI container): the measured wall time cannot drop below the
    /// serial task time there, but the simulated makespan still reveals
    /// whether the decomposition produced tasks fine-grained enough to keep
    /// `workers` cores busy — which is exactly the property Table 5 of the
    /// paper is about.
    pub fn simulated_makespan(&self, workers: usize) -> Duration {
        let workers = workers.max(1);
        let mut finish = vec![Duration::ZERO; workers];
        for rec in &self.task_times {
            // Earliest-free worker.
            let (idx, _) = finish
                .iter()
                .enumerate()
                .min_by_key(|(_, f)| **f)
                .expect("at least one worker");
            finish[idx] += rec.elapsed;
        }
        finish.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Fraction of total worker capacity that was spent busy (a load-balance
    /// health indicator; the paper's goal 2 is "keep CPU cores busy").
    pub fn worker_utilisation(&self) -> f64 {
        if self.worker_busy.is_empty() || self.elapsed.is_zero() {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        busy / (self.elapsed.as_secs_f64() * self.worker_busy.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(root: u32, size: usize, ms: u64) -> TaskTimeRecord {
        TaskTimeRecord {
            root: Some(VertexId::new(root)),
            subgraph_size: size,
            elapsed: Duration::from_millis(ms),
            timings: TaskTimings::default(),
        }
    }

    #[test]
    fn ratio_handles_zero_materialization() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.mining_materialization_ratio(), None);
        m.total_mining_time = Duration::from_secs(10);
        m.total_materialization_time = Duration::from_millis(100);
        let ratio = m.mining_materialization_ratio().unwrap();
        assert!((ratio - 100.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_sorts_by_elapsed() {
        let m = EngineMetrics {
            task_times: vec![record(1, 10, 5), record(2, 20, 50), record(3, 5, 20)],
            ..EngineMetrics::default()
        };
        let top2 = m.top_k_task_times(2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].root, Some(VertexId::new(2)));
        assert_eq!(top2[1].root, Some(VertexId::new(3)));
        assert_eq!(m.top_k_task_times(10).len(), 3);
    }

    #[test]
    fn task_time_percentile_is_nearest_rank() {
        let m = EngineMetrics {
            task_times: (1..=100u64).map(|ms| record(1, 1, ms)).collect(),
            ..EngineMetrics::default()
        };
        assert_eq!(m.task_time_percentile(0.5), Some(Duration::from_millis(50)));
        assert_eq!(
            m.task_time_percentile(0.99),
            Some(Duration::from_millis(99))
        );
        assert_eq!(
            m.task_time_percentile(1.0),
            Some(Duration::from_millis(100))
        );
        assert_eq!(EngineMetrics::default().task_time_percentile(0.5), None);
        assert_eq!(m.task_time_percentile(1.5), None);
    }

    #[test]
    fn percentile_summary_and_registry_bridge() {
        let m = EngineMetrics {
            tasks_processed: 100,
            task_times: (1..=100u64).map(|ms| record(1, 1, ms)).collect(),
            ..EngineMetrics::default()
        };
        let p = m.task_time_percentiles().unwrap();
        assert_eq!(p.p50, Duration::from_millis(50));
        assert_eq!(p.p95, Duration::from_millis(95));
        assert_eq!(p.p99, Duration::from_millis(99));
        assert_eq!(EngineMetrics::default().task_time_percentiles(), None);

        let registry = qcm_obs::Registry::new();
        m.publish(&registry);
        let text = qcm_obs::prometheus::render(&registry);
        qcm_obs::prometheus::check_text(&text).expect("well-formed exposition");
        assert!(text.contains("qcm_engine_tasks_processed_total 100"));
        assert!(text.contains("qcm_engine_task_time_seconds{quantile=\"0.95\"} 0.095"));
    }

    #[test]
    fn per_root_totals_aggregate_subtasks() {
        let m = EngineMetrics {
            task_times: vec![
                record(7, 100, 30),
                record(7, 40, 20),
                record(9, 10, 5),
                TaskTimeRecord {
                    root: None,
                    subgraph_size: 3,
                    elapsed: Duration::from_millis(1),
                    timings: TaskTimings::default(),
                },
            ],
            ..EngineMetrics::default()
        };
        let totals = m.per_root_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, VertexId::new(7));
        assert_eq!(totals[0].1, Duration::from_millis(50));
        assert_eq!(totals[0].2, 100);
    }

    #[test]
    fn simulated_makespan_balances_tasks() {
        let m = EngineMetrics {
            task_times: vec![
                record(1, 1, 40),
                record(2, 1, 10),
                record(3, 1, 10),
                record(4, 1, 10),
                record(5, 1, 10),
            ],
            ..EngineMetrics::default()
        };
        // Serial: 80 ms. Two workers: the greedy schedule puts the 40 ms task
        // on one worker and the four 10 ms tasks on the other.
        assert_eq!(m.simulated_makespan(1), Duration::from_millis(80));
        assert_eq!(m.simulated_makespan(2), Duration::from_millis(40));
        // More workers cannot beat the longest task.
        assert_eq!(m.simulated_makespan(8), Duration::from_millis(40));
        assert_eq!(m.simulated_makespan(0), Duration::from_millis(80));
        assert_eq!(
            EngineMetrics::default().simulated_makespan(4),
            Duration::ZERO
        );
    }

    #[test]
    fn worker_utilisation_bounds() {
        let mut m = EngineMetrics::default();
        assert_eq!(m.worker_utilisation(), 0.0);
        m.elapsed = Duration::from_secs(2);
        m.worker_busy = vec![Duration::from_secs(1), Duration::from_secs(2)];
        let u = m.worker_utilisation();
        assert!(u > 0.74 && u <= 1.0, "utilisation {u}");
    }
}
