//! # qcm-engine — the reforged G-thinker task engine
//!
//! This crate is the system half of the paper's algorithm–system codesign: a
//! task-based parallel graph-mining engine in the style of G-thinker, with the
//! three reforges Section 5 of the paper introduces for quasi-clique mining:
//!
//! 1. a **global big-task queue** per machine, shared by all mining threads
//!    and popped with priority, so expensive tasks never suffer head-of-line
//!    blocking behind a single thread's local queue;
//! 2. **prioritised refill and spilling**: local/global queues spill batches
//!    of `C` tasks to disk when full and refill from spill files before
//!    spawning new roots, keeping the in-memory task pool bounded;
//! 3. **big-task stealing** between machines, driven by a master that
//!    periodically evens out pending big-task counts.
//!
//! The "cluster" is simulated in-process: machines are thread groups, the
//! vertex table is hash-partitioned over them, remote adjacency-list fetches
//! go through a per-machine cache and are counted as network traffic. The
//! scheduling structure — which is what the paper's scalability results
//! depend on — is preserved faithfully; see DESIGN.md for the substitution
//! rationale.
//!
//! Applications implement [`GThinkerApp`] (the `spawn`/`compute` UDF pair plus
//! the big-task classifier); the quasi-clique application lives in
//! `qcm-parallel`.

pub mod cluster;
pub mod codec;
pub mod config;
pub mod metrics;
pub mod queue;
pub mod sim;
pub mod spill;
pub mod steal;
pub mod task;
pub mod transport;
pub mod vertex_table;

pub use cluster::{Cluster, EngineOutput};
pub use codec::EngineMsg;
pub use config::EngineConfig;
pub use metrics::{EngineMetrics, TaskTimeRecord};
pub use sim::{Fault, FaultEvent, SimCluster, SimConfig, SimOutput, SimTransport};
pub use steal::WorkerQueues;
pub use task::{ComputeContext, Frontier, GThinkerApp, TaskCodec, TaskLabel, TaskTimings};
pub use transport::{
    Envelope, InProcTransport, Transport, TransportError, TransportFactory, TransportKind,
    TransportStats,
};
pub use vertex_table::{AdjList, PartitionedVertexTable, RemoteVertexCache};
