//! Bounded task queues with disk spilling.
//!
//! Each mining thread owns a local [`TaskQueue`] for small tasks and every
//! machine owns one for big tasks (the yellow global queue added by the
//! paper's reforge, Figure 8). When a queue is full, a batch of `C` tasks from
//! its tail is spilled to the associated [`SpillStore`]; when it runs low it
//! refills from spilled batches first, so the number of partially processed
//! tasks buffered on disk stays small.

use crate::spill::SpillStore;
use crate::task::TaskCodec;
use std::collections::VecDeque;

/// A bounded FIFO task queue backed by a spill store.
#[derive(Debug)]
pub struct TaskQueue<T> {
    deque: VecDeque<T>,
    capacity: usize,
    batch: usize,
    spill: SpillStore,
}

impl<T: TaskCodec> TaskQueue<T> {
    /// Creates a queue with the given in-memory capacity, spill batch size and
    /// spill store.
    pub fn new(capacity: usize, batch: usize, spill: SpillStore) -> Self {
        assert!(batch >= 1 && capacity >= batch);
        TaskQueue {
            deque: VecDeque::with_capacity(capacity),
            capacity,
            batch,
            spill,
        }
    }

    /// Number of tasks currently held in memory.
    pub fn len(&self) -> usize {
        self.deque.len()
    }

    /// True if no task is in memory (spilled tasks may still exist; see
    /// [`TaskQueue::total_pending`]).
    pub fn is_empty(&self) -> bool {
        self.deque.is_empty()
    }

    /// Number of tasks in memory plus spilled to disk.
    pub fn total_pending(&self) -> usize {
        self.deque.len() + self.spill.pending_tasks()
    }

    /// Pushes a task to the tail. If the queue is full, a batch of `C` tasks
    /// from the tail is spilled to disk first to make room. Returns the
    /// number of tasks spilled (0 in the common case), so the caller can
    /// raise a spill notice.
    pub fn push(&mut self, task: T) -> usize {
        let mut spilled = 0;
        if self.deque.len() >= self.capacity {
            let spill_count = self.batch.min(self.deque.len());
            let start = self.deque.len() - spill_count;
            let batch: Vec<T> = self.deque.drain(start..).collect();
            self.spill.spill(&batch);
            spilled = spill_count;
        }
        self.deque.push_back(task);
        spilled
    }

    /// Pops a task from the head.
    pub fn pop(&mut self) -> Option<T> {
        self.deque.pop_front()
    }

    /// True if the in-memory queue holds fewer than one batch — the trigger
    /// the paper uses for refilling.
    pub fn needs_refill(&self) -> bool {
        self.deque.len() < self.batch
    }

    /// Loads one spilled batch back into the in-memory queue (if any).
    /// Returns the number of tasks restored.
    pub fn refill_from_spill(&mut self) -> usize {
        if let Some(batch) = self.spill.refill::<T>() {
            let n = batch.len();
            for t in batch {
                self.deque.push_back(t);
            }
            n
        } else {
            0
        }
    }

    /// Drains up to `n` tasks from the head (used by the load balancer when a
    /// machine gives away big tasks).
    pub fn take_batch(&mut self, n: usize) -> Vec<T> {
        let n = n.min(self.deque.len());
        self.deque.drain(..n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill::SpillMetrics;
    use qcm_sync::Arc;

    #[derive(Clone, Debug, PartialEq)]
    struct T(u32);

    impl TaskCodec for T {
        fn encode(&self, buf: &mut Vec<u8>) {
            crate::codec::put_u32(buf, self.0);
        }
        fn decode(data: &mut &[u8]) -> Option<Self> {
            crate::codec::take_u32(data).map(T)
        }
    }

    fn queue(capacity: usize, batch: usize) -> TaskQueue<T> {
        let store = SpillStore::new(None, "q", Arc::new(SpillMetrics::default()));
        TaskQueue::new(capacity, batch, store)
    }

    #[test]
    fn fifo_order_without_overflow() {
        let mut q = queue(8, 2);
        for i in 0..5 {
            q.push(T(i));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.total_pending(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(T(i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_spills_tail_batches() {
        let mut q = queue(4, 2);
        for i in 0..10 {
            q.push(T(i));
        }
        // Capacity 4, batch 2: pushes 0..4 fill it; each further push spills 2.
        assert!(q.len() <= 4);
        assert_eq!(q.total_pending(), 10);
        // The head of the queue must still be the oldest unspilled task.
        assert_eq!(q.pop(), Some(T(0)));
    }

    #[test]
    fn refill_restores_spilled_tasks() {
        let mut q = queue(4, 2);
        for i in 0..10 {
            q.push(T(i));
        }
        let mut seen = Vec::new();
        loop {
            while let Some(t) = q.pop() {
                seen.push(t.0);
            }
            if q.refill_from_spill() == 0 {
                break;
            }
        }
        assert_eq!(q.total_pending(), 0);
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn needs_refill_tracks_batch_threshold() {
        let mut q = queue(8, 3);
        assert!(q.needs_refill());
        for i in 0..3 {
            q.push(T(i));
        }
        assert!(!q.needs_refill());
        q.pop();
        assert!(q.needs_refill());
    }

    #[test]
    fn take_batch_removes_from_head() {
        let mut q = queue(8, 2);
        for i in 0..6 {
            q.push(T(i));
        }
        let taken = q.take_batch(4);
        assert_eq!(taken, vec![T(0), T(1), T(2), T(3)]);
        assert_eq!(q.len(), 2);
        let taken = q.take_batch(10);
        assert_eq!(taken.len(), 2);
        assert!(q.take_batch(1).is_empty());
    }
}
