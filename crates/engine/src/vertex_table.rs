//! The partitioned vertex table and the remote-vertex cache.
//!
//! G-thinker hash-partitions the input graph's vertices (with their adjacency
//! lists) across machines; the local vertex tables of all machines together
//! form a distributed key-value store, and each machine keeps a bounded
//! *remote vertex cache* of adjacency lists it had to fetch from other
//! machines (Figure 8). In this in-process simulation the graph lives in
//! shared memory, but ownership, remote-fetch counting and cache behaviour
//! are preserved so the communication-volume and cache-pressure aspects of
//! the design remain observable.

use crate::transport::{Transport, TransportError};
use qcm_graph::{Graph, IndexSpec, NeighborhoodIndex, Neighborhoods, VertexId};
use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::Arc;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// An adjacency list held by a task frontier.
///
/// Locally owned vertices borrow straight through the shared graph (zero
/// copies, zero allocation — an `Arc` bump on the graph handle); lists that
/// crossed the transport (remote fetches, cache hits, decoded wire payloads)
/// are owned. Callers only ever see [`AdjList::as_slice`], so the two shapes
/// are interchangeable.
#[derive(Clone, Debug)]
pub enum AdjList {
    /// Γ(v) read in place from the shared in-process graph.
    Shared(Arc<Graph>, VertexId),
    /// An owned (fetched or decoded) adjacency list.
    Owned(Arc<Vec<VertexId>>),
}

impl AdjList {
    /// The neighbor ids.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        match self {
            AdjList::Shared(graph, v) => graph.neighbors(*v),
            AdjList::Owned(list) => list,
        }
    }

    /// Number of neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Arc<Vec<VertexId>>> for AdjList {
    fn from(list: Arc<Vec<VertexId>>) -> Self {
        AdjList::Owned(list)
    }
}

impl From<Vec<VertexId>> for AdjList {
    fn from(list: Vec<VertexId>) -> Self {
        AdjList::Owned(Arc::new(list))
    }
}

/// Hash partitioning of vertices over machines plus access to adjacency
/// lists and edge queries.
///
/// The table serves the shared graph through a [`NeighborhoodIndex`]: hub
/// vertices answer [`PartitionedVertexTable::has_edge`] with an `O(1)` bitset
/// probe, everything else falls back to the CSR binary search. The index is
/// built once per graph — pass a prebuilt one
/// ([`PartitionedVertexTable::with_index`]) to share it across runs, the way
/// the session/service layer does for cached jobs.
#[derive(Clone)]
pub struct PartitionedVertexTable {
    index: Arc<NeighborhoodIndex>,
    num_machines: usize,
}

impl PartitionedVertexTable {
    /// Creates the table over `graph` partitioned across `num_machines`,
    /// building a fresh [`IndexSpec::Auto`] neighborhood index.
    pub fn new(graph: Arc<Graph>, num_machines: usize) -> Self {
        Self::with_index(
            Arc::new(NeighborhoodIndex::build(graph, IndexSpec::Auto)),
            num_machines,
        )
    }

    /// Creates the table around a prebuilt (shared) neighborhood index.
    pub fn with_index(index: Arc<NeighborhoodIndex>, num_machines: usize) -> Self {
        assert!(num_machines >= 1);
        PartitionedVertexTable {
            index,
            num_machines,
        }
    }

    /// The machine that owns vertex `v` (hash partitioning by id).
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        (v.raw() as usize) % self.num_machines
    }

    /// True if `(u, v)` is an edge, via the shared edge-query path of the
    /// neighborhood index (`O(1)` on hub vertices).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.index.has_edge(u, v)
    }

    /// True if `machine` owns `v`.
    #[inline]
    pub fn is_local(&self, machine: usize, v: VertexId) -> bool {
        self.owner(v) == machine
    }

    /// The vertices owned by `machine`, in increasing id order.
    pub fn owned_vertices(&self, machine: usize) -> Vec<VertexId> {
        self.index
            .graph()
            .vertices()
            .filter(|&v| self.owner(v) == machine)
            .collect()
    }

    /// The adjacency list Γ(v) (borrowed from the shared graph).
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> &[VertexId] {
        self.index.graph().neighbors(v)
    }

    /// The underlying shared graph.
    pub fn graph(&self) -> &Arc<Graph> {
        self.index.graph()
    }

    /// The neighborhood index the table serves edge queries through.
    pub fn index(&self) -> &Arc<NeighborhoodIndex> {
        &self.index
    }

    /// Number of machines in the partitioning.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }
}

impl Neighborhoods for PartitionedVertexTable {
    fn vertex_capacity(&self) -> usize {
        self.index.graph().num_vertices()
    }

    fn neighbor_count(&self, v: u32) -> usize {
        self.index.graph().degree(VertexId::new(v))
    }

    fn adjacent(&self, u: u32, v: u32) -> bool {
        self.has_edge(VertexId::new(u), VertexId::new(v))
    }

    fn for_each_neighbor(&self, v: u32, f: &mut dyn FnMut(u32)) {
        for &w in self.adjacency(VertexId::new(v)) {
            f(w.raw());
        }
    }
}

/// Counters describing remote fetches and cache behaviour.
#[derive(Debug, Default)]
pub struct FetchMetrics {
    /// Adjacency lists served from the machine's own partition.
    pub local_reads: AtomicU64,
    /// Adjacency lists fetched from another machine (cache miss).
    pub remote_fetches: AtomicU64,
    /// Bytes transferred for remote fetches (4 bytes per neighbor id).
    pub remote_bytes: AtomicU64,
    /// Remote requests served from the cache.
    pub cache_hits: AtomicU64,
    /// Cache evictions.
    pub cache_evictions: AtomicU64,
    /// Pull attempts that timed out and were retried.
    pub pull_retries: AtomicU64,
    /// Pulls abandoned after exhausting their retry budget.
    pub pull_failures: AtomicU64,
}

/// A bounded FIFO cache of remote adjacency lists (per machine).
#[derive(Debug)]
pub struct RemoteVertexCache {
    capacity: usize,
    map: HashMap<VertexId, Arc<Vec<VertexId>>>,
    order: VecDeque<VertexId>,
}

impl RemoteVertexCache {
    /// Creates a cache holding at most `capacity` adjacency lists.
    pub fn new(capacity: usize) -> Self {
        RemoteVertexCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a cached adjacency list.
    pub fn get(&self, v: VertexId) -> Option<Arc<Vec<VertexId>>> {
        self.map.get(&v).cloned()
    }

    /// Inserts an adjacency list, evicting the oldest entry if full. Returns
    /// the number of evictions performed (0 or 1).
    pub fn insert(&mut self, v: VertexId, adj: Arc<Vec<VertexId>>) -> u64 {
        if self.map.contains_key(&v) {
            return 0;
        }
        let mut evictions = 0;
        while self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                evictions += 1;
            } else {
                break;
            }
        }
        self.map.insert(v, adj);
        self.order.push_back(v);
        evictions
    }
}

/// Per-worker scratch counters for fetch accounting.
///
/// A task pulls thousands of adjacency lists; updating the machine-wide
/// atomic counters on every single fetch would make the shared cache line the
/// hottest memory location in the system and destroy thread scalability.
/// Workers therefore accumulate into this plain struct and flush once per
/// task ([`DataService::flush`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchScratch {
    /// Adjacency lists served from the machine's own partition.
    pub local_reads: u64,
    /// Adjacency lists fetched from another machine (cache miss).
    pub remote_fetches: u64,
    /// Bytes transferred for remote fetches.
    pub remote_bytes: u64,
    /// Remote requests served from the cache.
    pub cache_hits: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Pull attempts that timed out and were retried.
    pub pull_retries: u64,
    /// Pulls abandoned after exhausting their retry budget.
    pub pull_failures: u64,
}

/// Per-machine data access façade: local reads go straight to the partition,
/// remote reads go through the cache and then the [`Transport`], with
/// per-attempt timeouts and a bounded retry budget.
pub struct DataService {
    table: PartitionedVertexTable,
    machine: usize,
    cache: qcm_sync::Mutex<RemoteVertexCache>,
    metrics: Arc<FetchMetrics>,
    transport: Arc<dyn Transport>,
    pull_timeout: Duration,
    pull_retries: u32,
}

impl DataService {
    /// Creates the data service of one machine over `transport`.
    pub fn new(
        table: PartitionedVertexTable,
        machine: usize,
        cache_capacity: usize,
        metrics: Arc<FetchMetrics>,
        transport: Arc<dyn Transport>,
        pull_timeout: Duration,
        pull_retries: u32,
    ) -> Self {
        DataService {
            table,
            machine,
            cache: qcm_sync::Mutex::new(RemoteVertexCache::new(cache_capacity)),
            metrics,
            transport,
            pull_timeout,
            pull_retries,
        }
    }

    /// Pre-transport constructor: an implicit in-process transport with the
    /// given simulated latency.
    #[deprecated(
        since = "0.2.0",
        note = "build a transport via TransportFactory and use DataService::new instead"
    )]
    pub fn simulated(
        table: PartitionedVertexTable,
        machine: usize,
        cache_capacity: usize,
        metrics: Arc<FetchMetrics>,
        fetch_latency: Duration,
    ) -> Self {
        let transport = crate::transport::TransportFactory::in_proc()
            .with_fetch_latency(fetch_latency)
            .build(table.num_machines());
        transport.bind(&table);
        DataService::new(
            table,
            machine,
            cache_capacity,
            metrics,
            transport,
            Duration::from_millis(100),
            0,
        )
    }

    /// Fetches Γ(v), serving locally owned vertices by borrowing the shared
    /// partition (zero-copy) and remote vertices through the cache and the
    /// transport, accumulating traffic counters into `scratch` (flush them
    /// with [`DataService::flush`]).
    ///
    /// # Errors
    /// [`TransportError`] when a remote pull exhausts its retry budget — the
    /// engine abandons the task and labels the run
    /// [`qcm_core::RunOutcome::Faulted`].
    pub fn fetch_with(
        &self,
        v: VertexId,
        scratch: &mut FetchScratch,
    ) -> Result<AdjList, TransportError> {
        if self.table.is_local(self.machine, v) {
            scratch.local_reads += 1;
            // Requester and owner share this machine: borrow through the
            // in-proc fast path instead of cloning the adjacency.
            return Ok(AdjList::Shared(self.table.graph().clone(), v));
        }
        if let Some(hit) = self.cache.lock().get(v) {
            scratch.cache_hits += 1;
            return Ok(AdjList::Owned(hit));
        }
        let adj = if self.transport.shared_memory() {
            // Zero-copy transport: owners' partitions are readable in place.
            // The copy below *is* the simulated transfer into this machine's
            // address space, so remote traffic stays measurable.
            let latency = self.transport.fetch_latency();
            if !latency.is_zero() {
                qcm_sync::thread::sleep(latency);
            }
            Arc::new(self.table.adjacency(v).to_vec())
        } else {
            let mut attempt = 0u32;
            loop {
                match self.transport.pull(
                    self.machine,
                    self.table.owner(v),
                    &[v],
                    self.pull_timeout,
                ) {
                    Ok(mut reply) => match reply.pop() {
                        Some((rv, adj)) if rv == v => break adj,
                        _ => {
                            scratch.pull_failures += 1;
                            return Err(TransportError::Closed);
                        }
                    },
                    Err(TransportError::Timeout) if attempt < self.pull_retries => {
                        attempt += 1;
                        scratch.pull_retries += 1;
                    }
                    Err(err) => {
                        scratch.pull_failures += 1;
                        return Err(err);
                    }
                }
            }
        };
        scratch.remote_fetches += 1;
        scratch.remote_bytes += adj.len() as u64 * 4;
        scratch.cache_evictions += self.cache.lock().insert(v, adj.clone());
        Ok(AdjList::Owned(adj))
    }

    /// Convenience wrapper around [`DataService::fetch_with`] that flushes the
    /// counters immediately (used by tests and one-off fetches).
    pub fn fetch(&self, v: VertexId) -> Result<AdjList, TransportError> {
        let mut scratch = FetchScratch::default();
        let adj = self.fetch_with(v, &mut scratch);
        self.flush(&mut scratch);
        adj
    }

    /// Adds the accumulated scratch counters into the machine-wide metrics and
    /// resets the scratch.
    pub fn flush(&self, scratch: &mut FetchScratch) {
        // ordering: Relaxed (all counters below) — machine-wide fetch
        // statistics, batched from per-task scratch; read after workers join.
        if scratch.local_reads > 0 {
            self.metrics
                .local_reads
                .fetch_add(scratch.local_reads, Ordering::Relaxed);
        }
        if scratch.remote_fetches > 0 {
            self.metrics
                .remote_fetches
                .fetch_add(scratch.remote_fetches, Ordering::Relaxed);
        }
        if scratch.remote_bytes > 0 {
            self.metrics
                .remote_bytes
                .fetch_add(scratch.remote_bytes, Ordering::Relaxed);
        }
        if scratch.cache_hits > 0 {
            self.metrics
                .cache_hits
                .fetch_add(scratch.cache_hits, Ordering::Relaxed);
        }
        if scratch.cache_evictions > 0 {
            self.metrics
                .cache_evictions
                .fetch_add(scratch.cache_evictions, Ordering::Relaxed);
        }
        if scratch.pull_retries > 0 {
            self.metrics
                .pull_retries
                .fetch_add(scratch.pull_retries, Ordering::Relaxed);
        }
        if scratch.pull_failures > 0 {
            self.metrics
                .pull_failures
                .fetch_add(scratch.pull_failures, Ordering::Relaxed);
        }
        *scratch = FetchScratch::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_graph() -> Arc<Graph> {
        Arc::new(
            Graph::from_edges(8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]).unwrap(),
        )
    }

    #[test]
    fn partitioning_covers_all_vertices_once() {
        let table = PartitionedVertexTable::new(sample_graph(), 3);
        let mut all: Vec<VertexId> = (0..3).flat_map(|m| table.owned_vertices(m)).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 8);
        for v in table.graph().vertices() {
            assert!(table.is_local(table.owner(v), v));
        }
    }

    #[test]
    fn adjacency_matches_graph() {
        let g = sample_graph();
        let table = PartitionedVertexTable::new(g.clone(), 2);
        for v in g.vertices() {
            assert_eq!(table.adjacency(v), g.neighbors(v));
        }
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(table.has_edge(u, v), g.has_edge(u, v));
                assert_eq!(table.adjacent(u.raw(), v.raw()), g.has_edge(u, v));
            }
        }
        // A prebuilt index (e.g. the service layer's per-graph cache) is
        // adopted as-is.
        let shared = Arc::new(NeighborhoodIndex::build(g.clone(), IndexSpec::Threshold(0)));
        let table = PartitionedVertexTable::with_index(shared.clone(), 2);
        assert!(Arc::ptr_eq(table.index(), &shared));
        assert!(table.has_edge(VertexId::new(0), VertexId::new(1)));
    }

    #[test]
    fn cache_evicts_fifo() {
        let mut cache = RemoteVertexCache::new(2);
        assert!(cache.is_empty());
        cache.insert(VertexId::new(1), Arc::new(vec![]));
        cache.insert(VertexId::new(2), Arc::new(vec![]));
        assert_eq!(cache.len(), 2);
        let evicted = cache.insert(VertexId::new(3), Arc::new(vec![]));
        assert_eq!(evicted, 1);
        assert!(cache.get(VertexId::new(1)).is_none());
        assert!(cache.get(VertexId::new(3)).is_some());
        // Re-inserting an existing key is a no-op.
        assert_eq!(cache.insert(VertexId::new(3), Arc::new(vec![])), 0);
    }

    fn service_with(
        factory: crate::transport::TransportFactory,
        cache_capacity: usize,
        pull_retries: u32,
    ) -> (DataService, Arc<FetchMetrics>) {
        let table = PartitionedVertexTable::new(sample_graph(), 2);
        let metrics = Arc::new(FetchMetrics::default());
        let transport = factory.build(table.num_machines());
        transport.bind(&table);
        let service = DataService::new(
            table,
            0,
            cache_capacity,
            metrics.clone(),
            transport,
            Duration::from_millis(50),
            pull_retries,
        );
        (service, metrics)
    }

    #[test]
    fn data_service_counts_local_and_remote() {
        let (service, metrics) = service_with(crate::transport::TransportFactory::in_proc(), 10, 0);
        // Vertex 0 is owned by machine 0 (0 % 2), vertex 1 by machine 1.
        let local = service.fetch(VertexId::new(0)).unwrap();
        assert_eq!(local.len(), 1);
        assert!(
            matches!(local, AdjList::Shared(..)),
            "local fetches must borrow, not clone"
        );
        assert_eq!(metrics.local_reads.load(Ordering::Relaxed), 1);
        let remote = service.fetch(VertexId::new(1)).unwrap();
        assert_eq!(remote.len(), 2);
        assert_eq!(metrics.remote_fetches.load(Ordering::Relaxed), 1);
        assert!(metrics.remote_bytes.load(Ordering::Relaxed) > 0);
        // Second fetch of the same remote vertex hits the cache.
        let _ = service.fetch(VertexId::new(1)).unwrap();
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.remote_fetches.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn tiny_cache_records_evictions() {
        let (service, metrics) = service_with(crate::transport::TransportFactory::in_proc(), 1, 0);
        // Vertices 1, 3, 5 are remote to machine 0; cache holds one entry.
        let _ = service.fetch(VertexId::new(1)).unwrap();
        let _ = service.fetch(VertexId::new(3)).unwrap();
        let _ = service.fetch(VertexId::new(5)).unwrap();
        assert!(metrics.cache_evictions.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn strict_transport_serves_identical_lists() {
        let g = sample_graph();
        let (service, _) = service_with(crate::transport::TransportFactory::strict(), 10, 0);
        for v in g.vertices() {
            assert_eq!(service.fetch(v).unwrap().as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn dropped_pulls_retry_then_fail_when_budget_is_exhausted() {
        // Two armed drops, one retry: the first remote pull burns the retry
        // on drop #1, hits drop #2 and fails.
        let (service, metrics) = service_with(
            crate::transport::TransportFactory::strict().with_pull_drops(2),
            10,
            1,
        );
        let err = service.fetch(VertexId::new(1)).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
        assert_eq!(metrics.pull_retries.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.pull_failures.load(Ordering::Relaxed), 1);
        // The drops are spent; the next pull succeeds after the failure.
        assert!(service.fetch(VertexId::new(1)).is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_simulated_constructor_still_serves() {
        let table = PartitionedVertexTable::new(sample_graph(), 2);
        let metrics = Arc::new(FetchMetrics::default());
        let service = DataService::simulated(table, 0, 4, metrics.clone(), Duration::ZERO);
        assert_eq!(service.fetch(VertexId::new(0)).unwrap().len(), 1);
        assert_eq!(service.fetch(VertexId::new(1)).unwrap().len(), 2);
        assert_eq!(metrics.remote_fetches.load(Ordering::Relaxed), 1);
    }
}
