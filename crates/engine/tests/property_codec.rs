//! Property test for the unified [`EngineMsg`] wire format: every randomly
//! generated message must survive an encode/decode round trip bit-exactly,
//! and no prefix of a valid frame may decode to anything.

use proptest::prelude::*;
use qcm_engine::codec::EngineMsg;
use qcm_graph::VertexId;
use qcm_sync::Arc;

fn to_vertices(raw: Vec<u32>) -> Vec<VertexId> {
    raw.into_iter().map(VertexId::new).collect()
}

/// Strategy producing one random message of any variant. The variant tag and
/// a shared pool of random scalars/lists are drawn together, then shaped into
/// the chosen variant, so every arm sees varied payload sizes including
/// empty ones.
fn arb_msg() -> impl Strategy<Value = EngineMsg> {
    (
        0u32..8,
        0u64..u64::MAX,
        proptest::collection::vec(0u32..1_000_000, 0..40),
        proptest::collection::vec(
            (
                0u32..1_000_000,
                proptest::collection::vec(0u32..1_000_000, 0..12),
            ),
            0..8,
        ),
    )
        .prop_map(|(tag, n, raw, pairs)| match tag {
            0 => EngineMsg::PullRequest {
                token: n,
                vertices: to_vertices(raw),
            },
            1 => EngineMsg::PullResponse {
                token: n,
                lists: pairs
                    .into_iter()
                    .map(|(v, adj)| (VertexId::new(v), Arc::new(to_vertices(adj))))
                    .collect(),
            },
            2 => EngineMsg::StealRequest {
                seq: n,
                count: raw.len() as u32,
            },
            3 => EngineMsg::StealGrant {
                seq: n,
                tasks: pairs
                    .into_iter()
                    .map(|(v, adj)| {
                        let mut blob = v.to_le_bytes().to_vec();
                        for a in adj {
                            blob.extend(a.to_le_bytes());
                        }
                        blob
                    })
                    .collect(),
            },
            4 => EngineMsg::StealAck { seq: n },
            5 => EngineMsg::SpillNotice {
                machine: (n % 64) as u32,
                pending: n >> 8,
            },
            6 => EngineMsg::RefillNotice {
                machine: (n % 64) as u32,
                restored: raw.len() as u32,
            },
            _ => EngineMsg::Shutdown,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn engine_msg_roundtrips_bit_exactly(msg in arb_msg()) {
        let wire = msg.to_wire();
        let mut slice = wire.as_slice();
        let decoded = EngineMsg::decode(&mut slice);
        prop_assert_eq!(decoded.as_ref(), Some(&msg));
        prop_assert!(slice.is_empty(), "{} left {} trailing bytes", msg.kind(), slice.len());
    }

    #[test]
    fn truncated_frames_never_decode(msg in arb_msg(), cut_seed in 0usize..1024) {
        let wire = msg.to_wire();
        // Any strict prefix must be rejected, not mis-decoded.
        let cut = cut_seed % wire.len();
        let mut slice = &wire[..cut];
        prop_assert_eq!(EngineMsg::decode(&mut slice), None, "cut at {}", cut);
    }

    #[test]
    fn back_to_back_frames_decode_in_order(a in arb_msg(), b in arb_msg()) {
        let mut wire = a.to_wire();
        b.encode(&mut wire);
        let mut slice = wire.as_slice();
        prop_assert_eq!(EngineMsg::decode(&mut slice), Some(a));
        prop_assert_eq!(EngineMsg::decode(&mut slice), Some(b));
        prop_assert!(slice.is_empty());
    }
}
