//! Disk-backed `SpillStore` behaviour: spill → refill ordering and
//! `SpillMetrics` accounting, cross-checked against the memory-backed mode
//! (the two modes must be observationally identical apart from where the
//! bytes live).

use qcm_engine::codec;
use qcm_engine::spill::{SpillMetrics, SpillStore};
use qcm_engine::TaskCodec;
use qcm_sync::atomic::Ordering;
use qcm_sync::Arc;
use std::path::PathBuf;

#[derive(Clone, Debug, PartialEq)]
struct FakeTask {
    id: u32,
    members: Vec<u32>,
}

impl TaskCodec for FakeTask {
    fn encode(&self, buf: &mut Vec<u8>) {
        codec::put_u32(buf, self.id);
        codec::put_u32_slice(buf, &self.members);
    }

    fn decode(data: &mut &[u8]) -> Option<Self> {
        let id = codec::take_u32(data)?;
        let members = codec::take_u32_vec(data)?;
        Some(FakeTask { id, members })
    }
}

fn batch(base: u32, len: u32) -> Vec<FakeTask> {
    (0..len)
        .map(|i| FakeTask {
            id: base + i,
            members: (base..base + 3 + i % 4).collect(),
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qcm_spill_it_{tag}_{}", std::process::id()))
}

#[test]
fn disk_refill_preserves_fifo_order_and_content() {
    let dir = temp_dir("fifo");
    let metrics = Arc::new(SpillMetrics::default());
    let mut store = SpillStore::new(Some(dir.clone()), "w0", metrics);
    let batches: Vec<Vec<FakeTask>> = (0..5).map(|i| batch(i * 100, 7 + i)).collect();
    for b in &batches {
        store.spill(b);
    }
    assert_eq!(store.len(), 5);
    assert_eq!(
        store.pending_tasks(),
        batches.iter().map(Vec::len).sum::<usize>()
    );
    // Refill returns the *oldest* batch first (G-thinker keeps the volume of
    // partially processed tasks small by draining in spill order), with every
    // task byte-identical after the disk round trip.
    for expected in &batches {
        let got: Vec<FakeTask> = store.refill().expect("batch pending");
        assert_eq!(&got, expected);
    }
    assert!(store.refill::<FakeTask>().is_none());
    assert!(store.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_metrics_match_memory_metrics_for_identical_workload() {
    let dir = temp_dir("metrics");
    let disk_metrics = Arc::new(SpillMetrics::default());
    let mem_metrics = Arc::new(SpillMetrics::default());
    let mut disk = SpillStore::new(Some(dir.clone()), "disk", disk_metrics.clone());
    let mut mem = SpillStore::new(None, "mem", mem_metrics.clone());

    for i in 0..4 {
        let b = batch(i * 50, 10);
        disk.spill(&b);
        mem.spill(&b);
    }
    // Drain two batches, spill one more, drain the rest: interleaving
    // exercises the resident-bytes bookkeeping, not just monotone growth.
    for _ in 0..2 {
        let d: Vec<FakeTask> = disk.refill().unwrap();
        let m: Vec<FakeTask> = mem.refill().unwrap();
        assert_eq!(d, m);
    }
    let extra = batch(900, 3);
    disk.spill(&extra);
    mem.spill(&extra);
    while let Some(d) = disk.refill::<FakeTask>() {
        let m: Vec<FakeTask> = mem.refill().unwrap();
        assert_eq!(d, m);
    }
    assert!(mem.refill::<FakeTask>().is_none());

    // The accounting is defined over encoded bytes, so both backends must
    // agree exactly on every counter.
    for (name, disk_v, mem_v) in [
        (
            "bytes_written",
            disk_metrics.bytes_written.load(Ordering::Relaxed),
            mem_metrics.bytes_written.load(Ordering::Relaxed),
        ),
        (
            "bytes_read",
            disk_metrics.bytes_read.load(Ordering::Relaxed),
            mem_metrics.bytes_read.load(Ordering::Relaxed),
        ),
        (
            "batches_written",
            disk_metrics.batches_written.load(Ordering::Relaxed),
            mem_metrics.batches_written.load(Ordering::Relaxed),
        ),
        (
            "peak_bytes",
            disk_metrics.peak_bytes.load(Ordering::Relaxed),
            mem_metrics.peak_bytes.load(Ordering::Relaxed),
        ),
    ] {
        assert_eq!(disk_v, mem_v, "{name} diverged between disk and memory");
        assert!(disk_v > 0, "{name} must be non-zero after the workload");
    }
    // Everything spilled was read back.
    assert_eq!(
        disk_metrics.bytes_written.load(Ordering::Relaxed),
        disk_metrics.bytes_read.load(Ordering::Relaxed)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_peak_bytes_is_a_high_watermark_under_interleaving() {
    let dir = temp_dir("peak");
    let metrics = Arc::new(SpillMetrics::default());
    let mut store = SpillStore::new(Some(dir.clone()), "peak", metrics.clone());
    store.spill(&batch(0, 20));
    store.spill(&batch(100, 20));
    let peak = metrics.peak_bytes.load(Ordering::Relaxed);
    let written = metrics.bytes_written.load(Ordering::Relaxed);
    assert_eq!(peak, written, "peak equals total while nothing is drained");
    // Drain one, spill a small batch: residency drops below the old peak, so
    // the watermark must not move.
    let _: Vec<FakeTask> = store.refill().unwrap();
    store.spill(&batch(200, 2));
    assert_eq!(metrics.peak_bytes.load(Ordering::Relaxed), peak);
    let _ = std::fs::remove_dir_all(&dir);
}
