//! Engine integration tests with a synthetic application.
//!
//! The app used here ("neighborhood summer") is deliberately trivial so the
//! tests isolate the *engine's* behaviour: spawning, the big/small task
//! routing, pull resolution through the vertex table and cache, recursive
//! task decomposition, disk spilling under tiny queue capacities, multi-machine
//! stealing, and clean termination. The quasi-clique application is tested
//! separately in `qcm-parallel` and the cross-crate suites.

use qcm_engine::codec::{put_u32, put_vertices, take_u32, take_vertices};
use qcm_engine::{
    Cluster, ComputeContext, EngineConfig, Frontier, GThinkerApp, TaskCodec, TaskLabel,
};
use qcm_graph::{Graph, VertexId};
use qcm_sync::Arc;
use std::time::Duration;

/// A task that, spawned from vertex `v`, pulls Γ(v), emits one "result" row
/// `[v, |Γ(v)| as id]`, and for hub vertices decomposes into one child task
/// per neighbor (children emit `[v, u]` rows).
#[derive(Clone, Debug, PartialEq)]
struct SumTask {
    root: VertexId,
    /// Vertices still to pull (empty after the first compute call).
    pulls: Vec<VertexId>,
    /// Children decompose from these.
    fanout: Vec<VertexId>,
    /// 0 = root iteration pending, 1 = child task.
    phase: u32,
}

impl TaskCodec for SumTask {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.root.raw());
        put_vertices(buf, &self.pulls);
        put_vertices(buf, &self.fanout);
        put_u32(buf, self.phase);
    }
    fn decode(data: &mut &[u8]) -> Option<Self> {
        Some(SumTask {
            root: VertexId::new(take_u32(data)?),
            pulls: take_vertices(data)?,
            fanout: take_vertices(data)?,
            phase: take_u32(data)?,
        })
    }
}

/// The synthetic application. `hub_threshold` controls which tasks decompose
/// (and count as "big").
struct SummerApp {
    hub_threshold: usize,
}

impl GThinkerApp for SummerApp {
    type Task = SumTask;

    fn spawn(&self, v: VertexId, adj: &[VertexId], ctx: &mut ComputeContext<Self::Task>) {
        ctx.add_task(SumTask {
            root: v,
            pulls: adj.to_vec(),
            fanout: Vec::new(),
            phase: 0,
        });
    }

    fn pending_pulls<'t>(&self, task: &'t Self::Task) -> &'t [VertexId] {
        &task.pulls
    }

    fn compute(
        &self,
        task: &mut Self::Task,
        frontier: &Frontier,
        ctx: &mut ComputeContext<Self::Task>,
    ) -> bool {
        if task.phase == 0 {
            // Root iteration: every pulled vertex must be present.
            assert_eq!(frontier.len(), task.pulls.len());
            for v in &task.pulls {
                assert!(frontier.get(*v).is_some(), "missing pulled vertex {v}");
            }
            ctx.emit(vec![task.root, VertexId::new(task.pulls.len() as u32)]);
            if task.pulls.len() >= self.hub_threshold {
                for &u in &task.pulls {
                    ctx.add_task(SumTask {
                        root: task.root,
                        pulls: Vec::new(),
                        fanout: vec![u],
                        phase: 1,
                    });
                }
            }
            task.pulls.clear();
            false
        } else {
            ctx.emit(vec![task.root, task.fanout[0]]);
            false
        }
    }

    fn is_big(&self, task: &Self::Task) -> bool {
        task.phase == 0 && task.pulls.len() >= self.hub_threshold
    }

    fn task_memory_bytes(&self, task: &Self::Task) -> usize {
        32 + 4 * (task.pulls.len() + task.fanout.len())
    }

    fn task_label(&self, task: &Self::Task) -> TaskLabel {
        TaskLabel {
            root: Some(task.root),
            subgraph_size: task.pulls.len().max(task.fanout.len()),
        }
    }
}

/// A star graph: vertex 0 is a hub adjacent to all others, plus a sparse ring.
fn star_with_ring(n: usize) -> Arc<Graph> {
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    for i in 1..n as u32 {
        let j = if i + 1 < n as u32 { i + 1 } else { 1 };
        edges.push((i, j));
    }
    Arc::new(Graph::from_edges(n, edges).unwrap())
}

fn expected_rows(g: &Graph, hub_threshold: usize) -> usize {
    // One row per vertex plus one per neighbor of every hub vertex.
    g.vertices()
        .map(|v| {
            let d = g.degree(v);
            1 + if d >= hub_threshold { d } else { 0 }
        })
        .sum()
}

#[test]
fn single_machine_processes_every_vertex() {
    let g = star_with_ring(64);
    let app = Arc::new(SummerApp { hub_threshold: 16 });
    let cluster = Cluster::new(app, EngineConfig::single_machine(4));
    let out = cluster.run(g.clone());
    assert_eq!(out.results.len(), expected_rows(&g, 16));
    assert_eq!(out.metrics.tasks_spawned, 64);
    assert_eq!(
        out.metrics.tasks_processed,
        64 + g.degree(VertexId::new(0)) as u64
    );
    assert_eq!(
        out.metrics.tasks_decomposed,
        g.degree(VertexId::new(0)) as u64
    );
    assert!(out.metrics.peak_task_bytes > 0);
    assert!(out.metrics.worker_busy.len() == 4);
}

#[test]
fn results_are_identical_across_thread_counts() {
    let g = star_with_ring(80);
    let mut reference: Option<Vec<Vec<VertexId>>> = None;
    for threads in [1, 2, 8] {
        let app = Arc::new(SummerApp { hub_threshold: 10 });
        let cluster = Cluster::new(app, EngineConfig::single_machine(threads));
        let mut rows = cluster.run(g.clone()).results;
        rows.sort();
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(&rows, r, "thread count {threads} changed the results"),
        }
    }
}

#[test]
fn multi_machine_run_steals_and_matches_single_machine() {
    let g = star_with_ring(200);
    let single = {
        let app = Arc::new(SummerApp { hub_threshold: 8 });
        let mut rows = Cluster::new(app, EngineConfig::single_machine(2))
            .run(g.clone())
            .results;
        rows.sort();
        rows
    };
    let app = Arc::new(SummerApp { hub_threshold: 8 });
    let mut config = EngineConfig::cluster(4, 2);
    config.balance_period = Duration::from_millis(1);
    let out = Cluster::new(app, config).run(g.clone());
    let mut rows = out.results;
    rows.sort();
    assert_eq!(rows, single);
    // With 4 machines, remote vertices must have been fetched.
    assert!(out.metrics.remote_fetches + out.metrics.cache_hits > 0);
}

#[test]
fn tiny_queues_force_spilling_without_losing_tasks() {
    let g = star_with_ring(300);
    let app = Arc::new(SummerApp { hub_threshold: 4 });
    let mut config = EngineConfig::single_machine(2);
    config.batch_size = 2;
    config.local_capacity = 2;
    config.global_queue_capacity = 2;
    config.spill_dir =
        Some(std::env::temp_dir().join(format!("qcm_engine_spill_test_{}", std::process::id())));
    let out = Cluster::new(app, config.clone()).run(g.clone());
    assert_eq!(out.results.len(), expected_rows(&g, 4));
    assert!(
        out.metrics.spill_bytes_written > 0,
        "tiny queues must trigger spilling"
    );
    assert_eq!(
        out.metrics.spill_bytes_written, out.metrics.spill_bytes_read,
        "every spilled byte must be read back"
    );
    if let Some(dir) = &config.spill_dir {
        // All spill files cleaned up after the run.
        let leftover = std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn tiny_vertex_cache_still_produces_correct_results() {
    let g = star_with_ring(150);
    let app = Arc::new(SummerApp { hub_threshold: 6 });
    let mut config = EngineConfig::cluster(3, 2);
    config.vertex_cache_capacity = 1;
    config.balance_period = Duration::from_millis(1);
    let out = Cluster::new(app, config).run(g.clone());
    assert_eq!(out.results.len(), expected_rows(&g, 6));
    assert!(out.metrics.cache_evictions > 0 || out.metrics.remote_fetches > 0);
}

#[test]
fn empty_graph_terminates_immediately() {
    let g = Arc::new(Graph::empty(0));
    let app = Arc::new(SummerApp { hub_threshold: 4 });
    let out = Cluster::new(app, EngineConfig::single_machine(3)).run(g);
    assert!(out.results.is_empty());
    assert_eq!(out.metrics.tasks_processed, 0);
}

#[test]
fn per_task_time_log_covers_all_tasks() {
    let g = star_with_ring(50);
    let app = Arc::new(SummerApp { hub_threshold: 10 });
    let out = Cluster::new(app, EngineConfig::single_machine(2)).run(g.clone());
    assert_eq!(
        out.metrics.task_times.len() as u64,
        out.metrics.tasks_processed
    );
    // Every record carries a root label and the per-root aggregation includes
    // the hub.
    let roots = out.metrics.per_root_totals();
    assert!(roots.iter().any(|(v, _, _)| *v == VertexId::new(0)));
    let top = out.metrics.top_k_task_times(5);
    assert!(top.len() <= 5);
}

#[test]
fn cancelled_run_drains_workers_and_labels_the_metrics() {
    use qcm_core::{CancelToken, RunOutcome};

    let g = star_with_ring(50);
    let app = Arc::new(SummerApp { hub_threshold: 10 });
    let token = CancelToken::new();
    token.cancel();
    let config = EngineConfig::single_machine(3).with_cancel(token);
    let out = Cluster::new(app.clone(), config).run(g.clone());
    assert_eq!(out.metrics.outcome, RunOutcome::Cancelled);
    assert!(out.results.len() <= expected_rows(&g, 10));

    // A zero deadline is labelled DeadlineExceeded; an unfired token completes.
    let token = CancelToken::never().with_deadline(Some(Duration::ZERO));
    let config = EngineConfig::single_machine(3).with_cancel(token);
    let out = Cluster::new(app.clone(), config).run(g.clone());
    assert_eq!(out.metrics.outcome, RunOutcome::DeadlineExceeded);

    let out = Cluster::new(app, EngineConfig::single_machine(3)).run(g.clone());
    assert_eq!(out.metrics.outcome, RunOutcome::Complete);
    assert_eq!(out.results.len(), expected_rows(&g, 10));
}
