//! Model-checked schedules of the work-stealing protocol and spill store.
//!
//! Run with `cargo test -p qcm-engine --features model-check --test
//! model_steal`. Each scenario explores at least 1 000 seeded schedules;
//! a failure prints the seed and decision trace, and re-running with
//! `QCM_MC_SEED=<seed>` reproduces it exactly.

#![cfg(feature = "model-check")]

use qcm_engine::spill::{SpillMetrics, SpillStore};
use qcm_engine::steal::WorkerQueues;
use qcm_engine::task::TaskCodec;
use qcm_sync::model::{explore, explore_seeds, extra_seeds, ModelConfig};
use qcm_sync::{thread, Arc, Mutex};

const SCHEDULES: usize = 1_000;

/// Explores the fixed-seed window plus any `QCM_MC_EXTRA_SEED` seeds
/// (CI adds one fresh random seed per run, logged for replay).
fn run(name: &str, f: impl Fn() + Sync) {
    explore(name, SCHEDULES, ModelConfig::default(), &f);
    let extra = extra_seeds();
    if !extra.is_empty() {
        explore_seeds(name, &extra, ModelConfig::default(), &f);
    }
}

/// The core steal-protocol safety property: across any interleaving of a
/// popping owner and a stealing thief, every pushed task is consumed or
/// still enqueued exactly once — nothing lost, nothing duplicated.
#[test]
fn steal_loses_and_duplicates_nothing() {
    run("steal_loses_and_duplicates_nothing", || {
        let queues: Arc<WorkerQueues<u32>> = Arc::new(WorkerQueues::new(2, 8, 2));
        let taken: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for task in 0..4 {
            queues.push_local(0, task).expect("below capacity");
        }

        let owner = {
            let (queues, taken) = (queues.clone(), taken.clone());
            thread::spawn(move || {
                for _ in 0..4 {
                    if let Some(t) = queues.pop_local(0) {
                        taken.lock().push(t);
                    }
                }
            })
        };
        let thief = {
            let (queues, taken) = (queues.clone(), taken.clone());
            thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(t) = queues.steal_into(1, 0..2) {
                        taken.lock().push(t);
                    }
                }
                // Batch remainders land in the thief's own deque.
                while let Some(t) = queues.pop_local(1) {
                    taken.lock().push(t);
                }
            })
        };
        owner.join().unwrap();
        thief.join().unwrap();

        let mut seen = taken.lock().clone();
        // Anything still enqueued also counts as "not lost".
        while let Some(t) = queues.pop_local(0) {
            seen.push(t);
        }
        while let Some(t) = queues.pop_local(1) {
            seen.push(t);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "task lost or duplicated");
    });
}

/// A racing owner must never let an oversized steal batch push the
/// thief's bounded deque past its capacity.
#[test]
fn steal_never_overflows_the_thief_bound() {
    run("steal_never_overflows_the_thief_bound", || {
        let queues: Arc<WorkerQueues<u32>> = Arc::new(WorkerQueues::new(2, 2, 8));
        queues.push_local(1, 100).expect("below capacity");
        for task in 0..2 {
            queues.push_local(0, task).expect("below capacity");
        }

        let owner = {
            let queues = queues.clone();
            thread::spawn(move || {
                let _ = queues.pop_local(0);
            })
        };
        let thief = {
            let queues = queues.clone();
            thread::spawn(move || {
                let _ = queues.steal_into(1, 0..1);
            })
        };
        owner.join().unwrap();
        thief.join().unwrap();

        let mut thief_len = 0;
        while queues.pop_local(1).is_some() {
            thief_len += 1;
        }
        assert!(
            thief_len <= 2,
            "thief deque exceeded its bound: {thief_len} tasks"
        );
    });
}

#[derive(Clone, Debug, PartialEq)]
struct Tagged(u32);

impl TaskCodec for Tagged {
    fn encode(&self, buf: &mut Vec<u8>) {
        qcm_engine::codec::put_u32(buf, self.0);
    }
    fn decode(data: &mut &[u8]) -> Option<Self> {
        qcm_engine::codec::take_u32(data).map(Tagged)
    }
}

/// Spill FIFO ordering: whatever order concurrent spillers serialise
/// into, refills replay exactly that batch order (oldest first), and no
/// batch is lost or duplicated.
#[test]
fn spill_refill_is_fifo_under_concurrent_spillers() {
    run("spill_refill_is_fifo_under_concurrent_spillers", || {
        let metrics = Arc::new(SpillMetrics::default());
        let store = Arc::new(Mutex::new(SpillStore::new(None, "mc", metrics)));
        // Order in which batches entered the store, recorded inside the
        // same critical section as the spill itself.
        let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));

        let spillers: Vec<_> = [0u32, 1]
            .into_iter()
            .map(|who| {
                let (store, order) = (store.clone(), order.clone());
                thread::spawn(move || {
                    for seq in 0..2u32 {
                        let tag = who * 10 + seq;
                        let mut store = store.lock();
                        store.spill(&[Tagged(tag), Tagged(tag + 100)]);
                        order.lock().push(tag);
                    }
                })
            })
            .collect();
        for s in spillers {
            s.join().unwrap();
        }

        let expected = order.lock().clone();
        let mut store = store.lock();
        assert_eq!(store.len(), expected.len());
        for want in expected {
            let batch: Vec<Tagged> = store.refill().expect("batch present");
            assert_eq!(
                batch,
                vec![Tagged(want), Tagged(want + 100)],
                "refill order diverged from spill order"
            );
        }
        assert!(store.refill::<Tagged>().is_none());
    });
}

/// The overflow path end to end: a bounded deque rejects the excess
/// task, the owner spills it, and a refill recovers it — no interleaving
/// of a concurrent thief may lose the task.
#[test]
fn overflow_spills_and_refills_without_loss() {
    run("overflow_spills_and_refills_without_loss", || {
        let queues: Arc<WorkerQueues<u32>> = Arc::new(WorkerQueues::new(2, 2, 1));
        let metrics = Arc::new(SpillMetrics::default());
        let store = Arc::new(Mutex::new(SpillStore::new(None, "ovf", metrics)));

        let owner = {
            let (queues, store) = (queues.clone(), store.clone());
            thread::spawn(move || {
                for task in 0..4u32 {
                    if let Err(overflow) = queues.push_local(0, task) {
                        store.lock().spill(&[Tagged(overflow)]);
                    }
                }
            })
        };
        let thief = {
            let queues = queues.clone();
            thread::spawn(move || queues.steal_into(1, 0..1))
        };
        owner.join().unwrap();
        let stolen = thief.join().unwrap();

        let mut seen: Vec<u32> = stolen.into_iter().collect();
        while let Some(t) = queues.pop_local(0) {
            seen.push(t);
        }
        while let Some(t) = queues.pop_local(1) {
            seen.push(t);
        }
        let mut store = store.lock();
        while let Some(batch) = store.refill::<Tagged>() {
            seen.extend(batch.into_iter().map(|t| t.0));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "overflow path lost a task");
    });
}
