//! `load_gen` — closed-loop HTTP load generator for a running `qcm serve
//! --listen` instance.
//!
//! ```text
//! load_gen --addr 127.0.0.1:8080 --graph /tmp/tiny.txt
//!          [--clients 8] [--requests 8] [--gamma 0.8] [--min-size 6]
//!          [--wait-ms 2000]
//! ```
//!
//! Each client submits a job, long-polls it to a terminal state, and
//! immediately submits again. `429` responses count as shed load (the
//! overload SLO), everything else but `202`/`200` as an error. The report —
//! the same JSON object as the suite's `serve_overload` BENCH row — goes to
//! stdout.

use qcm_bench::loadgen::{self, LoadGenConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = LoadGenConfig::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            return usage(&format!("{flag} needs a value"));
        };
        match flag {
            "--addr" => config.addr = value.clone(),
            "--graph" => config.graph_path = value.clone(),
            "--clients" => match value.parse() {
                Ok(n) if n >= 1 => config.clients = n,
                _ => return usage("--clients needs a positive integer"),
            },
            "--requests" => match value.parse() {
                Ok(n) if n >= 1 => config.requests_per_client = n,
                _ => return usage("--requests needs a positive integer"),
            },
            "--gamma" => match value.parse() {
                Ok(g) => config.gamma = g,
                Err(_) => return usage("--gamma needs a number"),
            },
            "--min-size" => match value.parse() {
                Ok(n) => config.min_size = n,
                Err(_) => return usage("--min-size needs an integer"),
            },
            "--wait-ms" => match value.parse() {
                Ok(ms) => config.wait_ms = ms,
                Err(_) => return usage("--wait-ms needs an integer"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if config.addr.is_empty() || config.graph_path.is_empty() {
        return usage("--addr and --graph are required");
    }

    eprintln!(
        "load_gen: {} clients x {} requests against http://{} ({})",
        config.clients, config.requests_per_client, config.addr, config.graph_path
    );
    let report = loadgen::run(&config);
    println!("{}", report.to_json().render());
    eprintln!(
        "load_gen: {}/{} completed, {} shed ({:.0}%), {} errors, p50 {:.1} ms, p99 {:.1} ms",
        report.completed,
        report.total,
        report.shed,
        report.shed_rate * 100.0,
        report.errors,
        report.p50_ms,
        report.p99_ms
    );
    if report.errors > 0 || report.shed_without_retry_after > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("load_gen: {error}");
    }
    eprintln!(
        "usage: load_gen --addr HOST:PORT --graph FILE [--clients N] [--requests N] \
         [--gamma F] [--min-size N] [--wait-ms N]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
