//! Hard-core calibration tool.
//!
//! The stand-in datasets embed a "hard core" — a moderately dense random block
//! that survives k-core pruning and generates the paper's long-running tasks
//! (Figures 1–3). This tool measures how expensive a `G(size, p)` block is to
//! mine at a given (γ, τ_size) so the dataset specs can be tuned to produce a
//! pronounced but bounded tail:
//!
//! ```text
//! cargo run --release -p qcm-bench --bin calibrate -- [gamma] [min_size]
//! ```

use qcm_core::{MiningParams, SerialMiner};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `calibrate dataset <name>` profiles the top root tasks of one stand-in.
    if args.first().map(String::as_str) == Some("dataset") {
        let name = args.get(1).cloned().unwrap_or_else(|| "Enron".to_string());
        profile_dataset(&name);
        return;
    }
    let gamma: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let min_size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let params = MiningParams::new(gamma, min_size);
    println!("hard-core cost at gamma={gamma}, min_size={min_size} (serial miner):");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>10}",
        "size", "p", "time (s)", "nodes", "results"
    );
    for &size in &[25usize, 30, 35, 40, 45] {
        for &p in &[0.45f64, 0.5, 0.55, 0.6, 0.65] {
            let graph = qcm_gen::gnp(size, p, (size as u64) * 1000 + (p * 100.0) as u64);
            let start = Instant::now();
            let out = SerialMiner::new(params).mine(&graph);
            let elapsed = start.elapsed();
            println!(
                "{:>6} {:>6.2} {:>12.3} {:>12} {:>10}",
                size,
                p,
                elapsed.as_secs_f64(),
                out.stats.nodes_expanded,
                out.maximal.len()
            );
            if elapsed.as_secs_f64() > 30.0 {
                println!("       (skipping denser settings for this size)");
                break;
            }
        }
    }
}

/// Prints the most expensive root tasks of one stand-in dataset: the data
/// behind Figures 1–3 and the knob for tuning the hard-core parameters.
fn profile_dataset(name: &str) {
    let spec = qcm_gen::datasets::all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown dataset {name}"));
    let run = qcm_bench::run_dataset(&spec, &qcm_bench::RunOptions::default());
    println!(
        "{}: job {:?}, {} tasks ({} decomposed), mining {:?}, materialization {:?}",
        spec.name,
        run.elapsed,
        run.metrics.tasks_processed,
        run.metrics.tasks_decomposed,
        run.metrics.total_mining_time,
        run.metrics.total_materialization_time
    );
    println!("top root tasks by total time:");
    for (root, time, size) in run.metrics.per_root_totals().into_iter().take(10) {
        println!("  root {root:>8}  total {time:>12?}  max subgraph |V| {size}");
    }
    println!("top individual task records:");
    for rec in run.metrics.top_k_task_times(10) {
        println!(
            "  root {:?}  elapsed {:>12?}  subgraph |V| {:>6}  mining {:?} materialization {:?}",
            rec.root,
            rec.elapsed,
            rec.subgraph_size,
            rec.timings.mining,
            rec.timings.materialization
        );
    }
}
