//! `bench_suite` — runs the paper-table workloads along each one's variant
//! axis (index off/on, scratch arena fresh/pooled, work stealing off/on),
//! plus the `serve_overload` HTTP-service SLO row, and emits the
//! machine-readable `BENCH_<pr>.json` perf artefact (see BENCH.md for the
//! schema).
//!
//! ```text
//! bench_suite [--output BENCH_9.json] [--quick] [--iters N] [--pr N]
//! ```
//!
//! The default (full) mode runs the scaled stand-in datasets in a few
//! seconds and is what CI's `perf-smoke` job runs (matching the full-mode
//! `bench/baseline.json` it gates against with `bench_gate`); `--quick`
//! switches to the tiny datasets for a fast local smoke run.

use qcm_bench::suite::SuiteReport;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut output = String::from("BENCH_9.json");
    let mut quick = false;
    let mut iters = 3usize;
    let mut pr = 9u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--output" => {
                i += 1;
                match args.get(i) {
                    Some(path) => output = path.clone(),
                    None => return usage("--output needs a path"),
                }
            }
            "--iters" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) if n >= 1 => iters = n,
                    _ => return usage("--iters needs a positive integer"),
                }
            }
            "--pr" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => pr = n,
                    None => return usage("--pr needs an integer"),
                }
            }
            "--quick" => quick = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    eprintln!(
        "bench_suite: running {} workloads ({} mode, {iters} iters per variant)…",
        qcm_bench::suite::workloads(quick).len(),
        if quick { "quick" } else { "full" },
    );
    let report = SuiteReport::run(pr, quick, iters);
    for w in &report.workloads {
        eprintln!(
            "  {:<22} [{:<7}] {:>9.1} ms optimised | {:>9.1} ms baseline | speedup {:>5.2}x | \
             {} edge queries ({} bitset hits), {} intersections, {} allocs avoided \
             ({} fresh), {} steals ({} misses), {} results",
            w.name,
            w.variant,
            w.wall_ms,
            w.baseline_wall_ms,
            w.speedup,
            w.edge_queries,
            w.bitset_hits,
            w.intersections,
            w.allocations_avoided,
            w.scratch_fresh_allocs,
            w.steals,
            w.steal_failures,
            w.maximal_results
        );
    }
    if let Some(row) = &report.serve_overload {
        let r = &row.report;
        eprintln!(
            "  {:<22} [{:<7}] {} clients vs {}+{} capacity | {}/{} completed, {} shed \
             ({:.0}%), {} errors | p50 {:.1} ms p99 {:.1} ms",
            "serve_overload",
            "slo",
            r.clients,
            row.workers,
            row.max_queued,
            r.completed,
            r.total,
            r.shed,
            r.shed_rate * 100.0,
            r.errors,
            r.p50_ms,
            r.p99_ms
        );
    }
    let json = report.to_json().render();
    if let Err(e) = std::fs::write(&output, format!("{json}\n")) {
        eprintln!("bench_suite: cannot write {output}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "bench_suite: wrote {output} (calibration {:.1} ms, peak RSS {} MiB)",
        report.calibration_ms,
        report.peak_rss_bytes / (1024 * 1024)
    );
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("bench_suite: {error}");
    }
    eprintln!("usage: bench_suite [--output FILE] [--quick] [--iters N] [--pr N]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
