//! `bench_gate` — the CI perf regression gate over `BENCH_*.json` artefacts.
//!
//! ```text
//! bench_gate --current BENCH_5.json --baseline bench/baseline.json [--max-regress 0.25]
//! ```
//!
//! For every workload present in both files:
//!
//! * **wall time** — the current wall time is normalised by the machines'
//!   calibration ratio (`calibration_ms` measures a fixed hashing loop), then
//!   must not exceed the baseline by more than `--max-regress` (default 25%).
//! * **counters** — for `deterministic` workloads, `edge_queries`,
//!   `intersections` and `allocations_avoided` are reproducible across
//!   machines and must not exceed the baseline by more than `--max-regress`
//!   (an algorithmic regression, not noise). A row missing a counter (older
//!   baseline schema) skips that check.
//! * **speedup** — for `tracked` workloads, the indexed-vs-baseline speedup
//!   (a within-machine ratio, immune to machine speed) must not fall below
//!   `baseline_speedup · (1 − max_regress)`.
//!
//! When the baseline carries a `serve_overload` row (the HTTP service under
//! 2× closed-loop overload), the current report must too, and it is gated
//! on the overload SLO: normalised `p99_ms` within a doubled tolerance of
//! the baseline (socket latency is noisier than mining wall time, with a
//! 5 ms absolute floor), a positive `shed_rate` within ±0.35 of the
//! baseline's (the service must shed, not queue unboundedly), zero
//! `errors`, and zero `shed_without_retry_after`.
//!
//! Exit code 0 when every check passes, 1 on any regression, 2 on bad input.

use qcm_bench::json::Json;
use std::process::ExitCode;

struct Check {
    workload: String,
    what: String,
    current: f64,
    limit: f64,
    ok: bool,
}

fn main() -> ExitCode {
    let mut current_path = None;
    let mut baseline_path = None;
    let mut max_regress = 0.25f64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--current" => {
                i += 1;
                current_path = args.get(i).cloned();
            }
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned();
            }
            "--max-regress" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(x) if (0.0..10.0).contains(&x) => max_regress = x,
                    _ => return usage("--max-regress needs a fraction like 0.25"),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let (Some(current_path), Some(baseline_path)) = (current_path, baseline_path) else {
        return usage("--current and --baseline are required");
    };

    let current = match load(&current_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_gate: {current_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load(&baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };

    // Comparing a quick-mode run against a full-mode baseline (or vice
    // versa) is meaningless: the datasets differ by an order of magnitude,
    // so every check would be vacuously green (or red).
    let cur_quick = current
        .get("quick")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let base_quick = baseline
        .get("quick")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if cur_quick != base_quick {
        eprintln!(
            "bench_gate: mode mismatch — current quick={cur_quick} vs baseline \
             quick={base_quick}; regenerate one side (see BENCH.md)"
        );
        return ExitCode::from(2);
    }

    let cur_cal = number(&current, "calibration_ms").unwrap_or(1.0).max(1e-9);
    let base_cal = number(&baseline, "calibration_ms").unwrap_or(1.0).max(1e-9);
    // current machine is `speed` times slower than the baseline machine.
    let speed = cur_cal / base_cal;
    eprintln!(
        "bench_gate: calibration current {cur_cal:.1} ms vs baseline {base_cal:.1} ms \
         (normalising wall times by {speed:.2}x), tolerance {:.0}%",
        max_regress * 100.0
    );

    let empty = Vec::new();
    let cur_rows = current
        .get("workloads")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let base_rows = baseline
        .get("workloads")
        .and_then(Json::as_array)
        .unwrap_or(&empty);

    let mut checks: Vec<Check> = Vec::new();
    let mut matched = 0usize;
    for base in base_rows {
        let Some(name) = base.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(cur) = cur_rows
            .iter()
            .find(|row| row.get("name").and_then(Json::as_str) == Some(name))
        else {
            checks.push(Check {
                workload: name.to_string(),
                what: "present in current report".to_string(),
                current: 0.0,
                limit: 1.0,
                ok: false,
            });
            continue;
        };
        matched += 1;
        let deterministic = base
            .get("deterministic")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let tracked = base.get("tracked").and_then(Json::as_bool).unwrap_or(false);

        if let (Some(base_wall), Some(cur_wall)) = (number(base, "wall_ms"), number(cur, "wall_ms"))
        {
            // Workloads under 5 ms sit inside scheduler/timer noise; their
            // regressions are caught by the (exact) counters instead.
            if base_wall >= 5.0 {
                let normalised = cur_wall / speed;
                let limit = base_wall * (1.0 + max_regress);
                checks.push(Check {
                    workload: name.to_string(),
                    what: format!("wall_ms (normalised {normalised:.1})"),
                    current: normalised,
                    limit,
                    ok: normalised <= limit,
                });
            }
        }
        if deterministic {
            for counter in ["edge_queries", "intersections", "allocations_avoided"] {
                if let (Some(base_n), Some(cur_n)) = (number(base, counter), number(cur, counter)) {
                    let limit = base_n * (1.0 + max_regress);
                    checks.push(Check {
                        workload: name.to_string(),
                        what: counter.to_string(),
                        current: cur_n,
                        limit,
                        ok: cur_n <= limit,
                    });
                }
            }
        }
        if tracked {
            if let (Some(base_speedup), Some(cur_speedup)) =
                (number(base, "speedup"), number(cur, "speedup"))
            {
                let floor = base_speedup * (1.0 - max_regress);
                checks.push(Check {
                    workload: name.to_string(),
                    what: format!("speedup (≥ {floor:.2})"),
                    current: cur_speedup,
                    limit: floor,
                    ok: cur_speedup >= floor,
                });
            }
        }
    }

    serve_overload_checks(&current, &baseline, speed, max_regress, &mut checks);

    let mut failed = false;
    for check in &checks {
        let verdict = if check.ok { "ok  " } else { "FAIL" };
        failed |= !check.ok;
        eprintln!(
            "  [{verdict}] {:<22} {:<28} current {:>12.1} vs limit {:>12.1}",
            check.workload, check.what, check.current, check.limit
        );
    }
    if matched == 0 {
        eprintln!("bench_gate: no workloads matched between the two reports");
        return ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "bench_gate: PERF REGRESSION — see failing rows above. If the change is \
             intentional, refresh bench/baseline.json in the same PR (see BENCH.md)."
        );
        ExitCode::FAILURE
    } else {
        eprintln!(
            "bench_gate: all {} checks passed over {matched} workloads",
            checks.len()
        );
        ExitCode::SUCCESS
    }
}

/// Gates the `serve_overload` SLO row (when the baseline has one).
fn serve_overload_checks(
    current: &Json,
    baseline: &Json,
    speed: f64,
    max_regress: f64,
    checks: &mut Vec<Check>,
) {
    let name = "serve_overload".to_string();
    let Some(base) = baseline.get("serve_overload") else {
        return; // pre-HTTP baseline: nothing to gate
    };
    let Some(cur) = current.get("serve_overload") else {
        checks.push(Check {
            workload: name,
            what: "present in current report".to_string(),
            current: 0.0,
            limit: 1.0,
            ok: false,
        });
        return;
    };

    if let (Some(base_p99), Some(cur_p99)) = (number(base, "p99_ms"), number(cur, "p99_ms")) {
        // Socket round trips and thread scheduling make this row noisier
        // than a mining wall time: double the tolerance and never gate
        // below a 5 ms absolute limit.
        let normalised = cur_p99 / speed;
        let limit = (base_p99 * (1.0 + 2.0 * max_regress)).max(5.0);
        checks.push(Check {
            workload: name.clone(),
            what: format!("p99_ms (normalised {normalised:.1})"),
            current: normalised,
            limit,
            ok: normalised <= limit,
        });
    }
    if let (Some(base_shed), Some(cur_shed)) = (number(base, "shed_rate"), number(cur, "shed_rate"))
    {
        // The service must shed under 2× overload (a zero rate means it
        // queued unboundedly instead), and the rate must stay in the same
        // regime as the baseline's — ±0.35 absolute, since the exact value
        // depends on scheduling races.
        let limit = base_shed + 0.35;
        let floor = (base_shed - 0.35).max(0.0);
        checks.push(Check {
            workload: name.clone(),
            what: format!("shed_rate (> 0, {floor:.2}..{limit:.2})"),
            current: cur_shed,
            limit,
            ok: cur_shed > 0.0 && cur_shed >= floor && cur_shed <= limit,
        });
    }
    for exact_zero in ["errors", "shed_without_retry_after"] {
        if let Some(cur_n) = number(cur, exact_zero) {
            checks.push(Check {
                workload: name.clone(),
                what: format!("{exact_zero} (= 0)"),
                current: cur_n,
                limit: 0.0,
                ok: cur_n == 0.0,
            });
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text)
}

fn number(row: &Json, key: &str) -> Option<f64> {
    row.get(key).and_then(Json::as_f64)
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("bench_gate: {error}");
    }
    eprintln!(
        "usage: bench_gate --current BENCH_N.json --baseline bench/baseline.json \
         [--max-regress 0.25]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
