//! Experiment harness regenerating every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p qcm-bench --bin experiments -- <experiment> [--quick]
//! ```
//!
//! where `<experiment>` is one of `table1`, `table2`, `table3`, `table4`,
//! `table5a`, `table5b`, `table6`, `fig1`, `fig2`, `fig3`, `ablation`, or
//! `all`. With `--quick` the reduced (benchmark-scale) datasets are used.
//!
//! Absolute numbers are not comparable with the paper (synthetic stand-in
//! datasets at reduced scale, a simulated cluster, different hardware); the
//! shapes — which dataset is hardest, how time responds to τ_time/τ_split,
//! near-linear thread/machine scaling, mining ≫ materialisation — are the
//! reproduction targets. See EXPERIMENTS.md.

use qcm_bench::report::{mib, seconds, Table};
use qcm_bench::runner::{default_threads, run_dataset, RunOptions};
use qcm_bench::scaled;
use qcm_core::{MiningParams, PruneConfig, SerialMiner};
use qcm_engine::EngineConfig;
use qcm_gen::datasets;
use qcm_gen::DatasetSpec;
use qcm_graph::GraphStats;
use qcm_parallel::{DecompositionStrategy, ParallelMiner};
use qcm_sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let specs: Vec<DatasetSpec> = datasets::all_datasets()
        .into_iter()
        .map(|s| if quick { scaled::bench_scale(&s) } else { s })
        .collect();

    match experiment.as_str() {
        "table1" => table1(&specs),
        "table2" => table2(&specs),
        "table3" => table3_4(&specs, "CX_GSE10158", quick),
        "table4" => table3_4(&specs, "Hyves", quick),
        "table5a" => table5(&specs, true),
        "table5b" => table5(&specs, false),
        "table6" => table6(&specs),
        "fig1" => figures(&specs, Figure::AllTasks),
        "fig2" => figures(&specs, Figure::Top100),
        "fig3" => figures(&specs, Figure::TimeVsSize),
        "ablation" => ablation(&specs),
        "all" => {
            table1(&specs);
            table2(&specs);
            table3_4(&specs, "CX_GSE10158", quick);
            table3_4(&specs, "Hyves", quick);
            table5(&specs, true);
            table5(&specs, false);
            table6(&specs);
            figures(&specs, Figure::AllTasks);
            figures(&specs, Figure::Top100);
            figures(&specs, Figure::TimeVsSize);
            ablation(&specs);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected table1|table2|table3|table4|table5a|\
                 table5b|table6|fig1|fig2|fig3|ablation|all"
            );
            std::process::exit(2);
        }
    }
}

fn spec_by_name<'a>(specs: &'a [DatasetSpec], name: &str) -> &'a DatasetSpec {
    specs
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("dataset {name} not found"))
}

/// Table 1: dataset sizes.
fn table1(specs: &[DatasetSpec]) {
    let mut table = Table::new(
        "Table 1: Graph Datasets (synthetic stand-ins)",
        &["Data", "|V|", "|E|", "max deg", "degeneracy"],
    );
    for spec in specs {
        let ds = spec.generate();
        let stats = GraphStats::compute(&ds.graph);
        table.add_row(vec![
            spec.name.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            stats.max_degree.to_string(),
            stats.degeneracy.to_string(),
        ]);
    }
    table.print();
}

/// Table 2: per-dataset mining results with the paper's parameter choices.
fn table2(specs: &[DatasetSpec]) {
    let mut table = Table::new(
        "Table 2: Results on All Datasets",
        &[
            "Data",
            "tau_size",
            "gamma",
            "tau_split",
            "tau_time(ms)",
            "Time (sec)",
            "RAM (MiB)",
            "Disk (MiB)",
            "Result #",
        ],
    );
    for spec in specs {
        eprintln!("[table2] mining {} ...", spec.name);
        let run = run_dataset(spec, &RunOptions::default());
        eprintln!(
            "[table2] {} done in {:.3} s ({} results)",
            run.name,
            run.elapsed.as_secs_f64(),
            run.maximal_results
        );
        table.add_row(vec![
            run.name.clone(),
            run.min_size.to_string(),
            format!("{}", run.gamma),
            run.tau_split.to_string(),
            run.tau_time.as_millis().to_string(),
            seconds(run.elapsed),
            mib(run.peak_memory_bytes),
            mib(run.disk_bytes),
            run.maximal_results.to_string(),
        ]);
    }
    table.print();
}

/// Tables 3 and 4: the (τ_time × τ_split) hyperparameter grid on one dataset.
fn table3_4(specs: &[DatasetSpec], dataset: &str, quick: bool) {
    let spec = spec_by_name(specs, dataset);
    let tau_times_ms: Vec<u64> = if quick {
        vec![20, 5, 1, 0]
    } else {
        vec![50, 20, 10, 5, 1, 0]
    };
    let tau_splits: Vec<usize> = if quick {
        vec![500, 100, 50]
    } else {
        vec![1000, 500, 200, 100, 50]
    };
    let header: Vec<String> = std::iter::once("tau_time\\tau_split".to_string())
        .chain(tau_splits.iter().map(|s| s.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let title = if dataset == "Hyves" {
        "Table 4"
    } else {
        "Table 3"
    };
    let mut time_table = Table::new(
        format!("{title}(a): Running Time (seconds) on {dataset}"),
        &header_refs,
    );
    let mut result_table = Table::new(
        format!("{title}(b): Number of Quasi-Cliques Mined on {dataset}"),
        &header_refs,
    );
    for &tau_time in &tau_times_ms {
        let mut time_row = vec![format!("{tau_time} ms")];
        let mut result_row = vec![format!("{tau_time} ms")];
        for &tau_split in &tau_splits {
            let options = RunOptions {
                tau_split: Some(tau_split),
                tau_time: Some(Duration::from_millis(tau_time)),
                ..Default::default()
            };
            let run = run_dataset(spec, &options);
            time_row.push(seconds(run.elapsed));
            result_row.push(run.raw_results.to_string());
        }
        time_table.add_row(time_row);
        result_table.add_row(result_row);
    }
    time_table.print();
    result_table.print();
}

/// Table 5: vertical (threads) and horizontal (machines) scalability on Enron.
fn table5(specs: &[DatasetSpec], vertical: bool) {
    let spec = spec_by_name(specs, "Enron");
    // Per-task times are measured on a serial (1-thread) run and replayed on
    // N virtual workers with greedy list scheduling: on a host with fewer
    // physical cores than N, measured wall time cannot show the paper's
    // speedups, but the simulated makespan exposes whether the decomposition
    // produced tasks balanced enough to keep N workers busy (which is what
    // Table 5 of the paper demonstrates). Wall times of the actual runs are
    // reported alongside for transparency.
    let serial = run_dataset(
        spec,
        &RunOptions {
            machines: 1,
            threads_per_machine: 1,
            ..Default::default()
        },
    );
    let base_makespan = serial.metrics.simulated_makespan(1).as_secs_f64();
    if vertical {
        let mut table = Table::new(
            "Table 5(a): Vertical Scalability on Enron (1 machine)",
            &[
                "Thread #",
                "Sim. makespan (sec)",
                "Sim. speedup",
                "Wall time (sec)",
                "Utilisation",
                "RAM (MiB)",
                "Disk (MiB)",
            ],
        );
        for threads in [1usize, 2, 4, 8] {
            let options = RunOptions {
                machines: 1,
                threads_per_machine: threads,
                ..Default::default()
            };
            let run = run_dataset(spec, &options);
            let makespan = serial.metrics.simulated_makespan(threads).as_secs_f64();
            table.add_row(vec![
                threads.to_string(),
                format!("{makespan:.3}"),
                format!("{:.2}x", base_makespan / makespan),
                seconds(run.elapsed),
                format!("{:.0}%", run.metrics.worker_utilisation() * 100.0),
                mib(run.peak_memory_bytes),
                mib(run.disk_bytes),
            ]);
        }
        table.print();
    } else {
        let mut table = Table::new(
            "Table 5(b): Horizontal Scalability on Enron (2 threads per machine)",
            &[
                "Machine #",
                "Sim. makespan (sec)",
                "Sim. speedup",
                "Wall time (sec)",
                "Stolen tasks",
                "Remote fetches",
            ],
        );
        for machines in [1usize, 2, 4, 8] {
            let options = RunOptions {
                machines,
                threads_per_machine: 2,
                ..Default::default()
            };
            let run = run_dataset(spec, &options);
            let makespan = serial
                .metrics
                .simulated_makespan(machines * 2)
                .as_secs_f64();
            table.add_row(vec![
                machines.to_string(),
                format!("{makespan:.3}"),
                format!("{:.2}x", base_makespan / makespan),
                seconds(run.elapsed),
                run.metrics.stolen_tasks.to_string(),
                run.metrics.remote_fetches.to_string(),
            ]);
        }
        table.print();
    }
}

/// Table 6: mining vs subgraph-materialisation time on Hyves as τ_time varies.
fn table6(specs: &[DatasetSpec]) {
    let spec = spec_by_name(specs, "Hyves");
    let mut table = Table::new(
        "Table 6: Mining vs Subgraph Materialization on Hyves",
        &[
            "tau_time (ms)",
            "Job Time (sec)",
            "Total Mining (sec)",
            "Total Materialization (sec)",
            "Mining:Materialization",
        ],
    );
    for tau_time_ms in [50u64, 20, 10, 1, 0] {
        let options = RunOptions {
            tau_time: Some(Duration::from_millis(tau_time_ms)),
            ..Default::default()
        };
        let run = run_dataset(spec, &options);
        let ratio = run
            .metrics
            .mining_materialization_ratio()
            .map(|r| format!("{r:.1}"))
            .unwrap_or_else(|| "inf".to_string());
        table.add_row(vec![
            tau_time_ms.to_string(),
            seconds(run.elapsed),
            seconds(run.metrics.total_mining_time),
            seconds(run.metrics.total_materialization_time),
            ratio,
        ]);
    }
    table.print();
}

enum Figure {
    AllTasks,
    Top100,
    TimeVsSize,
}

/// Figures 1–3: per-task time distributions on the YouTube stand-in.
fn figures(specs: &[DatasetSpec], figure: Figure) {
    let spec = spec_by_name(specs, "YouTube");
    let run = run_dataset(spec, &RunOptions::default());
    match figure {
        Figure::AllTasks => {
            // Figure 1: per-root total time, plotted in the paper as a
            // log-scale scatter; printed here as a histogram over time buckets.
            let totals = run.metrics.per_root_totals();
            let mut table = Table::new(
                "Figure 1: Time of All Tasks Spawned by Unpruned Vertices (YouTube stand-in)",
                &["time bucket", "# spawning vertices"],
            );
            let buckets_ms = [1u128, 10, 100, 1_000, 10_000, u128::MAX];
            let mut counts = vec![0usize; buckets_ms.len()];
            for (_, time, _) in &totals {
                let ms = time.as_millis();
                let idx = buckets_ms.iter().position(|&b| ms < b).unwrap_or(0);
                counts[idx] += 1;
            }
            let labels = [
                "< 1 ms",
                "1-10 ms",
                "10-100 ms",
                "0.1-1 s",
                "1-10 s",
                ">= 10 s",
            ];
            for (label, count) in labels.iter().zip(counts) {
                table.add_row(vec![label.to_string(), count.to_string()]);
            }
            table.print();
            println!("total spawning vertices with tasks: {}\n", totals.len());
        }
        Figure::Top100 => {
            let totals = run.metrics.per_root_totals();
            let mut table = Table::new(
                "Figure 2: Time of Top-100 Tasks (YouTube stand-in)",
                &[
                    "rank",
                    "spawning vertex",
                    "total time (sec)",
                    "subgraph |V|",
                ],
            );
            for (rank, (root, time, size)) in totals.iter().take(100).enumerate() {
                table.add_row(vec![
                    (rank + 1).to_string(),
                    root.to_string(),
                    seconds(*time),
                    size.to_string(),
                ]);
            }
            table.print();
        }
        Figure::TimeVsSize => {
            let mut records = run.metrics.task_times.clone();
            records.sort_by_key(|r| std::cmp::Reverse(r.subgraph_size));
            let mut table = Table::new(
                "Figure 3: Running Time and Subgraph Size of the Largest Tasks (YouTube stand-in)",
                &["subgraph |V|", "time (sec)"],
            );
            for rec in records.iter().take(12) {
                table.add_row(vec![rec.subgraph_size.to_string(), seconds(rec.elapsed)]);
            }
            table.print();
            println!(
                "(The paper's point: tasks of comparable subgraph size can differ in running \
                 time by orders of magnitude, which is why size-based cost prediction fails and \
                 time-delayed decomposition is needed.)\n"
            );
        }
    }
}

/// Ablation: pruning rules and decomposition strategy (supports the claims in
/// Sections 1, 4 and 7 about rule effectiveness and time-delayed vs
/// size-threshold decomposition).
fn ablation(specs: &[DatasetSpec]) {
    // Serial ablation on the smallest dataset so the unpruned variants finish.
    let spec = scaled::tiny(spec_by_name(specs, "CX_GSE1730"));
    let dataset = spec.generate();
    let params = MiningParams::new(spec.gamma, spec.min_size);
    let mut table = Table::new(
        "Ablation: pruning-rule contributions (serial miner, CX_GSE1730 stand-in)",
        &["configuration", "Time (sec)", "nodes expanded", "Result #"],
    );
    let full = SerialMiner::new(params).mine(&dataset.graph);
    table.add_row(vec![
        "all rules".to_string(),
        seconds(full.elapsed),
        full.stats.nodes_expanded.to_string(),
        full.maximal.len().to_string(),
    ]);
    for rule in PruneConfig::rule_names() {
        let config = PruneConfig::all_enabled().without(rule);
        let out = SerialMiner::with_config(params, config).mine(&dataset.graph);
        table.add_row(vec![
            format!("without {rule}"),
            seconds(out.elapsed),
            out.stats.nodes_expanded.to_string(),
            out.maximal.len().to_string(),
        ]);
    }
    table.print();

    // Decomposition-strategy comparison on the Enron stand-in.
    let spec = spec_by_name(specs, "Enron");
    let ds = spec.generate();
    let graph = Arc::new(ds.graph);
    let params = MiningParams::new(spec.gamma, spec.min_size);
    let mut table = Table::new(
        "Ablation: time-delayed vs size-threshold decomposition (Enron stand-in)",
        &["strategy", "Time (sec)", "tasks decomposed", "Result #"],
    );
    for (label, strategy) in [
        ("time-delayed (Alg 10)", DecompositionStrategy::TimeDelayed),
        (
            "size-threshold (Alg 8)",
            DecompositionStrategy::SizeThreshold,
        ),
    ] {
        let config = EngineConfig::single_machine(default_threads())
            .with_decomposition(spec.tau_split, Duration::from_millis(spec.tau_time_ms));
        let out = ParallelMiner::new(params, config)
            .with_strategy(strategy)
            .mine(graph.clone());
        table.add_row(vec![
            label.to_string(),
            seconds(out.elapsed()),
            out.metrics.tasks_decomposed.to_string(),
            out.maximal.len().to_string(),
        ]);
    }
    table.print();
}
