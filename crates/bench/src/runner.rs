//! Shared experiment runner: generate a stand-in dataset, mine it on the
//! simulated cluster, and collect the columns the paper's tables report.

use qcm_core::MiningParams;
use qcm_engine::{EngineConfig, EngineMetrics};
use qcm_gen::DatasetSpec;
use qcm_parallel::{DecompositionStrategy, ParallelMiner};
use qcm_sync::Arc;
use std::time::Duration;

/// Overrides applied on top of a dataset's default mining/engine parameters.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Number of simulated machines.
    pub machines: usize,
    /// Mining threads per machine.
    pub threads_per_machine: usize,
    /// Override of the dataset's τ_split (None keeps the dataset default).
    pub tau_split: Option<usize>,
    /// Override of the dataset's τ_time (None keeps the dataset default).
    pub tau_time: Option<Duration>,
    /// Decomposition strategy.
    pub strategy: DecompositionStrategy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            machines: 1,
            threads_per_machine: default_threads(),
            tau_split: None,
            tau_time: None,
            strategy: DecompositionStrategy::TimeDelayed,
        }
    }
}

/// Sensible default thread count for harness runs: physical parallelism capped
/// at 8 so laptop runs stay responsive.
pub fn default_threads() -> usize {
    qcm_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// The measured columns of one dataset run (one row of Table 2).
#[derive(Clone, Debug)]
pub struct DatasetRun {
    /// Dataset name.
    pub name: String,
    /// γ used.
    pub gamma: f64,
    /// τ_size used.
    pub min_size: usize,
    /// τ_split used.
    pub tau_split: usize,
    /// τ_time used.
    pub tau_time: Duration,
    /// Graph size.
    pub num_vertices: usize,
    /// Graph size.
    pub num_edges: usize,
    /// Wall-clock mining time.
    pub elapsed: Duration,
    /// Peak in-memory task bytes (the RAM column analogue).
    pub peak_memory_bytes: u64,
    /// Bytes spilled to disk (the Disk column analogue).
    pub disk_bytes: u64,
    /// Number of maximal quasi-cliques after post-processing.
    pub maximal_results: usize,
    /// Number of raw reports before post-processing.
    pub raw_results: u64,
    /// Full engine metrics (for the figures).
    pub metrics: EngineMetrics,
}

/// Generates the dataset described by `spec` and mines it with the given
/// options, returning the measured row.
pub fn run_dataset(spec: &DatasetSpec, options: &RunOptions) -> DatasetRun {
    let dataset = spec.generate();
    let graph = Arc::new(dataset.graph);
    let params = MiningParams::new(spec.gamma, spec.min_size);
    let tau_split = options.tau_split.unwrap_or(spec.tau_split);
    let tau_time = options
        .tau_time
        .unwrap_or(Duration::from_millis(spec.tau_time_ms));
    let mut config = EngineConfig::cluster(options.machines, options.threads_per_machine)
        .with_decomposition(tau_split, tau_time);
    config.balance_period = Duration::from_millis(5);
    let miner = ParallelMiner::new(params, config).with_strategy(options.strategy);
    let output = miner.mine(graph.clone());
    DatasetRun {
        name: spec.name.to_string(),
        gamma: spec.gamma,
        min_size: spec.min_size,
        tau_split,
        tau_time,
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        elapsed: output.metrics.elapsed,
        peak_memory_bytes: output.metrics.peak_memory_bytes() + graph.memory_bytes() as u64,
        disk_bytes: output.metrics.spill_bytes_written,
        maximal_results: output.maximal.len(),
        raw_results: output.raw_reported,
        metrics: output.metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaled;

    #[test]
    fn run_dataset_produces_consistent_row() {
        let spec = scaled::tiny(&qcm_gen::datasets::cx_gse1730());
        let run = run_dataset(&spec, &RunOptions::default());
        assert_eq!(run.name, "CX_GSE1730");
        assert_eq!(run.num_vertices, spec.num_vertices);
        assert!(run.maximal_results as u64 <= run.raw_results);
        assert!(run.elapsed.as_secs() < 120);
    }

    #[test]
    fn options_override_hyperparameters() {
        let spec = scaled::tiny(&qcm_gen::datasets::amazon());
        let options = RunOptions {
            tau_split: Some(7),
            tau_time: Some(Duration::from_millis(3)),
            threads_per_machine: 2,
            ..Default::default()
        };
        let run = run_dataset(&spec, &options);
        assert_eq!(run.tau_split, 7);
        assert_eq!(run.tau_time, Duration::from_millis(3));
    }
}
