//! Plain-text table rendering for the experiment harness.
//!
//! The harness prints rows in the same layout as the paper's tables so the
//! output can be compared side-by-side with the PDF; nothing here is specific
//! to quasi-cliques.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are converted to strings by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  ", width = width));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header));
        out.push('\n');
        let total_width: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total_width.max(4)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a duration in seconds with millisecond precision (the paper's time
/// columns are in seconds).
pub fn seconds(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count as mebibytes with two decimals (the paper's RAM/Disk
/// columns are in GB; at our scale MiB is the readable unit).
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Data", "Time (sec)", "#"]);
        t.add_row(vec!["YouTube".into(), "11226.48".into(), "1320".into()]);
        t.add_row(vec!["Hyves".into(), "130.16".into(), "3850".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("YouTube"));
        assert!(rendered.lines().count() >= 5);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(seconds(Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(mib(0), "0.00");
    }

    #[test]
    fn ragged_rows_do_not_panic() {
        let mut t = Table::new("Ragged", &["a", "b"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Ragged"));
    }
}
