//! The machine-readable benchmark suite behind `bench_suite` / `bench_gate`.
//!
//! Each workload mines a seeded synthetic dataset twice along its *variant
//! axis* — a baseline variant and an optimised variant of the same binary —
//! and records wall time for both, the kernel counters
//! ([`qcm_graph::neighborhoods::perf`]) of the optimised run, and the index
//! shape. Three axes exist:
//!
//! * [`VariantAxis::Index`] — hybrid bitset neighborhood index off vs
//!   [`IndexSpec::Auto`] (the PR-4 rows);
//! * [`VariantAxis::Scratch`] — fresh-allocation recursion
//!   ([`ScratchMode::Fresh`], the pre-arena hot path) vs the pooled
//!   [`qcm_core::MiningScratch`] arena;
//! * [`VariantAxis::Steal`] — work stealing disabled (`steal_batch = 0`,
//!   the single-global-queue era's behaviour) vs the per-worker deque steal
//!   protocol.
//!
//! The resulting `BENCH_<pr>.json` is the artefact CI's `perf-smoke` job
//! uploads and gates against `bench/baseline.json` (see BENCH.md for the
//! schema and refresh workflow).
//!
//! Wall times are machine-dependent, so the report also carries a
//! `calibration_ms` measurement of a fixed hashing loop; the gate normalises
//! wall-time comparisons by the calibration ratio and gates the
//! deterministic counters exactly.

use crate::json::{object, Json};
use crate::loadgen::{self, LoadGenConfig, LoadGenReport};
use qcm_core::{MiningParams, PruneConfig, ScratchMode, SerialMiner};
use qcm_engine::EngineConfig;
use qcm_gen::DatasetSpec;
use qcm_graph::neighborhoods::{perf, IndexSpec};
use qcm_graph::{io, Graph, NeighborhoodIndex};
use qcm_http::{Api, AuthConfig, Server, ServerConfig};
use qcm_parallel::ParallelMiner;
use qcm_service::{AdmissionControl, ServiceConfig};
use qcm_sync::Arc;
use std::time::{Duration, Instant};

/// Which miner a workload drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadBackend {
    /// The single-threaded reference miner.
    Serial,
    /// The task-based engine on one simulated machine.
    Parallel {
        /// Mining threads.
        threads: usize,
    },
}

impl WorkloadBackend {
    fn label(&self) -> String {
        match self {
            WorkloadBackend::Serial => "serial".to_string(),
            WorkloadBackend::Parallel { threads } => format!("parallel:{threads}"),
        }
    }
}

/// Which optimisation a workload's baseline/current pair measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VariantAxis {
    /// Baseline: `IndexSpec::Disabled` (binary-search edge queries).
    Index,
    /// Baseline: `ScratchMode::Fresh` (allocation-per-tree-node recursion).
    /// Serial backend only.
    Scratch,
    /// Baseline: `steal_batch = 0` (no intra-machine work stealing).
    /// Parallel backend only.
    Steal,
}

impl VariantAxis {
    fn label(&self) -> &'static str {
        match self {
            VariantAxis::Index => "index",
            VariantAxis::Scratch => "scratch",
            VariantAxis::Steal => "steal",
        }
    }
}

/// One benchmark workload: a seeded dataset plus the backend to mine it on.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Stable workload name (the gate joins on it).
    pub name: &'static str,
    /// The (already scaled) dataset specification.
    pub dataset: DatasetSpec,
    /// Backend to run.
    pub backend: WorkloadBackend,
    /// The optimisation this workload's speedup measures.
    pub variant: VariantAxis,
    /// Pruning-rule configuration both variants mine with.
    pub prune: PruneConfig,
    /// True when wall time *and* kernel counters are reproducible across
    /// machines (serial runs). Parallel runs decompose by wall-clock τ_time,
    /// so their counters vary and only time is gated.
    pub deterministic: bool,
    /// True for workloads whose baseline-vs-optimised speedup the gate
    /// tracks.
    pub tracked: bool,
}

/// The deep-recursion arena workload: a dense planted block under a loose γ
/// keeps the pruning rules comparatively quiet, so the search expands many
/// cheap tree nodes — exactly the regime where per-node allocation used to
/// dominate. Serial and fully deterministic; the gate tracks its
/// pooled-vs-fresh speedup and its exact `allocations_avoided` count.
fn deep_recursion_spec() -> DatasetSpec {
    DatasetSpec {
        name: "DeepRecursion",
        num_vertices: 500,
        avg_degree: 6.0,
        beta: 2.6,
        max_degree: 40.0,
        planted_sizes: vec![10, 10],
        planted_density: 0.9,
        hard_core: Some((20, 0.6)),
        gamma: 0.6,
        min_size: 8,
        tau_split: 200,
        tau_time_ms: 5,
        seed: 77,
    }
}

/// The steal-skew workload: a small power-law background whose work is
/// concentrated in one hard core reachable from few roots. Time-delayed
/// decomposition dumps the core's subtasks into the decomposing worker's own
/// deque (τ_split is high, so they are all "small"); without stealing the
/// siblings idle once the spawn cursor runs dry, with stealing they drain
/// the hot worker's FIFO end.
fn steal_skew_spec() -> DatasetSpec {
    DatasetSpec {
        name: "StealSkew",
        num_vertices: 1_500,
        avg_degree: 3.0,
        beta: 2.6,
        max_degree: 30.0,
        planted_sizes: vec![12, 12],
        planted_density: 0.95,
        hard_core: Some((44, 0.64)),
        gamma: 0.9,
        min_size: 12,
        tau_split: 400,
        tau_time_ms: 0,
        seed: 4242,
    }
}

/// The standard suite: the three PR-4 index rows, the tracked deep-recursion
/// arena row and the 4-thread steal-skew row.
///
/// `quick` selects the CI-sized datasets (a few hundred vertices, seconds of
/// total runtime); the full size is for local perf work.
pub fn workloads(quick: bool) -> Vec<WorkloadSpec> {
    let scale = if quick {
        crate::scaled::tiny
    } else {
        crate::scaled::bench_scale
    };
    // The PR-5 specs are authored directly at suite scale (bench_scale's
    // hard-core clamp would flatten the skew the steal row depends on);
    // quick mode still shrinks them to smoke size.
    let new_scale = |spec: &DatasetSpec| {
        if quick {
            crate::scaled::tiny(spec)
        } else {
            spec.clone()
        }
    };
    vec![
        // Enron's hard core (a dense near-γ block of hub vertices) is the
        // paper's source of expensive tasks: the search space is packed with
        // near-cliques over high-degree vertices, so the pairwise edge
        // queries of `is_quasi_clique_local` and the degree recomputations
        // dominate — the workload the hub rows exist for. Tracked since PR 4.
        WorkloadSpec {
            name: "edge_query_hubs",
            dataset: scale(&qcm_gen::datasets::enron()),
            backend: WorkloadBackend::Serial,
            variant: VariantAxis::Index,
            prune: PruneConfig::all_enabled(),
            deterministic: true,
            tracked: true,
        },
        // γ = 0.8 keeps the diameter rule active on a sparser planted
        // dataset: every expansion intersects ext(S) with a two-hop
        // neighborhood. Cheap, counter-gated.
        WorkloadSpec {
            name: "intersection_two_hop",
            dataset: scale(&qcm_gen::datasets::cx_gse10158()),
            backend: WorkloadBackend::Serial,
            variant: VariantAxis::Index,
            prune: PruneConfig::all_enabled(),
            deterministic: true,
            tracked: false,
        },
        // The full engine path over the other hard-core dataset: spawn/pull
        // iterations, time-delayed decomposition, per-task hub indexes.
        WorkloadSpec {
            name: "parallel_timedelayed",
            dataset: scale(&qcm_gen::datasets::hyves()),
            backend: WorkloadBackend::Parallel { threads: 4 },
            variant: VariantAxis::Index,
            prune: PruneConfig::all_enabled(),
            deterministic: false,
            tracked: false,
        },
        // PR-5 tracked row: the scratch arena against the fresh-allocation
        // reference recursion on a deep, allocation-bound search.
        WorkloadSpec {
            name: "deep_recursion_arena",
            dataset: new_scale(&deep_recursion_spec()),
            backend: WorkloadBackend::Serial,
            variant: VariantAxis::Scratch,
            // Lookahead's O(|S ∪ ext|²) density check is pure edge-query
            // work that both variants pay identically; turning it off keeps
            // this row dominated by the per-node frame traffic the arena
            // targets. (Rule subsets never change the final result set —
            // property-tested invariant.)
            prune: PruneConfig::all_enabled().without("lookahead"),
            deterministic: true,
            tracked: true,
        },
        // PR-5 tracked row: the intra-machine steal protocol against the
        // no-stealing pop path on a skewed 4-thread decomposition workload.
        WorkloadSpec {
            name: "steal_skew",
            dataset: new_scale(&steal_skew_spec()),
            backend: WorkloadBackend::Parallel { threads: 4 },
            variant: VariantAxis::Steal,
            prune: PruneConfig::all_enabled(),
            deterministic: false,
            tracked: true,
        },
    ]
}

/// The measured row of one workload.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Dataset name.
    pub dataset: String,
    /// Backend label (`serial` / `parallel:<threads>`).
    pub backend: String,
    /// Variant axis label (`index` / `scratch` / `steal`).
    pub variant: String,
    /// Graph size.
    pub num_vertices: usize,
    /// Graph size.
    pub num_edges: usize,
    /// γ mined with.
    pub gamma: f64,
    /// τ_size mined with.
    pub min_size: usize,
    /// Best-of-iters wall time of the optimised variant.
    pub wall_ms: f64,
    /// Best-of-iters wall time of the baseline variant.
    pub baseline_wall_ms: f64,
    /// `baseline_wall_ms / wall_ms`.
    pub speedup: f64,
    /// Edge queries of one optimised run.
    pub edge_queries: u64,
    /// Bitset fast-path hits of one optimised run.
    pub bitset_hits: u64,
    /// Intersections of one optimised run.
    pub intersections: u64,
    /// Scratch-frame requests served by the arena in one optimised run.
    pub allocations_avoided: u64,
    /// Scratch-frame requests that hit the heap in one optimised run (pool
    /// warm-up only — stays flat while `allocations_avoided` scales with
    /// tree nodes, which is the zero-allocation steady-state evidence).
    pub scratch_fresh_allocs: u64,
    /// High-water mark of pooled scratch bytes at the end of the run.
    pub scratch_bytes_peak: u64,
    /// Tasks moved by intra-machine steals in one optimised run.
    pub steals: u64,
    /// Steal sweeps that found nothing in one optimised run.
    pub steal_failures: u64,
    /// Maximal results (identical between the two variants — verified).
    pub maximal_results: usize,
    /// Auto-resolved hub threshold of the global index for this graph.
    pub index_threshold: usize,
    /// Hub vertices of the global index.
    pub index_hub_vertices: usize,
    /// Bitset-row bytes of the global index.
    pub index_memory_bytes: usize,
    /// See [`WorkloadSpec::deterministic`].
    pub deterministic: bool,
    /// See [`WorkloadSpec::tracked`].
    pub tracked: bool,
    /// Per-span-kind self time (µs, children subtracted) of one *untimed*
    /// traced pass of the optimised variant — where this workload spends its
    /// wall time, attached so a BENCH regression can be read against the
    /// phase breakdown without re-running under a profiler. Empty when the
    /// process-global recorder was busy.
    pub phase_self_time_us: Vec<(&'static str, u64)>,
}

/// Runs one workload: `iters` timed runs per variant (baseline / optimised
/// along the workload's axis), best wall time of each, counter deltas from
/// the last optimised run.
///
/// # Panics
/// Panics if the two variants disagree on the result set — no optimisation
/// may change *what* is mined.
pub fn run_workload(spec: &WorkloadSpec, iters: usize) -> WorkloadResult {
    let dataset = spec.dataset.generate();
    let graph = Arc::new(dataset.graph);
    let params = MiningParams::new(spec.dataset.gamma, spec.dataset.min_size);
    let iters = iters.max(1);

    let (baseline_wall_ms, baseline_results, _) = run_variant(spec, &graph, params, true, iters);
    let (wall_ms, results, counters) = run_variant(spec, &graph, params, false, iters);
    assert_eq!(
        baseline_results, results,
        "workload {}: results must be variant-invariant",
        spec.name
    );
    let phase_self_time_us = traced_self_time(spec, &graph, params);

    let index = NeighborhoodIndex::build(graph.clone(), IndexSpec::Auto);
    WorkloadResult {
        name: spec.name.to_string(),
        dataset: spec.dataset.name.to_string(),
        backend: spec.backend.label(),
        variant: spec.variant.label().to_string(),
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        gamma: spec.dataset.gamma,
        min_size: spec.dataset.min_size,
        wall_ms,
        baseline_wall_ms,
        speedup: baseline_wall_ms / wall_ms.max(1e-9),
        edge_queries: counters.edge_queries,
        bitset_hits: counters.bitset_hits,
        intersections: counters.intersections,
        allocations_avoided: counters.allocations_avoided,
        scratch_fresh_allocs: counters.scratch_fresh_allocs,
        scratch_bytes_peak: counters.scratch_bytes_peak,
        steals: counters.steals,
        steal_failures: counters.steal_failures,
        maximal_results: results,
        index_threshold: index.threshold(),
        index_hub_vertices: index.hub_count(),
        index_memory_bytes: index.memory_bytes(),
        deterministic: spec.deterministic,
        tracked: spec.tracked,
        phase_self_time_us,
    }
}

/// The per-pass `perf::reset()` in [`run_variant`] zeroes *process-wide*
/// counters, and the span recorder behind [`traced_self_time`] is a
/// process-wide singleton — concurrent measured regions would corrupt each
/// other's deltas or lose the trace (e.g. `cargo test` running two suite
/// tests on parallel threads). One lock serialises them; the bench binaries
/// take it uncontended.
static MEASURE_LOCK: qcm_sync::Mutex<()> = qcm_sync::Mutex::new(());

/// Resolves a workload's variant axis into the three mechanism knobs. Every
/// axis keeps the other two optimisations at their defaults, so a row
/// isolates exactly one mechanism.
fn variant_knobs(spec: &WorkloadSpec, baseline: bool) -> (IndexSpec, ScratchMode, bool) {
    let index = match (spec.variant, baseline) {
        (VariantAxis::Index, true) => IndexSpec::Disabled,
        _ => IndexSpec::Auto,
    };
    let scratch = match (spec.variant, baseline) {
        (VariantAxis::Scratch, true) => ScratchMode::Fresh,
        _ => ScratchMode::Pooled,
    };
    let steal = spec.variant != VariantAxis::Steal || !baseline;
    (index, scratch, steal)
}

/// One mining pass with explicit mechanism knobs; returns the maximal count.
fn mine_pass(
    spec: &WorkloadSpec,
    graph: &Arc<Graph>,
    params: MiningParams,
    index: IndexSpec,
    scratch: ScratchMode,
    steal: bool,
) -> usize {
    match spec.backend {
        WorkloadBackend::Serial => SerialMiner::with_config(params, spec.prune)
            .with_index(index)
            .with_scratch_mode(scratch)
            .mine(graph)
            .maximal
            .len(),
        WorkloadBackend::Parallel { threads } => {
            let mut config = EngineConfig::single_machine(threads)
                .with_decomposition(
                    spec.dataset.tau_split,
                    Duration::from_millis(spec.dataset.tau_time_ms),
                )
                .with_index(index);
            if spec.variant == VariantAxis::Steal {
                // Both variants: a deque deep enough to hold the skewed
                // decomposition burst and coarse spawn batches (one
                // worker grabs long consecutive id runs, so the hard
                // core's roots concentrate), isolating exactly the steal
                // protocol (the pre-stealing engine's L_small was
                // worker-private too, not shared through overflow).
                config.local_capacity = 4096;
                config.batch_size = 256;
            }
            if !steal {
                config.steal_batch = 0;
            }
            ParallelMiner::new(params, config)
                .with_prune_config(spec.prune)
                .mine(graph.clone())
                .maximal
                .len()
        }
    }
}

/// Runs `iters` mining passes of one variant; returns (best wall ms, result
/// count, counter delta of the last pass).
fn run_variant(
    spec: &WorkloadSpec,
    graph: &Arc<Graph>,
    params: MiningParams,
    baseline: bool,
    iters: usize,
) -> (f64, usize, perf::PerfSnapshot) {
    let (index, scratch, steal) = variant_knobs(spec, baseline);
    let _measuring = MEASURE_LOCK.lock();

    let mut best_ms = f64::INFINITY;
    let mut result_count = 0usize;
    let mut counters = perf::PerfSnapshot::default();
    for _ in 0..iters {
        // Zero the counters so the gauge-style `scratch_bytes_peak` reflects
        // this pass alone (the additive counters are delta-read either way).
        perf::reset();
        let before = perf::snapshot();
        let start = Instant::now();
        result_count = mine_pass(spec, graph, params, index, scratch, steal);
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        counters = perf::snapshot().since(&before);
        best_ms = best_ms.min(elapsed_ms);
    }
    (best_ms, result_count, counters)
}

/// One extra pass of the optimised variant under span recording, reduced to
/// self time per span kind. Runs *after* the timed passes so tracing
/// overhead never leaks into `wall_ms`. The span recorder is process-global
/// and exclusive; if another recording is active (parallel suite tests) the
/// breakdown is simply omitted.
fn traced_self_time(
    spec: &WorkloadSpec,
    graph: &Arc<Graph>,
    params: MiningParams,
) -> Vec<(&'static str, u64)> {
    let (index, scratch, steal) = variant_knobs(spec, false);
    let _measuring = MEASURE_LOCK.lock();
    if !qcm_obs::start_recording(&qcm_obs::TraceConfig::default()) {
        return Vec::new();
    }
    {
        let _run = qcm_obs::span(qcm_obs::SpanKind::Run);
        mine_pass(spec, graph, params, index, scratch, steal);
    }
    let trace = qcm_obs::finish_recording();
    qcm_obs::self_time_by_kind(&trace).into_iter().collect()
}

/// The `serve_overload` SLO row: the HTTP service under 2× closed-loop
/// overload.
#[derive(Clone, Debug)]
pub struct ServeOverloadResult {
    /// Mining worker threads of the service under test.
    pub workers: usize,
    /// Admission-control queue bound.
    pub max_queued: usize,
    /// What the load generator measured.
    pub report: LoadGenReport,
}

impl ServeOverloadResult {
    fn to_json(&self) -> Json {
        // The row is the load-gen report's fields plus the capacity knobs.
        let Json::Object(mut map) = self.report.to_json() else {
            unreachable!("LoadGenReport::to_json always renders an object");
        };
        map.insert("workers".to_string(), Json::from(self.workers));
        map.insert("max_queued".to_string(), Json::from(self.max_queued));
        Json::Object(map)
    }
}

/// Runs the HTTP service under 2× overload: `workers = 1`, `max_queued = 4`
/// (capacity 5), driven by `2 × capacity` closed-loop clients over the real
/// socket. The result cache is disabled so every admitted job actually
/// mines — the row measures the service under load, not the cache.
///
/// The SLO this row gates: excess load is shed with `429` + `Retry-After`
/// (positive `shed_rate`, zero `shed_without_retry_after`) while admitted
/// jobs keep a bounded `p99_ms` — instead of every request queueing
/// unboundedly.
pub fn run_serve_overload(quick: bool) -> Result<ServeOverloadResult, String> {
    let (workers, max_queued) = (1usize, 4usize);
    let clients = 2 * (workers + max_queued);

    let dir = std::env::temp_dir().join(format!("qcm_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let graph_path = dir.join("overload.txt");
    let dataset = qcm_gen::datasets::tiny_test_dataset(9);
    io::write_edge_list_file(&dataset.graph, &graph_path).map_err(|e| e.to_string())?;

    let api = Api::start(
        ServiceConfig {
            workers,
            admission: AdmissionControl {
                max_queued,
                max_in_flight: usize::MAX,
                per_tenant_quota: usize::MAX,
            },
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        AuthConfig::open(),
    );
    let server =
        Server::start(Arc::new(api), ServerConfig::default()).map_err(|e| e.to_string())?;
    let report = loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        clients,
        requests_per_client: if quick { 4 } else { 8 },
        graph_path: graph_path.to_string_lossy().to_string(),
        gamma: 0.8,
        min_size: 6,
        wait_ms: 2_000,
    });
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    Ok(ServeOverloadResult {
        workers,
        max_queued,
        report,
    })
}

/// The whole suite run, ready to serialise.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Which PR's artefact this is (`BENCH_<pr>.json`).
    pub pr: u64,
    /// Quick (CI-sized) or full datasets.
    pub quick: bool,
    /// Timed iterations per variant.
    pub iters: usize,
    /// Machine-speed proxy: milliseconds for a fixed FNV-1a hashing loop.
    /// The gate divides wall times by the calibration ratio before
    /// comparing across machines.
    pub calibration_ms: f64,
    /// Peak RSS of the suite process (`VmHWM`), 0 where unavailable.
    pub peak_rss_bytes: u64,
    /// Per-workload rows.
    pub workloads: Vec<WorkloadResult>,
    /// The HTTP-service SLO row; `None` only when the listener could not
    /// start (no loopback in the environment — the gate then flags the
    /// missing row against a baseline that has one).
    pub serve_overload: Option<ServeOverloadResult>,
}

impl SuiteReport {
    /// Runs every workload plus the service SLO row.
    pub fn run(pr: u64, quick: bool, iters: usize) -> SuiteReport {
        let calibration_ms = calibration_ms();
        let workloads = workloads(quick)
            .iter()
            .map(|w| run_workload(w, iters))
            .collect();
        let serve_overload = match run_serve_overload(quick) {
            Ok(row) => Some(row),
            Err(e) => {
                eprintln!("bench_suite: serve_overload row skipped: {e}");
                None
            }
        };
        SuiteReport {
            pr,
            quick,
            iters,
            calibration_ms,
            peak_rss_bytes: peak_rss_bytes(),
            workloads,
            serve_overload,
        }
    }

    /// Serialises the report (see BENCH.md for the schema).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema", Json::from("qcm-bench/v1")),
            ("pr", Json::from(self.pr)),
            ("quick", Json::from(self.quick)),
            ("iters", Json::from(self.iters)),
            ("calibration_ms", Json::from(self.calibration_ms)),
            ("peak_rss_bytes", Json::from(self.peak_rss_bytes)),
            (
                "workloads",
                Json::Array(self.workloads.iter().map(workload_json).collect()),
            ),
        ];
        if let Some(row) = &self.serve_overload {
            fields.push(("serve_overload", row.to_json()));
        }
        object(fields)
    }
}

fn workload_json(w: &WorkloadResult) -> Json {
    object(vec![
        ("name", Json::from(w.name.clone())),
        ("dataset", Json::from(w.dataset.clone())),
        ("backend", Json::from(w.backend.clone())),
        ("variant", Json::from(w.variant.clone())),
        ("num_vertices", Json::from(w.num_vertices)),
        ("num_edges", Json::from(w.num_edges)),
        ("gamma", Json::from(w.gamma)),
        ("min_size", Json::from(w.min_size)),
        ("wall_ms", Json::from(w.wall_ms)),
        ("baseline_wall_ms", Json::from(w.baseline_wall_ms)),
        ("speedup", Json::from(w.speedup)),
        ("edge_queries", Json::from(w.edge_queries)),
        ("bitset_hits", Json::from(w.bitset_hits)),
        ("intersections", Json::from(w.intersections)),
        ("allocations_avoided", Json::from(w.allocations_avoided)),
        ("scratch_fresh_allocs", Json::from(w.scratch_fresh_allocs)),
        ("scratch_bytes_peak", Json::from(w.scratch_bytes_peak)),
        ("steals", Json::from(w.steals)),
        ("steal_failures", Json::from(w.steal_failures)),
        ("maximal_results", Json::from(w.maximal_results)),
        ("index_threshold", Json::from(w.index_threshold)),
        ("index_hub_vertices", Json::from(w.index_hub_vertices)),
        ("index_memory_bytes", Json::from(w.index_memory_bytes)),
        ("deterministic", Json::from(w.deterministic)),
        ("tracked", Json::from(w.tracked)),
        (
            "phase_self_time_us",
            object(
                w.phase_self_time_us
                    .iter()
                    .map(|&(kind, us)| (kind, Json::from(us)))
                    .collect(),
            ),
        ),
    ])
}

/// Machine-speed proxy: time a fixed FNV-1a loop (~16M hash steps). Pure
/// integer work, no allocation — the ratio between two machines'
/// calibrations approximates their single-core speed ratio.
pub fn calibration_ms() -> f64 {
    let start = Instant::now();
    let mut h = 0xcbf29ce484222325u64;
    for i in 0..16_000_000u64 {
        h ^= i;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Defeat dead-code elimination.
    std::hint::black_box(h);
    start.elapsed().as_secs_f64() * 1e3
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 when the platform does not expose it.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_emits_consistent_rows() {
        // One iteration of the smallest workload keeps this test cheap while
        // exercising the whole run → serialise pipeline.
        let spec = WorkloadSpec {
            name: "edge_query_hubs",
            dataset: crate::scaled::tiny(&qcm_gen::datasets::cx_gse1730()),
            backend: WorkloadBackend::Serial,
            variant: VariantAxis::Index,
            prune: PruneConfig::all_enabled(),
            deterministic: true,
            tracked: true,
        };
        let row = run_workload(&spec, 1);
        assert!(row.wall_ms > 0.0 && row.baseline_wall_ms > 0.0);
        assert!(row.edge_queries > 0, "the hot path must count edge queries");
        assert!(row.bitset_hits > 0, "auto index must hit on this dataset");
        assert!(row.intersections > 0);
        assert_eq!(row.backend, "serial");
        assert_eq!(row.variant, "index");
        let json = workload_json(&row);
        assert_eq!(
            json.get("name").and_then(Json::as_str),
            Some("edge_query_hubs")
        );
        assert_eq!(
            json.get("edge_queries").and_then(Json::as_f64),
            Some(row.edge_queries as f64)
        );
        assert_eq!(
            json.get("allocations_avoided").and_then(Json::as_f64),
            Some(row.allocations_avoided as f64)
        );
        // The traced pass ran with the recorder held under MEASURE_LOCK, so
        // the breakdown must be present and must include the mining phase.
        assert!(
            row.phase_self_time_us
                .iter()
                .any(|&(kind, _)| kind == "mine_phase"),
            "traced pass must observe mine_phase spans: {:?}",
            row.phase_self_time_us
        );
        let phases = json.get("phase_self_time_us").expect("phase map");
        assert!(phases.get("mine_phase").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn scratch_axis_row_pools_allocations_and_matches_fresh_results() {
        let spec = WorkloadSpec {
            name: "deep_recursion_arena",
            dataset: crate::scaled::tiny(&deep_recursion_spec()),
            backend: WorkloadBackend::Serial,
            variant: VariantAxis::Scratch,
            prune: PruneConfig::all_enabled().without("lookahead"),
            deterministic: true,
            tracked: true,
        };
        // run_workload panics internally if pooled and fresh disagree.
        let row = run_workload(&spec, 1);
        assert!(
            row.allocations_avoided > row.scratch_fresh_allocs,
            "steady state must be pool-served: {} avoided vs {} fresh",
            row.allocations_avoided,
            row.scratch_fresh_allocs
        );
        assert!(row.scratch_bytes_peak > 0);
    }

    #[test]
    fn workload_set_contains_the_tracked_rows() {
        for quick in [true, false] {
            let all = workloads(quick);
            assert!(all.iter().any(|w| w.tracked && w.deterministic));
            assert!(all
                .iter()
                .any(|w| matches!(w.backend, WorkloadBackend::Parallel { .. })));
            assert!(all
                .iter()
                .any(|w| w.variant == VariantAxis::Scratch && w.tracked));
            assert!(all
                .iter()
                .any(|w| w.variant == VariantAxis::Steal && w.tracked));
            let names: Vec<_> = all.iter().map(|w| w.name).collect();
            assert_eq!(names.len(), 5);
        }
    }

    #[test]
    fn serve_overload_row_sheds_with_retry_after_and_completes_the_rest() {
        let row = run_serve_overload(true).expect("loopback listener must start");
        let report = &row.report;
        assert_eq!(report.total, report.clients * 4, "quick mode: 4 per client");
        assert_eq!(
            report.errors, 0,
            "only 202 and 429 are acceptable: {report:?}"
        );
        assert_eq!(
            report.shed_without_retry_after, 0,
            "every 429 must carry Retry-After: {report:?}"
        );
        assert!(
            report.shed > 0,
            "2x closed-loop overload must shed load: {report:?}"
        );
        assert_eq!(
            report.completed + report.shed,
            report.total,
            "every request either completes or is shed: {report:?}"
        );
        assert!(report.completed > 0 && report.p99_ms > 0.0, "{report:?}");
        let json = row.to_json();
        assert!(json.get("p99_ms").and_then(Json::as_f64).is_some());
        assert!(json.get("shed_rate").and_then(Json::as_f64).is_some());
        assert_eq!(json.get("workers").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn calibration_and_rss_probes_do_not_fail() {
        assert!(calibration_ms() > 0.0);
        // 0 is allowed (non-Linux), anything else must be a sane byte count.
        let rss = peak_rss_bytes();
        assert!(rss == 0 || rss > 1024);
    }
}
