//! # qcm-bench — experiment harness for the paper's tables and figures
//!
//! This crate contains the shared machinery used by
//!
//! * the `experiments` binary (`cargo run --release -p qcm-bench --bin
//!   experiments -- <experiment>`), which regenerates every table and figure
//!   of the paper's Section 7 at the stand-in-dataset scale, and
//! * the Criterion benchmarks (`cargo bench -p qcm-bench`), which run the same
//!   experiments on further-scaled-down inputs so that `cargo bench` finishes
//!   in minutes.
//!
//! The mapping from experiment to paper artefact is documented in DESIGN.md
//! (per-experiment index) and the observed numbers are recorded in
//! EXPERIMENTS.md.

/// The hand-rolled JSON value (moved to `qcm_obs::json` so the HTTP
/// listener can share it; re-exported here for the pipeline's call sites).
pub mod json {
    pub use qcm_obs::json::*;
}
pub mod loadgen;
pub mod report;
pub mod runner;
pub mod scaled;
pub mod suite;

pub use json::Json;
pub use report::Table;
pub use runner::{run_dataset, DatasetRun, RunOptions};
pub use suite::{SuiteReport, WorkloadResult, WorkloadSpec};
