//! Closed-loop HTTP load generator for the `qcm serve` SLO row.
//!
//! Each client thread drives the real socket: `POST /v1/jobs`, then
//! long-poll `GET /v1/jobs/{id}?wait_ms=` until the job is terminal, then
//! immediately submit again — a *closed* loop, so offered concurrency
//! equals the client count and overload is controlled by outnumbering the
//! service's `workers + max_queued` capacity. A `429` (admission control
//! shedding) counts as a *shed* request, not an error: the SLO under
//! overload is "fast 429s and bounded latency for the admitted", which is
//! exactly what [`LoadGenReport`] measures (`p99_ms` over completed
//! requests, `shed_rate` over all of them).
//!
//! The generator speaks HTTP/1.1 with `Connection: close` per request —
//! deliberately the simplest correct client, so a bug in keep-alive
//! handling on the server side cannot hide in the measurement loop.

use crate::json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues before stopping.
    pub requests_per_client: usize,
    /// Server-local graph path each job mines.
    pub graph_path: String,
    /// γ submitted with every job.
    pub gamma: f64,
    /// τ_size submitted with every job.
    pub min_size: usize,
    /// Long-poll slice (`wait_ms=` query) while awaiting a terminal state.
    pub wait_ms: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            addr: String::new(),
            clients: 8,
            requests_per_client: 8,
            graph_path: String::new(),
            gamma: 0.8,
            min_size: 6,
            wait_ms: 2_000,
        }
    }
}

/// What the run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadGenReport {
    /// Clients that ran.
    pub clients: usize,
    /// Requests attempted (`clients × requests_per_client`).
    pub total: usize,
    /// Requests that reached a terminal job state.
    pub completed: usize,
    /// Requests shed by admission control (HTTP 429, with `Retry-After`).
    pub shed: usize,
    /// Transport failures and non-429 error responses.
    pub errors: usize,
    /// Median submit→terminal latency over completed requests (ms).
    pub p50_ms: f64,
    /// 99th-percentile submit→terminal latency over completed requests (ms).
    pub p99_ms: f64,
    /// `shed / total`.
    pub shed_rate: f64,
    /// 429 responses that arrived without a `Retry-After` header — must stay
    /// zero; a shed response without back-off guidance is an SLO bug.
    pub shed_without_retry_after: usize,
}

impl LoadGenReport {
    /// Serialises the report (the `serve_overload` BENCH row's fields).
    pub fn to_json(&self) -> Json {
        crate::json::object(vec![
            ("clients", Json::from(self.clients)),
            ("total", Json::from(self.total)),
            ("completed", Json::from(self.completed)),
            ("shed", Json::from(self.shed)),
            ("errors", Json::from(self.errors)),
            ("p50_ms", Json::from(self.p50_ms)),
            ("p99_ms", Json::from(self.p99_ms)),
            ("shed_rate", Json::from(self.shed_rate)),
            (
                "shed_without_retry_after",
                Json::from(self.shed_without_retry_after),
            ),
        ])
    }
}

/// One client's tally.
#[derive(Default)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    shed: usize,
    errors: usize,
    shed_without_retry_after: usize,
}

/// Runs the closed loop and aggregates every client's tally.
pub fn run(config: &LoadGenConfig) -> LoadGenReport {
    let mut handles = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let config = config.clone();
        handles.push(qcm_sync::thread::spawn(move || run_client(&config)));
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut report = LoadGenReport {
        clients: config.clients,
        total: config.clients * config.requests_per_client,
        ..LoadGenReport::default()
    };
    for handle in handles {
        let tally = handle.join().expect("load-gen client panicked");
        report.shed += tally.shed;
        report.errors += tally.errors;
        report.shed_without_retry_after += tally.shed_without_retry_after;
        latencies_ms.extend(tally.latencies_ms);
    }
    report.completed = latencies_ms.len();
    report.shed_rate = report.shed as f64 / (report.total as f64).max(1.0);
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    report.p50_ms = percentile(&latencies_ms, 50.0);
    report.p99_ms = percentile(&latencies_ms, 99.0);
    report
}

/// Nearest-rank percentile of an already-sorted slice; 0 when empty.
fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn run_client(config: &LoadGenConfig) -> ClientTally {
    let mut tally = ClientTally::default();
    let body = format!(
        "{{\"graph\":{},\"gamma\":{},\"min_size\":{}}}",
        Json::from(config.graph_path.clone()).render(),
        config.gamma,
        config.min_size
    );
    for _ in 0..config.requests_per_client {
        let started = Instant::now();
        let submitted = match request(&config.addr, "POST", "/v1/jobs", Some(&body)) {
            Ok(response) => response,
            Err(_) => {
                tally.errors += 1;
                continue;
            }
        };
        match submitted.status {
            202 => {}
            429 => {
                tally.shed += 1;
                if !submitted.has_retry_after {
                    tally.shed_without_retry_after += 1;
                }
                continue;
            }
            _ => {
                tally.errors += 1;
                continue;
            }
        }
        let Some(job) = Json::parse(&submitted.body)
            .ok()
            .and_then(|json| json.get("job").and_then(Json::as_f64))
        else {
            tally.errors += 1;
            continue;
        };
        // Long-poll until terminal; each poll blocks server-side for up to
        // `wait_ms`, so this loop spins slowly even under load.
        let path = format!("/v1/jobs/{}?wait_ms={}", job as u64, config.wait_ms);
        let mut done = false;
        while !done {
            match request(&config.addr, "GET", &path, None) {
                Ok(poll) if poll.status == 200 => {
                    done = poll.body.contains("\"outcome\":");
                }
                _ => {
                    tally.errors += 1;
                    break;
                }
            }
        }
        if done {
            tally
                .latencies_ms
                .push(started.elapsed().as_secs_f64() * 1e3);
        }
    }
    tally
}

/// A minimal parsed HTTP response.
struct HttpResponse {
    status: u16,
    has_retry_after: bool,
    body: String,
}

/// One `Connection: close` HTTP/1.1 exchange.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(raw.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&response);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response without header terminator".to_string())?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("unparseable status line in {head:?}"))?;
    let has_retry_after = head
        .lines()
        .any(|line| line.to_ascii_lowercase().starts_with("retry-after:"));
    Ok(HttpResponse {
        status,
        has_retry_after,
        body: payload.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn report_serialises_slo_fields() {
        let report = LoadGenReport {
            clients: 10,
            total: 80,
            completed: 50,
            shed: 30,
            errors: 0,
            p50_ms: 12.0,
            p99_ms: 80.0,
            shed_rate: 0.375,
            shed_without_retry_after: 0,
        };
        let rendered = report.to_json().render();
        for needle in [
            "\"p99_ms\":80",
            "\"shed_rate\":0.375",
            "\"shed\":30",
            "\"shed_without_retry_after\":0",
        ] {
            assert!(rendered.contains(needle), "{needle} missing in {rendered}");
        }
    }
}
