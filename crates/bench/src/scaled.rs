//! Scaled-down dataset variants for Criterion benchmarks and harness tests.
//!
//! `cargo bench` runs every experiment many times, so the Criterion targets
//! use these reduced specs (a few hundred to a few thousand vertices) while
//! the `experiments` binary uses the full stand-in sizes. The scaling keeps
//! the mining parameters and the structural ingredients (power-law background,
//! planted communities, hard core) intact so the qualitative shapes survive.

use qcm_gen::DatasetSpec;

/// A medium reduction (~quarter scale) used by the per-table Criterion
/// benchmarks.
pub fn bench_scale(spec: &DatasetSpec) -> DatasetSpec {
    let mut s = spec.clone();
    s.num_vertices = (s.num_vertices / 4).clamp(400, 5_000);
    s.max_degree = s.max_degree.min(s.num_vertices as f64 / 10.0).max(20.0);
    s.planted_sizes.truncate(3);
    for size in &mut s.planted_sizes {
        *size = (*size).min(s.min_size + 3).max(s.min_size);
    }
    s.hard_core = s.hard_core.map(|(size, p)| (size.min(30), p.min(0.62)));
    s
}

/// A strong reduction used by unit tests of the harness itself.
pub fn tiny(spec: &DatasetSpec) -> DatasetSpec {
    let mut s = spec.clone();
    s.num_vertices = s.num_vertices.min(500);
    s.max_degree = s.max_degree.min(50.0);
    s.planted_sizes.truncate(2);
    for size in &mut s.planted_sizes {
        *size = (*size).min(s.min_size + 2).max(s.min_size);
    }
    s.hard_core = s.hard_core.map(|(size, p)| (size.min(18), p.min(0.58)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_mining_parameters() {
        for spec in qcm_gen::datasets::all_datasets() {
            for scaled in [bench_scale(&spec), tiny(&spec)] {
                assert_eq!(scaled.gamma, spec.gamma);
                assert_eq!(scaled.min_size, spec.min_size);
                assert!(scaled.num_vertices <= spec.num_vertices);
                assert!(!scaled.planted_sizes.is_empty());
                for size in &scaled.planted_sizes {
                    assert!(*size >= scaled.min_size);
                }
            }
        }
    }

    #[test]
    fn scaled_datasets_generate() {
        let spec = tiny(&qcm_gen::datasets::youtube());
        let ds = spec.generate();
        assert_eq!(ds.graph.num_vertices(), spec.num_vertices);
        assert!(!ds.planted.is_empty());
    }
}
