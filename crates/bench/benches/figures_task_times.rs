//! Figures 1–3 (Criterion version): per-task time distributions on the
//! YouTube stand-in at benchmark scale.
//!
//! Criterion measures the end-to-end run; the distribution itself (the actual
//! content of the figures) is printed once to stderr so it can be captured in
//! EXPERIMENTS.md without affecting the timing samples.

use criterion::{criterion_group, criterion_main, Criterion};
use qcm_bench::runner::{run_dataset, RunOptions};
use qcm_bench::scaled;

fn bench_figures(c: &mut Criterion) {
    let spec = scaled::bench_scale(&qcm_gen::datasets::youtube());

    // One informational pass: print the per-root time skew (Figures 1–2) and
    // the time-vs-size pairs of the largest tasks (Figure 3).
    let run = run_dataset(&spec, &RunOptions::default());
    let totals = run.metrics.per_root_totals();
    if let (Some(slowest), Some(fastest)) = (totals.first(), totals.last()) {
        eprintln!(
            "[fig1/2] {} spawning vertices; slowest root {:?} took {:?}, fastest {:?} took {:?}",
            totals.len(),
            slowest.0,
            slowest.1,
            fastest.0,
            fastest.1
        );
    }
    let mut by_size = run.metrics.task_times.clone();
    by_size.sort_by_key(|r| std::cmp::Reverse(r.subgraph_size));
    for rec in by_size.iter().take(5) {
        eprintln!(
            "[fig3] subgraph |V|={} time={:?}",
            rec.subgraph_size, rec.elapsed
        );
    }

    let mut group = c.benchmark_group("figures_task_times");
    group.sample_size(10);
    group.bench_function("youtube_standin_full_run", |b| {
        b.iter(|| run_dataset(&spec, &RunOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
