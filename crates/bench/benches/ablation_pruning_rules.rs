//! Ablation benchmark: the cost of disabling each pruning-rule family, plus
//! the Quick baseline, on a small planted dataset (serial miner).
//!
//! This supports the paper's claims that (a) the k-core/size-threshold rule is
//! the dominating factor in scaling beyond small graphs (topic T1) and (b) the
//! bound-based rules carry most of the remaining pruning power.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcm_core::{quick_mine, MiningParams, PruneConfig, SerialMiner};
use qcm_gen::PlantedGraphSpec;

fn bench_ablation(c: &mut Criterion) {
    let spec = PlantedGraphSpec {
        num_vertices: 1_200,
        background_avg_degree: 8.0,
        background_beta: 2.5,
        background_max_degree: 90.0,
        community_sizes: vec![14, 12, 11, 10],
        community_density: 0.9,
        seed: 4242,
    };
    let (graph, _) = qcm_gen::plant_quasi_cliques(&spec);
    let params = MiningParams::new(0.8, 10);

    let mut group = c.benchmark_group("ablation_pruning_rules");
    group.sample_size(10);

    group.bench_function("all_rules", |b| {
        b.iter(|| SerialMiner::new(params).mine(&graph))
    });
    for rule in PruneConfig::rule_names() {
        let config = PruneConfig::all_enabled().without(rule);
        group.bench_with_input(BenchmarkId::new("without", rule), &config, |b, config| {
            b.iter(|| SerialMiner::with_config(params, *config).mine(&graph))
        });
    }
    group.bench_function("quick_baseline", |b| b.iter(|| quick_mine(&graph, params)));
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
