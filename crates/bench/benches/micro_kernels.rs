//! Micro-benchmarks of the building blocks: k-core peeling, two-hop
//! neighborhood extraction, degree bookkeeping, the iterative bounding loop
//! and cover-vertex selection. These are the inner loops whose cost the
//! algorithm-level design decisions (T1–T6 of the paper) trade against each
//! other.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qcm_core::cover::find_cover_vertex;
use qcm_core::degrees::compute_degrees;
use qcm_core::{iterative_bounding, two_hop_local, MiningContext, MiningParams, QuasiCliqueSet};
use qcm_graph::{kcore, LocalGraph, VertexId};

fn fixture() -> (qcm_graph::Graph, LocalGraph) {
    let spec = qcm_gen::PlantedGraphSpec {
        num_vertices: 3_000,
        background_avg_degree: 8.0,
        background_beta: 2.4,
        background_max_degree: 150.0,
        community_sizes: vec![20, 18, 15],
        community_density: 0.9,
        seed: 99,
    };
    let (graph, _) = qcm_gen::plant_quasi_cliques(&spec);
    let all: Vec<VertexId> = graph.vertices().collect();
    let local = LocalGraph::from_induced(&graph, &all);
    (graph, local)
}

fn bench_micro_kernels(c: &mut Criterion) {
    let (graph, local) = fixture();
    let params = MiningParams::new(0.8, 10);
    let hub = graph
        .vertices()
        .max_by_key(|&v| graph.degree(v))
        .expect("non-empty graph");

    let mut group = c.benchmark_group("micro_kernels");
    group.sample_size(20);

    group.bench_function("kcore_peeling", |b| {
        b.iter(|| kcore::core_numbers(black_box(&graph)))
    });

    group.bench_function("two_hop_neighborhood_hub", |b| {
        b.iter(|| two_hop_local(black_box(&local), black_box(hub.raw())))
    });

    let hub_ext: Vec<u32> = two_hop_local(&local, hub.raw())
        .into_iter()
        .filter(|&u| u > hub.raw())
        .collect();
    let s = vec![hub.raw()];

    group.bench_function("degree_bookkeeping", |b| {
        b.iter(|| compute_degrees(black_box(&local), black_box(&s), black_box(&hub_ext)))
    });

    group.bench_function("cover_vertex_selection", |b| {
        b.iter(|| find_cover_vertex(black_box(&local), &s, &hub_ext, &params))
    });

    group.bench_function("iterative_bounding_hub_candidate", |b| {
        b.iter(|| {
            let mut sink = QuasiCliqueSet::new();
            let mut ctx = MiningContext::new(&local, params, &mut sink);
            let mut s = s.clone();
            let mut ext = hub_ext.clone();
            iterative_bounding(&mut ctx, &mut s, &mut ext)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_micro_kernels);
criterion_main!(benches);
