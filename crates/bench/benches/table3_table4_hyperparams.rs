//! Tables 3 and 4 (Criterion version): the effect of the decomposition
//! hyperparameters (τ_time, τ_split) on running time, on the CX_GSE10158 and
//! Hyves stand-ins at benchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcm_bench::runner::{run_dataset, RunOptions};
use qcm_bench::scaled;
use std::time::Duration;

fn bench_hyperparams(c: &mut Criterion) {
    for (table, dataset) in [
        ("table3_gse10158", qcm_gen::datasets::cx_gse10158()),
        ("table4_hyves", qcm_gen::datasets::hyves()),
    ] {
        let spec = scaled::bench_scale(&dataset);
        let mut group = c.benchmark_group(table);
        group.sample_size(10);
        for tau_time_ms in [20u64, 1, 0] {
            for tau_split in [500usize, 50] {
                let options = RunOptions {
                    tau_time: Some(Duration::from_millis(tau_time_ms)),
                    tau_split: Some(tau_split),
                    ..Default::default()
                };
                let id = BenchmarkId::new(
                    format!("tau_time_{tau_time_ms}ms"),
                    format!("tau_split_{tau_split}"),
                );
                group.bench_with_input(id, &options, |b, options| {
                    b.iter(|| run_dataset(&spec, options))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hyperparams);
criterion_main!(benches);
