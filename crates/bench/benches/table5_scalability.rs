//! Table 5 (Criterion version): vertical scalability (threads per machine)
//! and horizontal scalability (number of simulated machines) on the Enron
//! stand-in at benchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcm_bench::runner::{run_dataset, RunOptions};
use qcm_bench::scaled;

fn bench_scalability(c: &mut Criterion) {
    let spec = scaled::bench_scale(&qcm_gen::datasets::enron());

    let mut group = c.benchmark_group("table5a_vertical");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let options = RunOptions {
            machines: 1,
            threads_per_machine: threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &options,
            |b, options| b.iter(|| run_dataset(&spec, options)),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("table5b_horizontal");
    group.sample_size(10);
    for machines in [1usize, 2, 4, 8] {
        let options = RunOptions {
            machines,
            threads_per_machine: 2,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(machines),
            &options,
            |b, options| b.iter(|| run_dataset(&spec, options)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
