//! Table 6 (Criterion version): job time as τ_time shrinks on the Hyves
//! stand-in, plus a one-shot print of the mining : materialisation time ratio
//! (the column the paper uses to argue that decomposition overhead is
//! negligible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcm_bench::runner::{run_dataset, RunOptions};
use qcm_bench::scaled;
use std::time::Duration;

fn bench_decomposition_cost(c: &mut Criterion) {
    let spec = scaled::bench_scale(&qcm_gen::datasets::hyves());

    // One informational pass outside the measurement loop: print the ratio so
    // the bench output can be pasted into EXPERIMENTS.md.
    for tau_time_ms in [50u64, 1, 0] {
        let options = RunOptions {
            tau_time: Some(Duration::from_millis(tau_time_ms)),
            ..Default::default()
        };
        let run = run_dataset(&spec, &options);
        eprintln!(
            "[table6] tau_time={tau_time_ms}ms job={:?} mining={:?} materialization={:?} ratio={}",
            run.elapsed,
            run.metrics.total_mining_time,
            run.metrics.total_materialization_time,
            run.metrics
                .mining_materialization_ratio()
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "inf".to_string()),
        );
    }

    let mut group = c.benchmark_group("table6_decomposition_cost");
    group.sample_size(10);
    for tau_time_ms in [50u64, 10, 1, 0] {
        let options = RunOptions {
            tau_time: Some(Duration::from_millis(tau_time_ms)),
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("tau_time_{tau_time_ms}ms")),
            &options,
            |b, options| b.iter(|| run_dataset(&spec, options)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition_cost);
criterion_main!(benches);
