//! Table 2 (Criterion version): end-to-end parallel mining of every dataset
//! stand-in at benchmark scale, using each dataset's own (γ, τ_size, τ_split,
//! τ_time) parameters from the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use qcm_bench::runner::{run_dataset, RunOptions};
use qcm_bench::scaled;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_all_datasets");
    group.sample_size(10);
    for spec in qcm_gen::datasets::all_datasets() {
        let spec = scaled::bench_scale(&spec);
        group.bench_function(spec.name, |b| {
            b.iter(|| run_dataset(&spec, &RunOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
