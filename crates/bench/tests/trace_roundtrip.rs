//! Round-trip tests for the observability pipeline: a traced `Session` run
//! must yield a `Trace` whose Chrome export parses back as well-formed JSON
//! (via the bench suite's own parser — the same code path `bench_gate` uses)
//! with every span kind intact and zero dropped events.

use qcm::prelude::*;
use qcm_bench::Json;
use qcm_sync::{Arc, Mutex};

/// The span recorder is a process-wide singleton: concurrent traced runs in
/// one test binary would steal it from each other (the loser's report gets
/// `trace: None`). One lock serialises the traced tests here.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn planted() -> Arc<Graph> {
    let spec = PlantedGraphSpec {
        num_vertices: 300,
        background_avg_degree: 4.0,
        background_beta: 2.5,
        background_max_degree: 30.0,
        community_sizes: vec![9, 8],
        community_density: 0.95,
        seed: 1234,
    };
    let (graph, _) = qcm::gen::plant_quasi_cliques(&spec);
    Arc::new(graph)
}

fn traced_run(threads: usize, machines: usize) -> (Trace, usize) {
    let graph = planted();
    let report = Session::builder()
        .gamma(0.8)
        .min_size(8)
        .tracing(TraceConfig::default())
        .backend(Backend::parallel(threads, machines))
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    let trace = report
        .trace
        .expect("recorder was free, so the traced session must yield a trace");
    (trace, report.maximal.len())
}

#[test]
fn traced_session_records_the_span_taxonomy() {
    let _serialised = RECORDER_LOCK.lock();
    let (trace, found) = traced_run(2, 2);
    assert!(found > 0, "the planted communities must be mined");
    assert_eq!(trace.dropped, 0, "default capacity must not drop spans");
    assert_eq!(trace.count(SpanKind::Run), 1, "exactly one run span");
    assert!(trace.count(SpanKind::MinePhase) >= 1);
    assert!(trace.count(SpanKind::Task) >= 1);
    // Every span closed before `finish_recording`, so durations and
    // containment are coherent: each non-run span falls inside the run span.
    let run = trace
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Run)
        .unwrap();
    let run_end = run.start_us + run.dur_us;
    for span in &trace.spans {
        assert!(
            span.start_us >= run.start_us && span.start_us + span.dur_us <= run_end,
            "{:?} span escapes the run interval",
            span.kind
        );
    }
}

#[test]
fn untraced_session_reports_no_trace() {
    let graph = planted();
    let report = Session::builder()
        .gamma(0.8)
        .min_size(8)
        .build()
        .unwrap()
        .run(&graph)
        .unwrap();
    assert!(report.trace.is_none());
}

#[test]
fn chrome_export_parses_back_wellformed() {
    let _serialised = RECORDER_LOCK.lock();
    let (trace, _) = traced_run(2, 2);
    let rendered = qcm_obs::chrome::render(&trace);
    let json = Json::parse(&rendered).expect("chrome export must be valid JSON");

    let events = json
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("top-level traceEvents array");
    // Per-machine metadata lanes plus one X event per span.
    let (mut meta, mut complete) = (0usize, 0usize);
    let mut mine_phase_events = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(event.get("pid").and_then(Json::as_f64).is_some());
        assert!(event.get("tid").and_then(Json::as_f64).is_some());
        let name = event.get("name").and_then(Json::as_str).expect("name");
        match ph {
            "M" => {
                meta += 1;
                assert_eq!(name, "process_name");
                assert!(event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("machine ")));
            }
            "X" => {
                complete += 1;
                assert!(event.get("ts").and_then(Json::as_f64).is_some());
                assert!(event.get("dur").and_then(Json::as_f64).is_some());
                if name == "mine_phase" {
                    mine_phase_events += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, trace.spans.len(), "one X event per span");
    assert!(meta >= 2, "two simulated machines need two named lanes");
    assert!(mine_phase_events >= 1, "mine_phase spans must export");
}
