//! The quasi-clique G-thinker application (the two UDFs of Algorithms 4–5).

use crate::iterations::{iteration_1, iteration_2};
use crate::mine::{run_mine_phase, DecompositionStrategy, MinePhaseParams};
use crate::task::{QCTask, TaskPhase};
use qcm_core::{CancelToken, MiningParams, PruneConfig};
use qcm_engine::{ComputeContext, Frontier, GThinkerApp, TaskLabel};
use qcm_graph::{IndexSpec, VertexId};
use std::time::Duration;

/// The maximal quasi-clique mining application, parameterised by the mining
/// thresholds and the task-decomposition hyperparameters of Table 2.
#[derive(Clone, Debug)]
pub struct QuasiCliqueApp {
    /// Mining parameters (γ, τ_size).
    pub params: MiningParams,
    /// Pruning-rule configuration (all rules on by default).
    pub prune_config: PruneConfig,
    /// Big-task threshold τ_split.
    pub tau_split: usize,
    /// Decomposition timeout τ_time.
    pub tau_time: Duration,
    /// Decomposition strategy (time-delayed by default, per the paper).
    pub strategy: DecompositionStrategy,
    /// Cooperative cancellation threaded into every mining-phase context.
    pub cancel: CancelToken,
    /// Hybrid bitset neighborhood index built over each mining task's
    /// materialised subgraph (Auto by default).
    pub index: IndexSpec,
}

impl QuasiCliqueApp {
    /// Creates the application with the paper's default strategy
    /// (time-delayed decomposition) and all pruning rules enabled.
    pub fn new(params: MiningParams, tau_split: usize, tau_time: Duration) -> Self {
        QuasiCliqueApp {
            params,
            prune_config: PruneConfig::all_enabled(),
            tau_split,
            tau_time,
            strategy: DecompositionStrategy::TimeDelayed,
            cancel: CancelToken::never(),
            index: IndexSpec::Auto,
        }
    }

    /// Switches to the simple size-threshold decomposition (Algorithm 8),
    /// used as the baseline in the τ_time ablation.
    pub fn with_strategy(mut self, strategy: DecompositionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the pruning configuration.
    pub fn with_prune_config(mut self, config: PruneConfig) -> Self {
        self.prune_config = config;
        self
    }

    /// Attaches a cancellation token polled inside the mining phase, so big
    /// tasks stop mid-backtrack when the run is cancelled or its deadline
    /// passes.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Chooses the per-task hub index policy (default [`IndexSpec::Auto`]);
    /// results are identical with the index on or off.
    pub fn with_index(mut self, index: IndexSpec) -> Self {
        self.index = index;
        self
    }

    fn mine_phase_params(&self) -> MinePhaseParams {
        MinePhaseParams {
            params: self.params,
            config: self.prune_config,
            tau_split: self.tau_split,
            tau_time: self.tau_time,
            strategy: self.strategy,
            cancel: self.cancel.clone(),
            index: self.index,
        }
    }
}

impl GThinkerApp for QuasiCliqueApp {
    type Task = QCTask;

    /// Algorithm 4: spawn a task from `v` if its degree reaches
    /// `k = ⌈γ(τ_size − 1)⌉`, pulling its larger-id neighbors.
    fn spawn(&self, v: VertexId, adj: &[VertexId], ctx: &mut ComputeContext<Self::Task>) {
        let k = self.params.kcore_threshold();
        if adj.len() < k {
            return;
        }
        let larger: Vec<VertexId> = adj.iter().copied().filter(|&u| u > v).collect();
        if larger.is_empty() {
            // A quasi-clique whose smallest vertex is v needs at least
            // τ_size − 1 larger members; with none available the task would
            // terminate in its first iteration anyway.
            return;
        }
        ctx.add_task(QCTask::spawned(v, larger));
    }

    fn pending_pulls<'t>(&self, task: &'t Self::Task) -> &'t [VertexId] {
        &task.pull_targets
    }

    /// Algorithm 5: dispatch on the task's iteration.
    fn compute(
        &self,
        task: &mut Self::Task,
        frontier: &Frontier,
        ctx: &mut ComputeContext<Self::Task>,
    ) -> bool {
        let k = self.params.kcore_threshold();
        match task.phase {
            TaskPhase::FirstHop => iteration_1(task, frontier, k),
            TaskPhase::SecondHop => {
                // Iteration 2 performs no pulls, so returning `true` makes the
                // engine run iteration 3 immediately (the paper's "G-thinker
                // will schedule t to run Iteration 3 right away").
                iteration_2(task, frontier, k)
            }
            TaskPhase::Mine => {
                let outcome = run_mine_phase(task, &self.mine_phase_params(), &mut ctx.scratch);
                for r in outcome.results {
                    ctx.emit(r);
                }
                for sub in outcome.subtasks {
                    ctx.add_task(sub);
                }
                ctx.timings.mining += outcome.mining_time;
                ctx.timings.materialization += outcome.materialization_time;
                ctx.interrupted |= outcome.interrupted;
                false
            }
        }
    }

    fn is_big(&self, task: &Self::Task) -> bool {
        task.size_measure() > self.tau_split
    }

    fn task_memory_bytes(&self, task: &Self::Task) -> usize {
        64 + task.subgraph.memory_bytes()
            + 4 * (task.pull_targets.len() + task.one_hop.len() + task.s.len() + task.ext.len())
    }

    fn task_label(&self, task: &Self::Task) -> TaskLabel {
        TaskLabel {
            root: Some(task.root),
            subgraph_size: task
                .subgraph
                .num_vertices()
                .max(task.s.len() + task.ext.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_filters_by_degree_and_larger_neighbors() {
        let app = QuasiCliqueApp::new(MiningParams::new(0.9, 4), 100, Duration::from_millis(10));
        // k = ⌈0.9·3⌉ = 3.
        let mut ctx = ComputeContext::new();
        app.spawn(
            VertexId::new(5),
            &[VertexId::new(1), VertexId::new(2)],
            &mut ctx,
        );
        assert!(ctx.new_tasks.is_empty(), "degree 2 < k must not spawn");

        let mut ctx = ComputeContext::new();
        app.spawn(
            VertexId::new(5),
            &[VertexId::new(1), VertexId::new(2), VertexId::new(3)],
            &mut ctx,
        );
        assert!(
            ctx.new_tasks.is_empty(),
            "no larger neighbor means the task would die instantly"
        );

        let mut ctx = ComputeContext::new();
        app.spawn(
            VertexId::new(5),
            &[VertexId::new(6), VertexId::new(7), VertexId::new(8)],
            &mut ctx,
        );
        assert_eq!(ctx.new_tasks.len(), 1);
        assert_eq!(ctx.new_tasks[0].pull_targets.len(), 3);
        assert_eq!(app.pending_pulls(&ctx.new_tasks[0]).len(), 3);
    }

    #[test]
    fn big_task_classification_uses_tau_split() {
        let app = QuasiCliqueApp::new(MiningParams::new(0.8, 3), 2, Duration::from_millis(1));
        let small = QCTask::spawned(VertexId::new(0), vec![VertexId::new(1)]);
        assert!(!app.is_big(&small));
        let big = QCTask::spawned(
            VertexId::new(0),
            vec![VertexId::new(1), VertexId::new(2), VertexId::new(3)],
        );
        assert!(app.is_big(&big));
        assert!(app.task_memory_bytes(&big) > 0);
        assert_eq!(app.task_label(&big).root, Some(VertexId::new(0)));
    }
}
