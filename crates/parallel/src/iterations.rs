//! Iterations 1 and 2 of the quasi-clique compute UDF (Algorithms 6–7).
//!
//! These two iterations build the task subgraph `t.g`: the k-core of the
//! spawning vertex's two-hop neighborhood restricted to larger vertex ids.
//! Iteration 1 integrates the first-hop adjacency lists and requests the
//! second-hop vertices; iteration 2 integrates those, shrinks to the k-core
//! and forms the candidate `⟨S = {v}, ext(S) = V(t.g) − v⟩` for iteration 3.

use crate::task::{QCTask, TaskPhase};
use qcm_engine::Frontier;
use qcm_graph::VertexId;

/// Algorithm 6: processes the pulled first-hop adjacency lists.
///
/// Returns `false` when the task can terminate (the spawning vertex was
/// peeled away), `true` when the task should proceed to iteration 2 (its
/// `pull_targets` now name the second-hop vertices).
pub fn iteration_1(task: &mut QCTask, frontier: &Frontier, k: usize) -> bool {
    let root = task.root;

    // Line 2: t.N ← V(frontier) ∪ {v}. Only larger-id neighbors were pulled,
    // which is exactly the slice of the graph this task is responsible for.
    let mut one_hop: Vec<VertexId> = frontier.iter().map(|(v, _)| v).collect();
    one_hop.push(root);
    one_hop.sort_unstable();
    task.one_hop = one_hop;

    // Lines 3–4: split the pulled vertices by the degree threshold k.
    let mut low_degree: Vec<VertexId> = Vec::new();
    let mut kept: Vec<(VertexId, Vec<VertexId>)> = Vec::new();
    for (u, adj) in frontier.iter() {
        if adj.len() >= k {
            kept.push((u, adj.to_vec()));
        } else {
            low_degree.push(u);
        }
    }
    low_degree.sort_unstable();

    // Lines 5–9: t.g holds V1 ∪ {v}; adjacency lists keep only destinations
    // w ≥ v that are not in the low-degree set V2. Destinations two hops from
    // v stay (they are counted for the degree check but cannot be peeled yet).
    let root_adj: Vec<VertexId> = task
        .pull_targets
        .iter()
        .copied()
        .filter(|w| low_degree.binary_search(w).is_err())
        .collect();
    task.subgraph.insert(root, root_adj);
    for (u, adj) in kept {
        let filtered: Vec<VertexId> = adj
            .into_iter()
            .filter(|&w| w >= root && low_degree.binary_search(&w).is_err())
            .collect();
        task.subgraph.insert(u, filtered);
    }

    // Line 10: shrink to the k-core (only materialised vertices are peelable).
    task.subgraph.peel(k, |_| true);

    // Line 11: the task is only useful if the spawning vertex survived.
    if !task.subgraph.contains(root) {
        task.pull_targets.clear();
        return false;
    }

    // Lines 12–15: request the second-hop vertices (w > v, not already within
    // one hop).
    let mut second_hop: Vec<VertexId> = Vec::new();
    for (_, nbrs) in &task.subgraph.adj {
        for &w in nbrs {
            if w > root && task.one_hop.binary_search(&w).is_err() {
                second_hop.push(w);
            }
        }
    }
    second_hop.sort_unstable();
    second_hop.dedup();
    task.pull_targets = second_hop;
    task.phase = TaskPhase::SecondHop;
    true
}

/// Algorithm 7: processes the pulled second-hop adjacency lists and finalises
/// the task subgraph.
///
/// Returns `false` when the task can terminate (the spawning vertex was
/// peeled), `true` when the candidate is ready for iteration 3. Iteration 2
/// performs no pulls, so the engine immediately advances to iteration 3.
pub fn iteration_2(task: &mut QCTask, frontier: &Frontier, k: usize) -> bool {
    let root = task.root;

    // Line 2: B ← V(frontier) ∪ t.N — every vertex within two hops of v.
    let mut within_two_hops: Vec<VertexId> = frontier.iter().map(|(v, _)| v).collect();
    within_two_hops.extend_from_slice(&task.one_hop);
    within_two_hops.sort_unstable();
    within_two_hops.dedup();

    // Lines 3–8: add second-hop vertices of degree ≥ k; their adjacency lists
    // keep only destinations w ≥ v within two hops of v.
    for (u, adj) in frontier.iter() {
        if adj.len() >= k {
            let filtered: Vec<VertexId> = adj
                .iter()
                .copied()
                .filter(|&w| w >= root && within_two_hops.binary_search(&w).is_ok())
                .collect();
            task.subgraph.insert(u, filtered);
        }
    }

    // Line 9: exact k-core of the assembled subgraph. Destinations that never
    // became vertices (dropped second-hop vertices, third-hop fringe) are
    // removed from adjacency lists first so the peeling uses true degrees.
    task.subgraph.retain_internal_edges();
    task.subgraph.peel(k, |_| true);

    // Line 10.
    if !task.subgraph.contains(root) {
        task.pull_targets.clear();
        return false;
    }

    // Lines 11–12: the candidate for iteration 3.
    task.s = vec![root];
    task.ext = task
        .subgraph
        .adj
        .iter()
        .map(|(v, _)| *v)
        .filter(|&v| v != root)
        .collect();
    task.pull_targets.clear();
    task.phase = TaskPhase::Mine;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::Graph;
    use qcm_sync::Arc;

    /// Figure 4 graph of the paper.
    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    fn v(id: u32) -> VertexId {
        VertexId::new(id)
    }

    /// Builds a frontier holding Γ(u) for each requested vertex.
    fn frontier_for(g: &Graph, pulls: &[VertexId]) -> Frontier {
        let mut f = Frontier::new();
        for &u in pulls {
            f.insert(u, Arc::new(g.neighbors(u).to_vec()));
        }
        f
    }

    /// Runs iterations 1 and 2 for the task spawned from `root`, returning the
    /// task if it survives.
    fn build_task(g: &Graph, root: u32, k: usize) -> Option<QCTask> {
        let root = v(root);
        let larger: Vec<VertexId> = g
            .neighbors(root)
            .iter()
            .copied()
            .filter(|&u| u > root)
            .collect();
        let mut task = QCTask::spawned(root, larger);
        let f1 = frontier_for(g, &task.pull_targets);
        if !iteration_1(&mut task, &f1, k) {
            return None;
        }
        let f2 = frontier_for(g, &task.pull_targets);
        if !iteration_2(&mut task, &f2, k) {
            return None;
        }
        Some(task)
    }

    #[test]
    fn vertex_a_task_covers_the_dense_region() {
        // γ = 0.6, τ_size = 5 → k = ⌈0.6·4⌉ = 3. The task spawned from a must
        // end with subgraph {a, b, c, d, e} (the only 3-core among larger-id
        // vertices reachable within 2 hops).
        let g = figure4();
        let task = build_task(&g, 0, 3).expect("task for a must survive");
        assert_eq!(task.phase, TaskPhase::Mine);
        let vertices: Vec<u32> = task.subgraph.adj.iter().map(|(u, _)| u.raw()).collect();
        assert_eq!(vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(task.s, vec![v(0)]);
        assert_eq!(task.ext, vec![v(1), v(2), v(3), v(4)]);
    }

    #[test]
    fn peripheral_vertex_task_terminates_early() {
        // Vertex f (5) only reaches g (6) among larger ids; with k = 3 its
        // subgraph peels away entirely.
        let g = figure4();
        assert!(build_task(&g, 5, 3).is_none());
        // Vertex i (8) has no larger neighbor at all: spawn would create a
        // task whose first iteration kills it.
        assert!(build_task(&g, 8, 3).is_none());
    }

    #[test]
    fn later_roots_only_see_larger_vertices() {
        // The task spawned from c (2) must not contain a (0) or b (1) even
        // though they are adjacent — smaller ids belong to other tasks.
        let g = figure4();
        if let Some(task) = build_task(&g, 2, 2) {
            for (u, nbrs) in &task.subgraph.adj {
                assert!(u.raw() >= 2);
                for w in nbrs {
                    assert!(w.raw() >= 2);
                }
            }
        }
    }

    #[test]
    fn root_without_enough_larger_neighbors_terminates() {
        // With k = 3, vertex b (1) has only two larger-id neighbors that could
        // ever support it (c and e — f is filtered by its total degree 2 < 3),
        // so the k-core peel of iteration 1 removes b and the task ends: a
        // quasi-clique whose *smallest* member is b would need b to have ≥ 3
        // larger neighbors.
        let g = figure4();
        assert!(build_task(&g, 1, 3).is_none());
        // With k = 2 the same root survives and keeps f out of ext only if f
        // is peeled; at k = 2 f qualifies, so it may appear — the important
        // invariant is that every kept vertex has id ≥ b.
        if let Some(task) = build_task(&g, 1, 2) {
            assert!(task.subgraph.adj.iter().all(|(u, _)| u.raw() >= 1));
        }
    }

    #[test]
    fn second_hop_pull_targets_exclude_one_hop_vertices() {
        let g = figure4();
        let root = v(0);
        let larger: Vec<VertexId> = g.neighbors(root).to_vec();
        let mut task = QCTask::spawned(root, larger);
        let f1 = frontier_for(&g, &task.pull_targets);
        assert!(iteration_1(&mut task, &f1, 3));
        for w in &task.pull_targets {
            assert!(task.one_hop.binary_search(w).is_err());
            assert!(*w > root);
        }
    }
}
