//! Iteration 3: mining and task decomposition (Algorithms 8–10).
//!
//! A mining-phase task holds a materialised subgraph and a candidate
//! `⟨S, ext(S)⟩`. Two decomposition strategies are implemented:
//!
//! * [`DecompositionStrategy::SizeThreshold`] — Algorithm 8: if
//!   `|ext(S)| ≤ τ_split` the task is mined in place with the serial
//!   recursion, otherwise one subtask per (surviving) extension vertex is
//!   created immediately.
//! * [`DecompositionStrategy::TimeDelayed`] — Algorithms 9–10: the task mines
//!   its subgraph by backtracking until `τ_time` elapses, after which every
//!   remaining (unpruned) subtree is wrapped into a new task with a smaller
//!   materialised subgraph. This is the paper's headline technique: cheap
//!   tasks finish before the timeout and never pay decomposition overhead,
//!   expensive tasks are split at whatever granularity they have reached.
//!
//! The subgraph-materialisation time of creating subtasks is measured
//! separately from the mining time; the ratio is Table 6 of the paper.

use crate::task::{QCTask, TaskGraph};
use qcm_core::recursive_mine::{cover_prune_prefix, shrink_by_diameter};
use qcm_core::{
    is_quasi_clique_local, iterative_bounding, recursive_mine, CancelToken, MiningContext,
    MiningParams, MiningScratch, MiningStats, PruneConfig, QuasiCliqueSet,
};
use qcm_graph::{IndexSpec, LocalGraph, VertexId};
use qcm_obs::clock::Instant;
use std::collections::HashMap;
use std::time::Duration;

/// How a big mining task is decomposed into subtasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecompositionStrategy {
    /// Algorithm 8: decompose whenever `|ext(S)| > τ_split`.
    SizeThreshold,
    /// Algorithms 9–10: mine for `τ_time`, then decompose what remains.
    TimeDelayed,
}

/// The outcome of running iteration 3 on one task.
#[derive(Debug, Default)]
pub struct MineOutcome {
    /// Quasi-cliques reported by this task (global ids, possibly non-maximal).
    pub results: Vec<Vec<VertexId>>,
    /// Subtasks to hand back to the engine.
    pub subtasks: Vec<QCTask>,
    /// Time spent on actual mining (backtracking + pruning).
    pub mining_time: Duration,
    /// Time spent materialising subtask subgraphs.
    pub materialization_time: Duration,
    /// Search/pruning statistics of this task.
    pub stats: MiningStats,
    /// True if this task's backtracking observed the cancellation token fired
    /// and stopped early (its subtree coverage is incomplete).
    pub interrupted: bool,
}

/// Parameters threaded through the mining phase.
#[derive(Clone, Debug)]
pub struct MinePhaseParams {
    /// Mining parameters (γ, τ_size).
    pub params: MiningParams,
    /// Pruning-rule configuration.
    pub config: PruneConfig,
    /// Big-task threshold τ_split.
    pub tau_split: usize,
    /// Decomposition timeout τ_time.
    pub tau_time: Duration,
    /// Decomposition strategy.
    pub strategy: DecompositionStrategy,
    /// Cooperative cancellation polled inside the backtracking loops, so a
    /// long-running task stops mid-subgraph instead of running to completion.
    pub cancel: CancelToken,
    /// Hub-index policy for the task's materialised subgraph.
    pub index: IndexSpec,
}

/// Runs iteration 3 for `task`. `scratch` is the calling worker's arena: it
/// is moved into the mining context for the duration of the phase and handed
/// back afterwards, so the recursion frames warmed up by one task serve the
/// worker's next task without reallocating.
pub fn run_mine_phase(
    task: &QCTask,
    phase: &MinePhaseParams,
    scratch: &mut MiningScratch,
) -> MineOutcome {
    let started = Instant::now();
    // One mine_phase span per task timeslice; the payload is the root vertex.
    let _phase_span = qcm_obs::span_with(qcm_obs::SpanKind::MinePhase, task.root.raw() as u64);
    let mut outcome = MineOutcome::default();

    let (mut graph, index) = task.subgraph.to_local_graph();
    // One hub-index build per task, amortised over the whole backtracking
    // below (and over the induced child subgraphs' construction).
    graph.build_hub_index(phase.index);
    let graph = graph;
    let to_local = |v: &VertexId| index.get(v).copied();
    let s_local: Vec<u32> = task.s.iter().filter_map(&to_local).collect();
    let mut ext_local: Vec<u32> = task.ext.iter().filter_map(to_local).collect();
    if s_local.len() != task.s.len() {
        // Some S member is missing from the materialised subgraph; nothing to
        // mine (can only happen with an empty/over-pruned subgraph).
        return outcome;
    }

    let mut sink = QuasiCliqueSet::new();
    let mut collector = SubtaskCollector {
        parent: task,
        graph: &graph,
        subtasks: Vec::new(),
        materialization_time: Duration::ZERO,
    };

    {
        let mut ctx = MiningContext::with_config(&graph, phase.params, phase.config, &mut sink);
        ctx.cancel = phase.cancel.clone();
        ctx.scratch = std::mem::take(scratch);
        ctx.stats.tasks_processed = 1;

        if ext_local.is_empty() {
            // Nothing to extend: G(S) itself may still be a result.
            ctx.report_if_valid(&s_local);
        } else {
            match phase.strategy {
                DecompositionStrategy::SizeThreshold => {
                    if ext_local.len() <= phase.tau_split {
                        recursive_mine(&mut ctx, &s_local, &mut ext_local);
                    } else {
                        size_threshold_decompose(
                            &mut ctx,
                            &s_local,
                            &mut ext_local,
                            &mut collector,
                        );
                    }
                }
                DecompositionStrategy::TimeDelayed => {
                    let deadline = Instant::now() + phase.tau_time;
                    time_delayed(&mut ctx, &s_local, &mut ext_local, deadline, &mut collector);
                }
            }
        }
        outcome.stats = ctx.stats;
        outcome.interrupted = ctx.interrupted;
        *scratch = std::mem::take(&mut ctx.scratch);
    }

    outcome.results = sink.into_sorted_vec();
    outcome.subtasks = collector.subtasks;
    outcome.materialization_time = collector.materialization_time;
    outcome.mining_time = started
        .elapsed()
        .saturating_sub(outcome.materialization_time);
    outcome
}

/// Collects decomposed subtasks, materialising their (smaller) subgraphs and
/// accounting the time spent doing so.
struct SubtaskCollector<'a> {
    parent: &'a QCTask,
    graph: &'a LocalGraph,
    subtasks: Vec<QCTask>,
    materialization_time: Duration,
}

impl SubtaskCollector<'_> {
    /// Wraps `⟨S', ext(S')⟩` (local indices) into a new iteration-3 task whose
    /// subgraph is induced by `S' ∪ ext(S')` (Algorithm 8 line 19).
    fn add(&mut self, s_local: &[u32], ext_local: &[u32]) {
        let t0 = Instant::now();
        // Decompose span: materialising one subtask; payload is the child
        // subgraph's vertex count.
        let _decompose = qcm_obs::span_with(
            qcm_obs::SpanKind::Decompose,
            (s_local.len() + ext_local.len()) as u64,
        );
        let mut keep: Vec<u32> = s_local.iter().chain(ext_local).copied().collect();
        keep.sort_unstable();
        keep.dedup();
        let child_graph = self.graph.induce_from_local(&keep);
        let mut task_graph = TaskGraph::new();
        let globals: HashMap<u32, VertexId> = keep
            .iter()
            .enumerate()
            .map(|(new_idx, &old)| (new_idx as u32, self.graph.global_id(old)))
            .collect();
        for i in child_graph.vertices() {
            let nbrs: Vec<VertexId> = child_graph.neighbors(i).map(|j| globals[&j]).collect();
            task_graph.insert(globals[&i], nbrs);
        }
        let s_global: Vec<VertexId> = s_local.iter().map(|&i| self.graph.global_id(i)).collect();
        let ext_global: Vec<VertexId> =
            ext_local.iter().map(|&i| self.graph.global_id(i)).collect();
        self.subtasks.push(QCTask::decomposed(
            self.parent.root,
            s_global,
            ext_global,
            task_graph,
        ));
        self.materialization_time += t0.elapsed();
    }
}

/// Algorithm 8 (lines 3–24): decompose a big task into one subtask per
/// surviving extension vertex, applying the same pruning as the recursion.
fn size_threshold_decompose(
    ctx: &mut MiningContext<'_>,
    s: &[u32],
    ext: &mut Vec<u32>,
    collector: &mut SubtaskCollector<'_>,
) {
    let prefix_len = if ctx.config.cover_vertex {
        cover_prune_prefix(ctx, s, ext)
    } else {
        ext.len()
    };
    let mut branch = ctx.scratch.take_vec_cap(prefix_len);
    branch.extend_from_slice(&ext[..prefix_len]);
    let mut i = 0usize;
    while i < branch.len() {
        let v = branch[i];
        i += 1;
        if ctx.is_cancelled() {
            break;
        }
        if s.len() + ext.len() < ctx.params.min_size {
            break;
        }
        if ctx.config.lookahead {
            let mut whole = ctx.scratch.take_vec_cap(s.len() + ext.len());
            whole.extend_from_slice(s);
            whole.extend_from_slice(ext);
            let hit = is_quasi_clique_local(ctx.graph, &whole, &ctx.params);
            if hit {
                ctx.stats.lookahead_hits += 1;
                ctx.report(&whole);
            }
            ctx.scratch.put_vec(whole);
            if hit {
                break;
            }
        }
        ext.retain(|&u| u != v);
        let mut s_prime = ctx.scratch.take_vec_cap(s.len() + 1);
        s_prime.extend_from_slice(s);
        s_prime.push(v);
        ctx.stats.nodes_expanded += 1;
        let mut ext_prime = ctx.scratch.take_vec();
        shrink_by_diameter(ctx, ext, v, &mut ext_prime);

        // Algorithm 8 lines 15–16: the parent loses track of the subtask, so
        // G(S') is checked eagerly.
        ctx.report_if_valid(&s_prime);

        if !ext_prime.is_empty() {
            let pruned = iterative_bounding(ctx, &mut s_prime, &mut ext_prime);
            if !pruned && s_prime.len() + ext_prime.len() >= ctx.params.min_size {
                collector.add(&s_prime, &ext_prime);
            }
        }
        ctx.scratch.put_vec(ext_prime);
        ctx.scratch.put_vec(s_prime);
    }
    ctx.scratch.put_vec(branch);
}

/// Algorithm 10: backtracking with time-delayed decomposition. Identical to
/// the serial recursion until the deadline passes, after which every remaining
/// unpruned subtree is wrapped as a subtask instead of being recursed into.
/// Returns true iff some valid quasi-clique strictly containing `S` was found
/// *by this task* (results found by offloaded subtasks are unknown here, which
/// is why G(S') is checked eagerly when offloading).
fn time_delayed(
    ctx: &mut MiningContext<'_>,
    s: &[u32],
    ext: &mut Vec<u32>,
    deadline: Instant,
    collector: &mut SubtaskCollector<'_>,
) -> bool {
    let mut found = false;
    let prefix_len = if ctx.config.cover_vertex {
        cover_prune_prefix(ctx, s, ext)
    } else {
        ext.len()
    };
    // This depth's branch frame, borrowed from the worker's arena.
    let mut branch = ctx.scratch.take_vec_cap(prefix_len);
    branch.extend_from_slice(&ext[..prefix_len]);
    let mut i = 0usize;
    while i < branch.len() {
        let v = branch[i];
        i += 1;
        // Cooperative cancellation: abandon the remaining subtrees without
        // offloading them — the run is ending, not decomposing.
        if ctx.is_cancelled() {
            break;
        }
        // Line 6.
        if s.len() + ext.len() < ctx.params.min_size {
            break;
        }
        // Lines 7–8: lookahead.
        if ctx.config.lookahead {
            let mut whole = ctx.scratch.take_vec_cap(s.len() + ext.len());
            whole.extend_from_slice(s);
            whole.extend_from_slice(ext);
            let hit = is_quasi_clique_local(ctx.graph, &whole, &ctx.params);
            if hit {
                ctx.stats.lookahead_hits += 1;
                ctx.report(&whole);
            }
            ctx.scratch.put_vec(whole);
            if hit {
                break;
            }
        }
        // Lines 9–10.
        ext.retain(|&u| u != v);
        let mut s_prime = ctx.scratch.take_vec_cap(s.len() + 1);
        s_prime.extend_from_slice(s);
        s_prime.push(v);
        ctx.stats.nodes_expanded += 1;
        let mut ext_prime = ctx.scratch.take_vec();
        shrink_by_diameter(ctx, ext, v, &mut ext_prime);

        if ext_prime.is_empty() {
            // Lines 11–14.
            if ctx.report_if_valid(&s_prime) {
                found = true;
            }
        } else {
            // Line 16.
            let pruned = iterative_bounding(ctx, &mut s_prime, &mut ext_prime);

            if Instant::now() > deadline {
                // Lines 18–24: offload the remaining subtree as a new task.
                if !pruned && s_prime.len() + ext_prime.len() >= ctx.params.min_size {
                    collector.add(&s_prime, &ext_prime);
                    // The subtask will not tell us about its findings, so
                    // examine G(S') now to avoid missing a maximal result.
                    if ctx.report_if_valid(&s_prime) {
                        found = true;
                    }
                }
            } else if !pruned && s_prime.len() + ext_prime.len() >= ctx.params.min_size {
                // Lines 25–30: regular backtracking.
                let child_found = time_delayed(ctx, &s_prime, &mut ext_prime, deadline, collector);
                found = found || child_found;
                if !child_found && ctx.report_if_valid(&s_prime) {
                    found = true;
                }
            }
        }
        ctx.scratch.put_vec(ext_prime);
        ctx.scratch.put_vec(s_prime);
    }
    ctx.scratch.put_vec(branch);
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_core::SerialMiner;
    use qcm_graph::Graph;

    fn figure4() -> Graph {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Graph::from_edges(9, edges.iter().copied()).unwrap()
    }

    /// Builds a mining-phase task over the whole graph for the given root.
    fn mine_task(g: &Graph, root: u32) -> QCTask {
        let mut tg = TaskGraph::new();
        let root_id = VertexId::new(root);
        let keep: Vec<VertexId> = g.vertices().filter(|v| *v >= root_id).collect();
        for &v in &keep {
            let nbrs: Vec<VertexId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|w| *w >= root_id)
                .collect();
            tg.insert(v, nbrs);
        }
        let ext: Vec<VertexId> = keep.iter().copied().filter(|v| *v != root_id).collect();
        QCTask::decomposed(root_id, vec![root_id], ext, tg)
    }

    fn phase(
        strategy: DecompositionStrategy,
        tau_split: usize,
        tau_time: Duration,
    ) -> MinePhaseParams {
        MinePhaseParams {
            params: MiningParams::new(0.6, 5),
            config: PruneConfig::all_enabled(),
            tau_split,
            tau_time,
            strategy,
            cancel: CancelToken::never(),
            index: IndexSpec::Auto,
        }
    }

    /// Drives a task and all transitively created subtasks to completion,
    /// returning every reported result.
    fn drain(task: QCTask, p: &MinePhaseParams) -> (QuasiCliqueSet, usize) {
        let mut queue = vec![task];
        let mut sink = QuasiCliqueSet::new();
        let mut processed = 0usize;
        while let Some(t) = queue.pop() {
            processed += 1;
            assert!(processed < 10_000, "decomposition does not terminate");
            let out = run_mine_phase(&t, p, &mut MiningScratch::default());
            for r in out.results {
                sink.insert(r);
            }
            queue.extend(out.subtasks);
        }
        (sink, processed)
    }

    #[test]
    fn in_place_mining_matches_serial_results() {
        let g = figure4();
        let p = phase(
            DecompositionStrategy::TimeDelayed,
            100,
            Duration::from_secs(5),
        );
        let task = mine_task(&g, 0);
        let (results, processed) = drain(task, &p);
        assert_eq!(
            processed, 1,
            "no decomposition expected before the deadline"
        );
        let expected = SerialMiner::new(p.params).mine(&g);
        // The task spawned from vertex 0 must find the unique 5-vertex result.
        let maximal = qcm_core::remove_non_maximal(results);
        assert_eq!(maximal, expected.maximal);
    }

    #[test]
    fn zero_timeout_decomposes_but_preserves_results() {
        let g = figure4();
        let p = phase(DecompositionStrategy::TimeDelayed, 100, Duration::ZERO);
        let task = mine_task(&g, 0);
        let (results, processed) = drain(task, &p);
        assert!(processed > 1, "zero timeout must force decomposition");
        let maximal = qcm_core::remove_non_maximal(results);
        let expected = SerialMiner::new(p.params).mine(&g);
        assert_eq!(maximal, expected.maximal);
    }

    #[test]
    fn size_threshold_decomposition_preserves_results() {
        let g = figure4();
        let p = phase(
            DecompositionStrategy::SizeThreshold,
            2,
            Duration::from_secs(1),
        );
        let task = mine_task(&g, 0);
        let (results, processed) = drain(task, &p);
        assert!(processed > 1, "|ext| = 8 > τ_split = 2 must decompose");
        let maximal = qcm_core::remove_non_maximal(results);
        let expected = SerialMiner::new(p.params).mine(&g);
        assert_eq!(maximal, expected.maximal);
    }

    #[test]
    fn materialization_time_is_tracked_when_decomposing() {
        let g = figure4();
        let p = phase(DecompositionStrategy::TimeDelayed, 100, Duration::ZERO);
        let task = mine_task(&g, 0);
        let out = run_mine_phase(&task, &p, &mut MiningScratch::default());
        if !out.subtasks.is_empty() {
            assert!(out.materialization_time > Duration::ZERO);
        }
        // Subtask subgraphs are induced: they never contain vertices outside
        // S' ∪ ext(S').
        for sub in &out.subtasks {
            let allowed: Vec<VertexId> = sub.s.iter().chain(sub.ext.iter()).copied().collect();
            for (v, nbrs) in &sub.subgraph.adj {
                assert!(allowed.contains(v));
                for w in nbrs {
                    assert!(allowed.contains(w));
                }
            }
        }
    }

    #[test]
    fn cancelled_phase_stops_without_offloading_subtasks() {
        let g = figure4();
        let mut p = phase(DecompositionStrategy::TimeDelayed, 100, Duration::ZERO);
        let token = CancelToken::new();
        token.cancel();
        p.cancel = token;
        let task = mine_task(&g, 0);
        let out = run_mine_phase(&task, &p, &mut MiningScratch::default());
        assert!(out.subtasks.is_empty(), "a dying run must not decompose");
        assert!(out.results.is_empty());
    }

    #[test]
    fn empty_ext_reports_s_when_valid() {
        let g = figure4();
        // A task whose candidate is exactly the dense block with no extension.
        let mut tg = TaskGraph::new();
        for v in 0..5u32 {
            let nbrs: Vec<VertexId> = g
                .neighbors(VertexId::new(v))
                .iter()
                .copied()
                .filter(|w| w.raw() < 5)
                .collect();
            tg.insert(VertexId::new(v), nbrs);
        }
        let s: Vec<VertexId> = (0..5u32).map(VertexId::new).collect();
        let task = QCTask::decomposed(VertexId::new(0), s.clone(), vec![], tg);
        let p = phase(
            DecompositionStrategy::TimeDelayed,
            100,
            Duration::from_secs(1),
        );
        let out = run_mine_phase(&task, &p, &mut MiningScratch::default());
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0], s);
    }
}
