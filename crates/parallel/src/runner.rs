//! High-level parallel mining API.
//!
//! [`ParallelMiner`] wires the quasi-clique application to the reforged
//! engine, runs the job on the simulated cluster, and post-processes the raw
//! reports into the final maximal result set — the same pipeline the paper's
//! experiments use (Section 7), exposed as one call.

use crate::app::QuasiCliqueApp;
use crate::mine::DecompositionStrategy;
use qcm_core::quasiclique::is_valid_quasi_clique_over;
use qcm_core::{
    remove_non_maximal, CancelToken, MiningParams, PruneConfig, QuasiCliqueSet, QuasiCliqueSink,
    RunOutcome,
};
use qcm_engine::{Cluster, EngineConfig, EngineMetrics};
use qcm_graph::Graph;
use qcm_sync::Arc;
use std::time::Duration;

/// Output of a parallel mining run.
#[derive(Clone, Debug)]
pub struct ParallelMiningOutput {
    /// The final maximal quasi-cliques.
    pub maximal: QuasiCliqueSet,
    /// Number of raw (pre-post-processing) reports emitted by tasks.
    pub raw_reported: u64,
    /// Engine metrics (timing, tasks, spilling, stealing, per-task log).
    pub metrics: EngineMetrics,
}

impl ParallelMiningOutput {
    /// Wall-clock time of the run.
    pub fn elapsed(&self) -> Duration {
        self.metrics.elapsed
    }

    /// Whether the run drained every task or was interrupted by
    /// cancellation/deadline. An interrupted run's `maximal` holds the valid
    /// quasi-cliques found before the interruption; some may be non-maximal
    /// in the full graph (a completed run could replace them with supersets).
    pub fn outcome(&self) -> RunOutcome {
        self.metrics.outcome
    }
}

/// Parallel maximal quasi-clique miner (the paper's full system).
#[derive(Clone, Debug)]
pub struct ParallelMiner {
    /// Mining parameters (γ, τ_size).
    pub params: MiningParams,
    /// Pruning-rule configuration.
    pub prune_config: PruneConfig,
    /// Engine/cluster configuration (threads, machines, τ_split, τ_time, …).
    pub engine_config: EngineConfig,
    /// Task decomposition strategy.
    pub strategy: DecompositionStrategy,
}

impl ParallelMiner {
    /// Creates a miner with the paper's defaults: all pruning rules enabled
    /// and time-delayed task decomposition.
    pub fn new(params: MiningParams, engine_config: EngineConfig) -> Self {
        ParallelMiner {
            params,
            prune_config: PruneConfig::all_enabled(),
            engine_config,
            strategy: DecompositionStrategy::TimeDelayed,
        }
    }

    /// Overrides the decomposition strategy.
    pub fn with_strategy(mut self, strategy: DecompositionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the pruning configuration.
    pub fn with_prune_config(mut self, config: PruneConfig) -> Self {
        self.prune_config = config;
        self
    }

    /// Attaches a cancellation token, polled both by the engine's worker pop
    /// loops and inside each task's backtracking, so a cancelled or
    /// deadline-hit run returns the partial results emitted so far.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.engine_config.cancel = cancel;
        self
    }

    /// Mines all maximal γ-quasi-cliques of `graph` on the simulated cluster.
    pub fn mine(&self, graph: Arc<Graph>) -> ParallelMiningOutput {
        self.mine_impl(graph, None)
    }

    /// Like [`ParallelMiner::mine`], but forwards every raw result row to
    /// `observer` as the engine output is drained (after the cluster run —
    /// the engine funnels rows through its shared result buffer, so parallel
    /// candidate streaming is per-run, not per-report). This is the streaming
    /// seam `qcm::Session::run_streaming` builds on.
    pub fn mine_with_observer(
        &self,
        graph: Arc<Graph>,
        observer: &mut dyn QuasiCliqueSink,
    ) -> ParallelMiningOutput {
        self.mine_impl(graph, Some(observer))
    }

    fn mine_impl(
        &self,
        graph: Arc<Graph>,
        mut observer: Option<&mut dyn QuasiCliqueSink>,
    ) -> ParallelMiningOutput {
        let app = Arc::new(
            QuasiCliqueApp::new(
                self.params,
                self.engine_config.tau_split,
                self.engine_config.tau_time,
            )
            .with_strategy(self.strategy)
            .with_prune_config(self.prune_config)
            .with_index(self.engine_config.index)
            .with_cancel(self.engine_config.cancel.clone()),
        );
        let cluster = Cluster::new(app, self.engine_config.clone());
        let output = cluster.run(graph);
        let raw_reported = output.metrics.results_emitted;
        let mut set = QuasiCliqueSet::new();
        for members in output.results {
            if let Some(observer) = observer.as_deref_mut() {
                observer.report(members.clone());
            }
            set.insert(members);
        }
        let mut maximal = remove_non_maximal(set);
        // Trust-but-verify: re-check every answer against the global graph
        // through the run's shared neighborhood index (the same edge-query
        // path the vertex table serves). The distributed search assembled
        // these sets from task-local subgraphs; a validation failure here
        // means an engine bug, and dropping the set beats publishing — or
        // cache-poisoning, at the service layer — a wrong answer.
        if let Some(index) = &output.index {
            let nbhd: &dyn qcm_graph::Neighborhoods = index.as_ref();
            maximal.retain_sets(|members| {
                let raw: Vec<u32> = members.iter().map(|v| v.raw()).collect();
                let valid = is_valid_quasi_clique_over(nbhd, &raw, &self.params);
                debug_assert!(valid, "engine emitted an invalid result {members:?}");
                valid
            });
        }
        ParallelMiningOutput {
            maximal,
            raw_reported,
            metrics: output.metrics,
        }
    }
}

/// Convenience function: parallel mining with default engine settings and the
/// given number of threads on one simulated machine.
#[deprecated(
    since = "0.2.0",
    note = "use the unified `qcm::Session` front door (Session::builder()…backend(Backend::Parallel \
            { .. }).build()?.run(&graph)) or `ParallelMiner::new(params, config).mine(graph)` \
            directly"
)]
pub fn mine_parallel(
    graph: &Arc<Graph>,
    params: MiningParams,
    threads: usize,
) -> ParallelMiningOutput {
    ParallelMiner::new(params, EngineConfig::single_machine(threads)).mine(graph.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_core::SerialMiner;

    fn figure4() -> Arc<Graph> {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Arc::new(Graph::from_edges(9, edges.iter().copied()).unwrap())
    }

    #[test]
    fn parallel_matches_serial_on_figure4() {
        let g = figure4();
        for (gamma, min_size) in [(0.6, 5), (0.9, 4), (0.5, 4)] {
            let params = MiningParams::new(gamma, min_size);
            let serial = SerialMiner::new(params).mine(&g);
            let parallel =
                ParallelMiner::new(params, EngineConfig::single_machine(4)).mine(g.clone());
            assert_eq!(
                parallel.maximal, serial.maximal,
                "parallel/serial mismatch at gamma={gamma} min_size={min_size}"
            );
        }
    }

    #[test]
    fn decomposition_strategies_agree() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let mut config = EngineConfig::single_machine(2);
        config.tau_split = 1; // force heavy decomposition
        config.tau_time = Duration::ZERO;
        let time_delayed = ParallelMiner::new(params, config.clone()).mine(g.clone());
        let size_threshold = ParallelMiner::new(params, config)
            .with_strategy(DecompositionStrategy::SizeThreshold)
            .mine(g.clone());
        let serial = SerialMiner::new(params).mine(&g);
        assert_eq!(time_delayed.maximal, serial.maximal);
        assert_eq!(size_threshold.maximal, serial.maximal);
        assert!(time_delayed.elapsed() > Duration::ZERO);
    }

    #[test]
    fn pre_cancelled_run_is_labelled_and_partial() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let token = CancelToken::new();
        token.cancel();
        let out = ParallelMiner::new(params, EngineConfig::single_machine(2))
            .with_cancel(token)
            .mine(g.clone());
        assert_eq!(out.outcome(), RunOutcome::Cancelled);
        assert!(out.maximal.is_empty(), "workers must drain before popping");
    }

    #[test]
    fn zero_deadline_run_is_labelled_deadline_exceeded() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let token = CancelToken::never().with_deadline(Some(Duration::ZERO));
        let out = ParallelMiner::new(params, EngineConfig::single_machine(2))
            .with_cancel(token)
            .mine(g.clone());
        assert_eq!(out.outcome(), RunOutcome::DeadlineExceeded);
        // A zero deadline stops workers before any task is popped, so the
        // partial set is deterministically empty.
        assert!(out.maximal.is_empty());
        let full = ParallelMiner::new(params, EngineConfig::single_machine(2)).mine(g.clone());
        assert_eq!(full.outcome(), RunOutcome::Complete);
    }

    #[test]
    fn observer_sees_every_raw_result_row() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let mut observed: Vec<Vec<qcm_graph::VertexId>> = Vec::new();
        let out = ParallelMiner::new(params, EngineConfig::single_machine(2))
            .mine_with_observer(g.clone(), &mut observed);
        assert_eq!(observed.len() as u64, out.raw_reported);
        for r in out.maximal.iter() {
            assert!(observed.iter().any(|c| c == r));
        }
    }

    #[test]
    fn multi_machine_matches_single_machine() {
        let g = figure4();
        let params = MiningParams::new(0.9, 4);
        let single = ParallelMiner::new(params, EngineConfig::single_machine(2)).mine(g.clone());
        let multi = ParallelMiner::new(params, EngineConfig::cluster(3, 2)).mine(g.clone());
        assert_eq!(single.maximal, multi.maximal);
        assert!(multi.raw_reported >= multi.maximal.len() as u64);
    }
}
