//! Deterministic fault-simulated quasi-clique mining.
//!
//! [`SimMiner`] is the fault-testing twin of [`crate::ParallelMiner`]: the
//! same [`QuasiCliqueApp`] and the same maximality/validity post-processing,
//! but executed on [`qcm_engine::SimCluster`] — the seeded discrete-event
//! simulator — instead of the live thread-per-worker cluster. One seed plus
//! one fault scenario replays byte-identically, so crash, straggler and
//! partition behaviour is testable in CI without flaky timing.
//!
//! Determinism requires two deviations from the live miner's defaults, both
//! applied automatically:
//!
//! * the decomposition strategy is forced to
//!   [`DecompositionStrategy::SizeThreshold`] — time-delayed decomposition
//!   consults the wall clock, which would make task shapes differ between
//!   replays;
//! * wall-clock cancellation/deadlines are ignored; the run is bounded by
//!   [`SimConfig::max_virtual_us`] virtual microseconds instead.

use crate::app::QuasiCliqueApp;
use crate::mine::DecompositionStrategy;
use qcm_core::quasiclique::is_valid_quasi_clique_over;
use qcm_core::{remove_non_maximal, MiningParams, PruneConfig, QuasiCliqueSet, RunOutcome};
use qcm_engine::{EngineConfig, EngineMetrics, SimCluster, SimConfig};
use qcm_graph::Graph;
use qcm_sync::Arc;
use std::time::Duration;

/// Output of a simulated mining run.
#[derive(Clone, Debug)]
pub struct SimMiningOutput {
    /// The final maximal quasi-cliques. When the scenario did not permit
    /// completion (`outcome != Complete`) this is a *partial* result: every
    /// set in it is a valid quasi-clique, but roots whose work was lost
    /// contribute nothing.
    pub maximal: QuasiCliqueSet,
    /// Number of raw (pre-post-processing) reports emitted by tasks.
    pub raw_reported: u64,
    /// Engine metrics; `virtual_time` is set, wall `elapsed` measures only
    /// the simulation itself (excluded from the bench wall-time gate).
    pub metrics: EngineMetrics,
    /// Whether the simulated cluster drained every task
    /// ([`RunOutcome::Complete`]) or lost work permanently
    /// ([`RunOutcome::Faulted`]).
    pub outcome: RunOutcome,
    /// The seeded event log (sends, drops, faults, respawns).
    pub event_log: Vec<String>,
    /// FNV-1a hash over the event log — the replay-determinism witness.
    pub log_hash: u64,
    /// Virtual duration of the run.
    pub virtual_time: Duration,
}

/// Parallel maximal quasi-clique miner on the deterministic fault simulator.
#[derive(Clone, Debug)]
pub struct SimMiner {
    /// Mining parameters (γ, τ_size).
    pub params: MiningParams,
    /// Pruning-rule configuration.
    pub prune_config: PruneConfig,
    /// Engine configuration (machines, τ_split, batch size, …). Thread
    /// counts are not modelled — each machine performs one scheduling step
    /// per virtual wake.
    pub engine_config: EngineConfig,
    /// Simulator configuration (seed, latency, drops, fault scenario).
    pub sim_config: SimConfig,
}

impl SimMiner {
    /// Creates a simulated miner with the paper's pruning defaults.
    pub fn new(params: MiningParams, engine_config: EngineConfig, sim_config: SimConfig) -> Self {
        SimMiner {
            params,
            prune_config: PruneConfig::all_enabled(),
            engine_config,
            sim_config,
        }
    }

    /// Overrides the pruning configuration.
    pub fn with_prune_config(mut self, config: PruneConfig) -> Self {
        self.prune_config = config;
        self
    }

    /// Mines `graph` in virtual time under the configured fault scenario.
    pub fn mine(&self, graph: Arc<Graph>) -> SimMiningOutput {
        let app = Arc::new(
            QuasiCliqueApp::new(
                self.params,
                self.engine_config.tau_split,
                self.engine_config.tau_time,
            )
            // Size-threshold splitting is the only wall-clock-free strategy;
            // see the module docs.
            .with_strategy(DecompositionStrategy::SizeThreshold)
            .with_prune_config(self.prune_config)
            .with_index(self.engine_config.index),
        );
        let cluster = SimCluster::new(app, self.engine_config.clone(), self.sim_config.clone());
        let output = cluster.run(graph);
        let raw_reported = output.metrics.results_emitted;
        let mut set = QuasiCliqueSet::new();
        for members in output.results {
            set.insert(members);
        }
        let mut maximal = remove_non_maximal(set);
        // Same trust-but-verify pass as the live miner: every answer is
        // re-checked against the global graph through the run's index.
        if let Some(index) = &output.index {
            let nbhd: &dyn qcm_graph::Neighborhoods = index.as_ref();
            maximal.retain_sets(|members| {
                let raw: Vec<u32> = members.iter().map(|v| v.raw()).collect();
                let valid = is_valid_quasi_clique_over(nbhd, &raw, &self.params);
                debug_assert!(valid, "engine emitted an invalid result {members:?}");
                valid
            });
        }
        SimMiningOutput {
            maximal,
            raw_reported,
            outcome: output.outcome,
            virtual_time: Duration::from_micros(output.virtual_us),
            event_log: output.event_log,
            log_hash: output.log_hash,
            metrics: output.metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_core::SerialMiner;

    fn figure4() -> Arc<Graph> {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Arc::new(Graph::from_edges(9, edges.iter().copied()).unwrap())
    }

    #[test]
    fn fault_free_sim_matches_serial() {
        let g = figure4();
        for (gamma, min_size) in [(0.6, 5), (0.9, 4)] {
            let params = MiningParams::new(gamma, min_size);
            let serial = SerialMiner::new(params).mine(&g);
            let sim = SimMiner::new(params, EngineConfig::cluster(3, 1), SimConfig::new(17))
                .mine(g.clone());
            assert_eq!(sim.outcome, RunOutcome::Complete);
            assert_eq!(
                sim.maximal, serial.maximal,
                "sim/serial mismatch at gamma={gamma} min_size={min_size}"
            );
        }
    }

    #[test]
    fn mining_replays_byte_identically() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let mk = || {
            SimMiner::new(
                params,
                EngineConfig::cluster(4, 1),
                SimConfig::crash_scenario(99, 2, 2_000, Some(25_000)),
            )
            .mine(g.clone())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.log_hash, b.log_hash);
        assert_eq!(a.event_log, b.event_log);
        assert_eq!(a.maximal, b.maximal);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn crash_with_restart_still_matches_serial() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let serial = SerialMiner::new(params).mine(&g);
        let sim = SimMiner::new(
            params,
            EngineConfig::cluster(3, 1),
            SimConfig::crash_scenario(5, 1, 1_000, Some(30_000)),
        )
        .mine(g.clone());
        assert_eq!(sim.outcome, RunOutcome::Complete);
        assert_eq!(sim.maximal, serial.maximal);
    }

    #[test]
    fn results_are_valid_even_under_faults() {
        let g = figure4();
        let params = MiningParams::new(0.6, 5);
        let sim = SimMiner::new(
            params,
            EngineConfig::cluster(3, 1),
            SimConfig::crash_scenario(7, 1, 1_000, None),
        )
        .mine(g.clone());
        // Completion is not guaranteed, but every surviving answer must be a
        // valid quasi-clique (partial-result contract).
        let serial = SerialMiner::new(params).mine(&g);
        for members in sim.maximal.iter() {
            assert!(serial.maximal.iter().any(|s| s == members));
        }
    }
}
