//! # qcm-parallel — parallel quasi-clique mining on the reforged engine
//!
//! This crate is the codesign glue of the paper: the quasi-clique mining
//! algorithm of `qcm-core` expressed as a G-thinker application running on
//! the task engine of `qcm-engine`.
//!
//! * [`QuasiCliqueApp`] implements the two UDFs: `spawn` (Algorithm 4) and the
//!   three-iteration `compute` (Algorithms 5–7 build the task subgraph,
//!   Algorithms 8–10 mine/decompose it).
//! * [`DecompositionStrategy`] selects between the simple size-threshold
//!   splitting of Algorithm 8 and the paper's **time-delayed task
//!   decomposition** of Algorithms 9–10.
//! * [`ParallelMiner`] is the one-call front end: configure γ, τ_size,
//!   τ_split, τ_time and the simulated cluster shape, call
//!   [`ParallelMiner::mine`], get back the maximal quasi-cliques plus the
//!   engine metrics used to regenerate the paper's tables and figures.
//!
//! ```
//! use qcm_core::MiningParams;
//! use qcm_engine::EngineConfig;
//! use qcm_parallel::ParallelMiner;
//! use qcm_graph::Graph;
//! use qcm_sync::Arc;
//!
//! let g = Arc::new(Graph::from_edges(9, [
//!     (0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 4), (2, 3), (2, 4), (3, 4),
//!     (1, 5), (5, 6), (2, 6), (3, 7), (7, 8), (3, 8),
//! ]).unwrap());
//! let miner = ParallelMiner::new(MiningParams::new(0.6, 5), EngineConfig::single_machine(4));
//! let output = miner.mine(g.clone());
//! assert_eq!(output.maximal.len(), 1);
//! ```
//!
//! Application code should normally go through the unified `qcm::Session`
//! front door in the `qcm` facade crate, which adds validation, deadlines,
//! cancellation and streaming on top of [`ParallelMiner`].

pub mod app;
pub mod iterations;
pub mod mine;
pub mod runner;
pub mod sim;
pub mod task;

pub use app::QuasiCliqueApp;
pub use mine::{DecompositionStrategy, MineOutcome, MinePhaseParams};
#[allow(deprecated)]
pub use runner::mine_parallel;
pub use runner::{ParallelMiner, ParallelMiningOutput};
pub use sim::{SimMiner, SimMiningOutput};
pub use task::{QCTask, TaskGraph, TaskPhase};
