//! The quasi-clique mining task (the `t` of Algorithms 4–10).
//!
//! A [`QCTask`] progresses through three iterations, exactly like the paper's
//! UDF `compute(t, frontier)`:
//!
//! 1. **Iteration 1** (Algorithm 6): the pulled first-hop adjacency lists are
//!    filtered by the degree threshold `k` and assembled into the task
//!    subgraph `t.g`; the second-hop vertices are requested.
//! 2. **Iteration 2** (Algorithm 7): second-hop vertices are added, the
//!    subgraph is shrunk to its k-core, and the candidate `⟨S = {v},
//!    ext(S) = V(t.g) − v⟩` is formed.
//! 3. **Iteration 3** (Algorithms 8–10): the subgraph is mined; if the task is
//!    big it is decomposed into subtasks, which re-enter the engine directly
//!    at iteration 3 with a materialised (smaller) subgraph.
//!
//! Tasks must survive queueing, disk spilling and stealing, so everything —
//! including the partially built subgraph — is stored by value and encodable
//! with the engine's [`TaskCodec`].

use qcm_engine::codec::{put_u32, put_vertices, take_u32, take_vertices};
use qcm_engine::TaskCodec;
use qcm_graph::{LocalGraph, VertexId};
use std::collections::HashMap;

/// Adjacency of the task subgraph keyed by *global* vertex ids, kept sorted by
/// vertex id. Global ids make the structure stable under spilling and under
/// transfer between machines.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskGraph {
    /// `(vertex, neighbors)` pairs, sorted by vertex id; neighbor lists sorted.
    pub adj: Vec<(VertexId, Vec<VertexId>)>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges, counting only edges whose both endpoints are vertices
    /// of the task graph.
    pub fn num_edges(&self) -> usize {
        let count: usize = self
            .adj
            .iter()
            .map(|(_, nbrs)| nbrs.iter().filter(|w| self.contains(**w)).count())
            .sum();
        count / 2
    }

    /// True if `v` is a vertex of the task graph.
    pub fn contains(&self, v: VertexId) -> bool {
        self.adj.binary_search_by_key(&v, |(u, _)| *u).is_ok()
    }

    /// The adjacency list of `v`, if present.
    pub fn neighbors(&self, v: VertexId) -> Option<&[VertexId]> {
        self.adj
            .binary_search_by_key(&v, |(u, _)| *u)
            .ok()
            .map(|i| self.adj[i].1.as_slice())
    }

    /// Inserts a vertex with the given (sorted) adjacency list, replacing any
    /// existing entry.
    pub fn insert(&mut self, v: VertexId, mut neighbors: Vec<VertexId>) {
        neighbors.sort_unstable();
        neighbors.dedup();
        match self.adj.binary_search_by_key(&v, |(u, _)| *u) {
            Ok(i) => self.adj[i].1 = neighbors,
            Err(i) => self.adj.insert(i, (v, neighbors)),
        }
    }

    /// Removes destinations that are not vertices of the task graph from every
    /// adjacency list (used before an exact k-core pass).
    pub fn retain_internal_edges(&mut self) {
        let vertices: Vec<VertexId> = self.adj.iter().map(|(v, _)| *v).collect();
        for (_, nbrs) in &mut self.adj {
            nbrs.retain(|w| vertices.binary_search(w).is_ok());
        }
    }

    /// Iteratively removes *peelable* vertices whose adjacency list is shorter
    /// than `k`. Destinations that are not vertices of the graph still count
    /// toward the degree (the paper's iteration-1 treatment of two-hop
    /// destinations); vertices for which `peelable` returns false are never
    /// removed. Returns the number of removed vertices.
    ///
    /// Uses the O(|E|) queue-based peeling of Batagelj & Zaversnik rather than
    /// repeated full scans — hub tasks build subgraphs with thousands of
    /// vertices and a quadratic peel would dominate their build time.
    pub fn peel<F: Fn(VertexId) -> bool>(&mut self, k: usize, peelable: F) -> usize {
        let n = self.adj.len();
        if n == 0 {
            return 0;
        }
        let mut degree: Vec<usize> = self.adj.iter().map(|(_, nbrs)| nbrs.len()).collect();
        let mut removed = vec![false; n];
        // The adjacency is sorted by vertex id, so the position of a
        // destination can be found by binary search without an extra map.
        let position = |target: &VertexId, adj: &[(VertexId, Vec<VertexId>)]| {
            adj.binary_search_by_key(target, |(v, _)| *v).ok()
        };
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| peelable(self.adj[i].0) && degree[i] < k)
            .collect();
        for &i in &stack {
            removed[i] = true;
        }
        let mut removed_total = 0usize;
        while let Some(i) = stack.pop() {
            removed_total += 1;
            for w in &self.adj[i].1 {
                if let Some(j) = position(w, &self.adj) {
                    if !removed[j] {
                        degree[j] -= 1;
                        if degree[j] < k && peelable(self.adj[j].0) {
                            removed[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
        }
        if removed_total == 0 {
            return 0;
        }
        let removed_ids: Vec<VertexId> = self
            .adj
            .iter()
            .enumerate()
            .filter(|(i, _)| removed[*i])
            .map(|(_, (v, _))| *v)
            .collect();
        let old = std::mem::take(&mut self.adj);
        self.adj = old
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !removed[*i])
            .map(|(_, entry)| entry)
            .collect();
        for (_, nbrs) in &mut self.adj {
            nbrs.retain(|w| removed_ids.binary_search(w).is_err());
        }
        removed_total
    }

    /// Converts the task graph into a [`LocalGraph`] plus a global→local index
    /// map. Only edges between present vertices are materialised.
    pub fn to_local_graph(&self) -> (LocalGraph, HashMap<VertexId, u32>) {
        let globals: Vec<VertexId> = self.adj.iter().map(|(v, _)| *v).collect();
        let index: HashMap<VertexId, u32> = globals
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let mut lg = LocalGraph::new(globals);
        for (v, nbrs) in &self.adj {
            let vi = index[v];
            for w in nbrs {
                // `add_edge` inserts both directions and ignores duplicates,
                // so asymmetric adjacency input still yields a simple graph.
                if let Some(&wi) = index.get(w) {
                    lg.add_edge(vi, wi);
                }
            }
        }
        (lg, index)
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.adj
            .iter()
            .map(|(_, nbrs)| std::mem::size_of::<(VertexId, Vec<VertexId>)>() + nbrs.len() * 4)
            .sum()
    }
}

/// The iteration a task is in (mirrors `t.iteration` of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskPhase {
    /// Waiting for first-hop adjacency lists (Algorithm 6 next).
    FirstHop,
    /// Waiting for second-hop adjacency lists (Algorithm 7 next).
    SecondHop,
    /// Subgraph ready; mine / decompose (Algorithms 8–10 next).
    Mine,
}

impl TaskPhase {
    fn as_u32(self) -> u32 {
        match self {
            TaskPhase::FirstHop => 1,
            TaskPhase::SecondHop => 2,
            TaskPhase::Mine => 3,
        }
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(TaskPhase::FirstHop),
            2 => Some(TaskPhase::SecondHop),
            3 => Some(TaskPhase::Mine),
            _ => None,
        }
    }
}

/// A quasi-clique mining task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QCTask {
    /// The spawning vertex `v` (tasks only consider vertices with larger ids).
    pub root: VertexId,
    /// Current iteration.
    pub phase: TaskPhase,
    /// Vertices whose adjacency lists this task is waiting for.
    pub pull_targets: Vec<VertexId>,
    /// `t.N`: the spawning vertex plus its (larger-id) first-hop neighbors,
    /// collected in iteration 1 and used to identify second-hop vertices.
    pub one_hop: Vec<VertexId>,
    /// The task subgraph `t.g` (global-id adjacency).
    pub subgraph: TaskGraph,
    /// The candidate set `S` (global ids). `{root}` for root tasks; larger for
    /// decomposed subtasks.
    pub s: Vec<VertexId>,
    /// The extension set `ext(S)` (global ids). Empty until iteration 3.
    pub ext: Vec<VertexId>,
}

impl QCTask {
    /// Creates the initial task spawned from `root` (Algorithm 4): iteration 1,
    /// `S = {root}` and pull requests for the larger-id neighbors.
    pub fn spawned(root: VertexId, larger_neighbors: Vec<VertexId>) -> Self {
        QCTask {
            root,
            phase: TaskPhase::FirstHop,
            pull_targets: larger_neighbors,
            one_hop: Vec::new(),
            subgraph: TaskGraph::new(),
            s: vec![root],
            ext: Vec::new(),
        }
    }

    /// Creates a decomposed subtask that enters directly at iteration 3
    /// (Algorithm 8 lines 12–21 / Algorithm 10 lines 20–22).
    pub fn decomposed(
        root: VertexId,
        s: Vec<VertexId>,
        ext: Vec<VertexId>,
        subgraph: TaskGraph,
    ) -> Self {
        QCTask {
            root,
            phase: TaskPhase::Mine,
            pull_targets: Vec::new(),
            one_hop: Vec::new(),
            subgraph,
            s,
            ext,
        }
    }

    /// Size measure used by the τ_split big-task classification: `|ext(S)|`
    /// for mining-phase tasks, the number of requested vertices for tasks
    /// still building their subgraph.
    pub fn size_measure(&self) -> usize {
        match self.phase {
            TaskPhase::Mine => self.ext.len(),
            _ => self.pull_targets.len(),
        }
    }
}

impl TaskCodec for QCTask {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.root.raw());
        put_u32(buf, self.phase.as_u32());
        put_vertices(buf, &self.pull_targets);
        put_vertices(buf, &self.one_hop);
        put_vertices(buf, &self.s);
        put_vertices(buf, &self.ext);
        put_u32(buf, self.subgraph.adj.len() as u32);
        for (v, nbrs) in &self.subgraph.adj {
            put_u32(buf, v.raw());
            put_vertices(buf, nbrs);
        }
    }

    fn decode(data: &mut &[u8]) -> Option<Self> {
        let root = VertexId::new(take_u32(data)?);
        let phase = TaskPhase::from_u32(take_u32(data)?)?;
        let pull_targets = take_vertices(data)?;
        let one_hop = take_vertices(data)?;
        let s = take_vertices(data)?;
        let ext = take_vertices(data)?;
        let n = take_u32(data)? as usize;
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            let v = VertexId::new(take_u32(data)?);
            let nbrs = take_vertices(data)?;
            adj.push((v, nbrs));
        }
        Some(QCTask {
            root,
            phase,
            pull_targets,
            one_hop,
            subgraph: TaskGraph { adj },
            s,
            ext,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> VertexId {
        VertexId::new(id)
    }

    #[test]
    fn task_graph_insert_query_and_edges() {
        let mut g = TaskGraph::new();
        g.insert(v(5), vec![v(7), v(9)]);
        g.insert(v(7), vec![v(5)]);
        g.insert(v(9), vec![v(5), v(100)]); // 100 is an external destination
        assert_eq!(g.num_vertices(), 3);
        assert!(g.contains(v(7)));
        assert!(!g.contains(v(100)));
        assert_eq!(g.neighbors(v(5)).unwrap(), &[v(7), v(9)]);
        // 100 is not a vertex, so only edges 5-7 and 5-9 count.
        assert_eq!(g.num_edges(), 2);
        g.retain_internal_edges();
        assert_eq!(g.neighbors(v(9)).unwrap(), &[v(5)]);
    }

    #[test]
    fn peel_respects_unpeelable_vertices() {
        let mut g = TaskGraph::new();
        // Chain 1-2-3 where only 2 and 3 are peelable.
        g.insert(v(1), vec![v(2)]);
        g.insert(v(2), vec![v(1), v(3)]);
        g.insert(v(3), vec![v(2)]);
        let removed = g.peel(2, |u| u != v(1));
        // 3 peels first (degree 1), then 2 (degree drops to 1); 1 survives
        // despite ending with degree 0 because it is not peelable.
        assert_eq!(removed, 2);
        assert!(g.contains(v(1)));
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn peel_cascades() {
        let mut g = TaskGraph::new();
        // A triangle plus a pendant path.
        g.insert(v(0), vec![v(1), v(2)]);
        g.insert(v(1), vec![v(0), v(2)]);
        g.insert(v(2), vec![v(0), v(1), v(3)]);
        g.insert(v(3), vec![v(2), v(4)]);
        g.insert(v(4), vec![v(3)]);
        let removed = g.peel(2, |_| true);
        assert_eq!(removed, 2);
        assert_eq!(g.num_vertices(), 3);
        assert!(g.contains(v(0)) && g.contains(v(1)) && g.contains(v(2)));
    }

    #[test]
    fn to_local_graph_preserves_structure() {
        let mut g = TaskGraph::new();
        g.insert(v(10), vec![v(20), v(30)]);
        g.insert(v(20), vec![v(10), v(30)]);
        g.insert(v(30), vec![v(10), v(20), v(99)]);
        let (lg, index) = g.to_local_graph();
        assert_eq!(lg.num_vertices(), 3);
        assert_eq!(lg.num_edges(), 3);
        assert_eq!(lg.global_id(index[&v(20)]), v(20));
        assert!(lg.has_edge(index[&v(10)], index[&v(30)]));
    }

    #[test]
    fn codec_roundtrip_preserves_every_field() {
        let mut sub = TaskGraph::new();
        sub.insert(v(3), vec![v(4), v(5)]);
        sub.insert(v(4), vec![v(3)]);
        let task = QCTask {
            root: v(3),
            phase: TaskPhase::SecondHop,
            pull_targets: vec![v(8), v(9)],
            one_hop: vec![v(3), v(4)],
            subgraph: sub,
            s: vec![v(3)],
            ext: vec![v(4), v(5)],
        };
        let mut buf = Vec::new();
        task.encode(&mut buf);
        let mut slice = buf.as_slice();
        let decoded = QCTask::decode(&mut slice).unwrap();
        assert_eq!(decoded, task);
        assert!(slice.is_empty());
    }

    #[test]
    fn spawned_and_decomposed_constructors() {
        let t = QCTask::spawned(v(7), vec![v(8), v(11)]);
        assert_eq!(t.phase, TaskPhase::FirstHop);
        assert_eq!(t.s, vec![v(7)]);
        assert_eq!(t.size_measure(), 2);

        let sub = TaskGraph::new();
        let t = QCTask::decomposed(v(7), vec![v(7), v(8)], vec![v(11), v(12), v(13)], sub);
        assert_eq!(t.phase, TaskPhase::Mine);
        assert_eq!(t.size_measure(), 3);
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        let mut slice: &[u8] = &[1, 2, 3];
        assert!(QCTask::decode(&mut slice).is_none());
    }
}
