//! Service observability: counters, gauges and job-latency percentiles.

use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::Mutex;
use std::time::Duration;

/// How many recent job latencies the percentile window keeps. A power of two
/// around "a few minutes of heavy traffic"; beyond it the window slides.
const LATENCY_WINDOW: usize = 4096;

/// Shared, lock-free-where-possible counters of a [`crate::MiningService`].
///
/// All counters are monotone; gauges (queue depth, in-flight, cache size) are
/// read from the live service state at snapshot time instead of being
/// tracked here, so they can never drift.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted by admission control (including cache hits).
    pub submitted: AtomicU64,
    /// Submits rejected by admission control.
    pub rejected: AtomicU64,
    /// Jobs that reached a terminal state with a result.
    pub completed: AtomicU64,
    /// Jobs cancelled (before start or mid-run).
    pub cancelled: AtomicU64,
    /// Jobs whose run failed inside the engine.
    pub failed: AtomicU64,
    /// Submits answered from the result cache without mining.
    pub cache_hits: AtomicU64,
    /// Submits that had to mine (no cached answer).
    pub cache_misses: AtomicU64,
    /// Mining runs actually executed by the worker pool.
    pub jobs_mined: AtomicU64,
    /// Sliding window of recent job latencies (submit → terminal state), in
    /// microseconds.
    latencies: Mutex<LatencyWindow>,
}

#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    /// Next overwrite position once the window is full (ring buffer).
    cursor: usize,
}

impl ServiceMetrics {
    /// Records one job latency (submission to terminal state).
    pub fn record_latency(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut window = self.latencies.lock();
        if window.samples.len() < LATENCY_WINDOW {
            window.samples.push(micros);
        } else {
            let cursor = window.cursor;
            window.samples[cursor] = micros;
            window.cursor = (cursor + 1) % LATENCY_WINDOW;
        }
    }

    /// The (p50, p99) job latencies over the recent window, or zeros when no
    /// job has finished yet.
    ///
    /// Uses `select_nth_unstable` per percentile instead of fully sorting the
    /// window copy: `O(n)` rather than `O(n log n)` per metrics poll.
    pub fn latency_percentiles(&self) -> (Duration, Duration) {
        let mut samples = {
            let window = self.latencies.lock();
            window.samples.clone()
        };
        if samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let mut pick = |q_num: usize, q_den: usize| {
            // Nearest-rank percentile: index ⌈q·n⌉ − 1.
            let rank = (samples.len() * q_num).div_ceil(q_den).saturating_sub(1);
            let (_, &mut v, _) = samples.select_nth_unstable(rank);
            Duration::from_micros(v)
        };
        (pick(50, 100), pick(99, 100))
    }
}

/// A point-in-time view of the service, returned by
/// [`crate::MiningService::metrics`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently being mined.
    pub in_flight: usize,
    /// Live answers in the result cache.
    pub cache_entries: usize,
    /// Jobs accepted by admission control (including cache hits).
    pub submitted: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
    /// Jobs that reached a terminal state with a result.
    pub completed: u64,
    /// Jobs cancelled (before start or mid-run).
    pub cancelled: u64,
    /// Jobs whose run failed inside the engine.
    pub failed: u64,
    /// Submits answered from the result cache without mining.
    pub cache_hits: u64,
    /// Submits that had to mine.
    pub cache_misses: u64,
    /// Mining runs actually executed.
    pub jobs_mined: u64,
    /// Median job latency (submit → terminal) over the recent window.
    pub p50_latency: Duration,
    /// 99th-percentile job latency over the recent window.
    pub p99_latency: Duration,
}

impl MetricsSnapshot {
    /// Fraction of admitted submits served from the cache, in `[0, 1]`
    /// (`None` before any submit was admitted).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

impl ServiceMetrics {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_entries: usize,
    ) -> MetricsSnapshot {
        let (p50, p99) = self.latency_percentiles();
        MetricsSnapshot {
            queue_depth,
            in_flight,
            cache_entries,
            // ordering: Relaxed — monitoring snapshot; counters may be mutually
            // skewed by in-flight updates, which dashboards tolerate.
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            jobs_mined: self.jobs_mined.load(Ordering::Relaxed),
            p50_latency: p50,
            p99_latency: p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_known_distribution() {
        let metrics = ServiceMetrics::default();
        assert_eq!(
            metrics.latency_percentiles(),
            (Duration::ZERO, Duration::ZERO)
        );
        // 1..=100 ms: p50 = 50 ms, p99 = 99 ms by nearest rank.
        for ms in 1..=100u64 {
            metrics.record_latency(Duration::from_millis(ms));
        }
        let (p50, p99) = metrics.latency_percentiles();
        assert_eq!(p50, Duration::from_millis(50));
        assert_eq!(p99, Duration::from_millis(99));
    }

    #[test]
    fn window_slides_once_full() {
        let metrics = ServiceMetrics::default();
        // Fill beyond the window with a low plateau, then overwrite the
        // oldest entries with a high plateau.
        for _ in 0..LATENCY_WINDOW {
            metrics.record_latency(Duration::from_micros(10));
        }
        for _ in 0..LATENCY_WINDOW / 2 {
            metrics.record_latency(Duration::from_micros(1_000_000));
        }
        let (p50, p99) = metrics.latency_percentiles();
        // Half the window is now the high plateau: the p99 must reflect it.
        assert_eq!(p99, Duration::from_secs(1));
        assert!(p50 <= Duration::from_secs(1));
    }

    #[test]
    fn snapshot_copies_counters_and_gauges() {
        let metrics = ServiceMetrics::default();
        metrics.submitted.store(5, Ordering::Relaxed);
        metrics.cache_hits.store(2, Ordering::Relaxed);
        metrics.cache_misses.store(3, Ordering::Relaxed);
        let snap = metrics.snapshot(7, 1, 4);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.cache_entries, 4);
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.cache_hit_rate(), Some(0.4));
    }

    #[test]
    fn hit_rate_is_none_without_traffic() {
        let snap = ServiceMetrics::default().snapshot(0, 0, 0);
        assert_eq!(snap.cache_hit_rate(), None);
    }
}
