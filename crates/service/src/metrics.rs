//! Service observability: counters, gauges and job-latency percentiles.

use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::Mutex;
use std::time::Duration;

/// How many recent job latencies the percentile window keeps. A power of two
/// around "a few minutes of heavy traffic"; beyond it the window slides.
const LATENCY_WINDOW: usize = 4096;

/// Shared, lock-free-where-possible counters of a [`crate::MiningService`].
///
/// All counters are monotone; gauges (queue depth, in-flight, cache size) are
/// read from the live service state at snapshot time instead of being
/// tracked here, so they can never drift.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Jobs accepted by admission control (including cache hits).
    pub submitted: AtomicU64,
    /// Submits rejected by admission control.
    pub rejected: AtomicU64,
    /// Jobs that reached a terminal state with a result.
    pub completed: AtomicU64,
    /// Jobs cancelled (before start or mid-run).
    pub cancelled: AtomicU64,
    /// Jobs whose run failed inside the engine.
    pub failed: AtomicU64,
    /// Submits answered from the result cache without mining.
    pub cache_hits: AtomicU64,
    /// Submits that had to mine (no cached answer).
    pub cache_misses: AtomicU64,
    /// Mining runs actually executed by the worker pool.
    pub jobs_mined: AtomicU64,
    /// Sliding window of recent job latencies (submit → terminal state), in
    /// microseconds.
    latencies: Mutex<LatencyWindow>,
}

#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    /// Next overwrite position once the window is full (ring buffer).
    cursor: usize,
    /// Every latency ever recorded, including ones the ring has since
    /// overwritten — the *true* sample count the percentiles are a window
    /// over.
    total: u64,
}

impl ServiceMetrics {
    /// Records one job latency (submission to terminal state).
    pub fn record_latency(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut window = self.latencies.lock();
        window.total += 1;
        if window.samples.len() < LATENCY_WINDOW {
            window.samples.push(micros);
        } else {
            let cursor = window.cursor;
            window.samples[cursor] = micros;
            window.cursor = (cursor + 1) % LATENCY_WINDOW;
        }
    }

    /// `(recorded, dropped)` latency sample counts: how many latencies were
    /// ever recorded, and how many of those the sliding window has already
    /// overwritten. `dropped > 0` means the percentiles describe only the
    /// most recent `LATENCY_WINDOW` (4096) jobs, not the whole run.
    pub fn latency_sample_counts(&self) -> (u64, u64) {
        let window = self.latencies.lock();
        let kept = window.samples.len() as u64;
        (window.total, window.total.saturating_sub(kept))
    }

    /// The (p50, p99) job latencies over the recent window, or zeros when no
    /// job has finished yet.
    ///
    /// Uses `select_nth_unstable` per percentile instead of fully sorting the
    /// window copy: `O(n)` rather than `O(n log n)` per metrics poll.
    pub fn latency_percentiles(&self) -> (Duration, Duration) {
        let mut samples = {
            let window = self.latencies.lock();
            window.samples.clone()
        };
        if samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let mut pick = |q_num: usize, q_den: usize| {
            // Nearest-rank percentile: index ⌈q·n⌉ − 1.
            let rank = (samples.len() * q_num).div_ceil(q_den).saturating_sub(1);
            let (_, &mut v, _) = samples.select_nth_unstable(rank);
            Duration::from_micros(v)
        };
        (pick(50, 100), pick(99, 100))
    }
}

/// A point-in-time view of the service, returned by
/// [`crate::MiningService::metrics`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently being mined.
    pub in_flight: usize,
    /// Live answers in the result cache.
    pub cache_entries: usize,
    /// Jobs accepted by admission control (including cache hits).
    pub submitted: u64,
    /// Submits rejected by admission control.
    pub rejected: u64,
    /// Jobs that reached a terminal state with a result.
    pub completed: u64,
    /// Jobs cancelled (before start or mid-run).
    pub cancelled: u64,
    /// Jobs whose run failed inside the engine.
    pub failed: u64,
    /// Submits answered from the result cache without mining.
    pub cache_hits: u64,
    /// Submits that had to mine.
    pub cache_misses: u64,
    /// Mining runs actually executed.
    pub jobs_mined: u64,
    /// Median job latency (submit → terminal) over the recent window.
    pub p50_latency: Duration,
    /// 99th-percentile job latency over the recent window.
    pub p99_latency: Duration,
    /// Every latency ever recorded (the true sample count; the percentile
    /// window holds at most the most recent 4096 of these).
    pub latency_samples: u64,
    /// Samples the sliding window has overwritten. Non-zero means the
    /// percentiles cover a suffix of the run, not all of it.
    pub latency_samples_dropped: u64,
}

impl MetricsSnapshot {
    /// Fraction of admitted submits served from the cache, in `[0, 1]`
    /// (`None` before any submit was admitted).
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }

    /// Publishes this snapshot into `registry` under the `qcm_service_*`
    /// namespace — the bridge the Prometheus exposition of `qcm serve`'s
    /// `metrics prom` command is rendered from. Idempotent: re-publishing
    /// overwrites the previous snapshot's values.
    pub fn publish(&self, registry: &qcm_obs::Registry) {
        let gauges: [(&'static str, &'static str, f64); 3] = [
            (
                "qcm_service_queue_depth",
                "Jobs waiting in the queue.",
                self.queue_depth as f64,
            ),
            (
                "qcm_service_jobs_in_flight",
                "Jobs currently being mined.",
                self.in_flight as f64,
            ),
            (
                "qcm_service_cache_entries",
                "Live answers in the result cache.",
                self.cache_entries as f64,
            ),
        ];
        for (name, help, value) in gauges {
            registry.gauge(name, help).set(value);
        }
        let counters: [(&'static str, &'static str, u64); 10] = [
            (
                "qcm_service_submitted_total",
                "Jobs accepted by admission control.",
                self.submitted,
            ),
            (
                "qcm_service_rejected_total",
                "Submits rejected by admission control.",
                self.rejected,
            ),
            (
                "qcm_service_completed_total",
                "Jobs that reached a terminal state with a result.",
                self.completed,
            ),
            (
                "qcm_service_cancelled_total",
                "Jobs cancelled before or during their run.",
                self.cancelled,
            ),
            (
                "qcm_service_failed_total",
                "Jobs whose run failed inside the engine.",
                self.failed,
            ),
            (
                "qcm_service_cache_hits_total",
                "Submits answered from the result cache.",
                self.cache_hits,
            ),
            (
                "qcm_service_cache_misses_total",
                "Submits that had to mine.",
                self.cache_misses,
            ),
            (
                "qcm_service_jobs_mined_total",
                "Mining runs executed by the worker pool.",
                self.jobs_mined,
            ),
            (
                "qcm_service_latency_samples_total",
                "Job latencies ever recorded.",
                self.latency_samples,
            ),
            (
                "qcm_service_latency_samples_dropped_total",
                "Latency samples overwritten by the sliding percentile window.",
                self.latency_samples_dropped,
            ),
        ];
        for (name, help, value) in counters {
            registry.counter(name, help).set_total(value);
        }
        let latency = |q: &'static str, d: Duration| {
            registry
                .gauge_with(
                    "qcm_service_job_latency_seconds",
                    "Job latency (submit to terminal state) over the recent window.",
                    &[("quantile", q)],
                )
                .set(d.as_secs_f64());
        };
        latency("0.5", self.p50_latency);
        latency("0.99", self.p99_latency);
    }
}

impl ServiceMetrics {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        in_flight: usize,
        cache_entries: usize,
    ) -> MetricsSnapshot {
        let (p50, p99) = self.latency_percentiles();
        let (latency_samples, latency_samples_dropped) = self.latency_sample_counts();
        MetricsSnapshot {
            queue_depth,
            in_flight,
            cache_entries,
            // ordering: Relaxed — monitoring snapshot; counters may be mutually
            // skewed by in-flight updates, which dashboards tolerate.
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            jobs_mined: self.jobs_mined.load(Ordering::Relaxed),
            p50_latency: p50,
            p99_latency: p99,
            latency_samples,
            latency_samples_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_a_known_distribution() {
        let metrics = ServiceMetrics::default();
        assert_eq!(
            metrics.latency_percentiles(),
            (Duration::ZERO, Duration::ZERO)
        );
        // 1..=100 ms: p50 = 50 ms, p99 = 99 ms by nearest rank.
        for ms in 1..=100u64 {
            metrics.record_latency(Duration::from_millis(ms));
        }
        let (p50, p99) = metrics.latency_percentiles();
        assert_eq!(p50, Duration::from_millis(50));
        assert_eq!(p99, Duration::from_millis(99));
    }

    #[test]
    fn window_slides_once_full() {
        let metrics = ServiceMetrics::default();
        // Fill beyond the window with a low plateau, then overwrite the
        // oldest entries with a high plateau.
        for _ in 0..LATENCY_WINDOW {
            metrics.record_latency(Duration::from_micros(10));
        }
        for _ in 0..LATENCY_WINDOW / 2 {
            metrics.record_latency(Duration::from_micros(1_000_000));
        }
        let (p50, p99) = metrics.latency_percentiles();
        // Half the window is now the high plateau: the p99 must reflect it.
        assert_eq!(p99, Duration::from_secs(1));
        assert!(p50 <= Duration::from_secs(1));
    }

    #[test]
    fn wrap_reports_true_count_and_drops() {
        let metrics = ServiceMetrics::default();
        for _ in 0..LATENCY_WINDOW / 2 {
            metrics.record_latency(Duration::from_micros(1));
        }
        assert_eq!(
            metrics.latency_sample_counts(),
            (LATENCY_WINDOW as u64 / 2, 0),
            "no drops before the window fills"
        );
        for _ in 0..LATENCY_WINDOW {
            metrics.record_latency(Duration::from_micros(1));
        }
        let (total, dropped) = metrics.latency_sample_counts();
        assert_eq!(
            total,
            LATENCY_WINDOW as u64 * 3 / 2,
            "true count keeps growing"
        );
        assert_eq!(dropped, LATENCY_WINDOW as u64 / 2, "overwrites are drops");
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!(snap.latency_samples, total);
        assert_eq!(snap.latency_samples_dropped, dropped);
    }

    #[test]
    fn snapshot_publishes_to_a_registry() {
        let metrics = ServiceMetrics::default();
        metrics.submitted.store(5, Ordering::Relaxed);
        metrics.record_latency(Duration::from_millis(8));
        let snap = metrics.snapshot(2, 1, 0);
        let registry = qcm_obs::Registry::new();
        snap.publish(&registry);
        let text = qcm_obs::prometheus::render(&registry);
        qcm_obs::prometheus::check_text(&text).expect("exposition must be well-formed");
        assert!(text.contains("qcm_service_submitted_total 5"));
        assert!(text.contains("qcm_service_queue_depth 2"));
        assert!(text.contains("qcm_service_latency_samples_total 1"));
        assert!(text.contains("qcm_service_job_latency_seconds{quantile=\"0.5\"} 0.008"));
    }

    #[test]
    fn snapshot_copies_counters_and_gauges() {
        let metrics = ServiceMetrics::default();
        metrics.submitted.store(5, Ordering::Relaxed);
        metrics.cache_hits.store(2, Ordering::Relaxed);
        metrics.cache_misses.store(3, Ordering::Relaxed);
        let snap = metrics.snapshot(7, 1, 4);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.cache_entries, 4);
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.cache_hit_rate(), Some(0.4));
    }

    #[test]
    fn hit_rate_is_none_without_traffic() {
        let snap = ServiceMetrics::default().snapshot(0, 0, 0);
        assert_eq!(snap.cache_hit_rate(), None);
    }
}
