//! The pending-job queue: priority bands with per-tenant round-robin.
//!
//! Dispatch order is: highest non-empty priority band first; within a band,
//! tenants take turns (round-robin over tenants with pending work) and each
//! tenant's own jobs run FIFO. A tenant that floods the queue therefore
//! delays only its own jobs — other tenants in the same band still get every
//! n-th dispatch slot.

use crate::job::{JobId, Priority};
use std::collections::{HashMap, VecDeque};

/// One priority band: FIFO per tenant plus the round-robin rotation.
///
/// Invariant: `rotation` contains a tenant exactly once iff that tenant's
/// queue is non-empty.
#[derive(Debug, Default)]
struct Band {
    rotation: VecDeque<String>,
    queues: HashMap<String, VecDeque<JobId>>,
}

impl Band {
    fn push(&mut self, tenant: &str, job: JobId) {
        let queue = self.queues.entry(tenant.to_string()).or_default();
        if queue.is_empty() {
            self.rotation.push_back(tenant.to_string());
        }
        queue.push_back(job);
    }

    fn pop(&mut self) -> Option<JobId> {
        let tenant = self.rotation.pop_front()?;
        let queue = self
            .queues
            .get_mut(&tenant)
            .expect("rotation tenant must have a queue");
        let job = queue.pop_front().expect("rotation tenant queue non-empty");
        if queue.is_empty() {
            self.queues.remove(&tenant);
        } else {
            // Served once: go to the back of the rotation.
            self.rotation.push_back(tenant);
        }
        Some(job)
    }

    fn remove(&mut self, tenant: &str, job: JobId) -> bool {
        let Some(queue) = self.queues.get_mut(tenant) else {
            return false;
        };
        let Some(pos) = queue.iter().position(|&j| j == job) else {
            return false;
        };
        queue.remove(pos);
        if queue.is_empty() {
            self.queues.remove(tenant);
            if let Some(pos) = self.rotation.iter().position(|t| t == tenant) {
                self.rotation.remove(pos);
            }
        }
        true
    }
}

/// The pending-job queue (see the [module docs](self) for the dispatch
/// policy).
#[derive(Debug, Default)]
pub struct JobQueue {
    bands: [Band; 3],
    len: usize,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued jobs across all bands and tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued jobs of one tenant (any band).
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.bands
            .iter()
            .filter_map(|b| b.queues.get(tenant))
            .map(VecDeque::len)
            .sum()
    }

    /// Enqueues a job.
    pub fn push(&mut self, tenant: &str, priority: Priority, job: JobId) {
        self.bands[priority.band()].push(tenant, job);
        self.len += 1;
    }

    /// Dequeues the next job to dispatch, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<JobId> {
        for band in &mut self.bands {
            if let Some(job) = band.pop() {
                self.len -= 1;
                return Some(job);
            }
        }
        None
    }

    /// Removes a specific queued job (used by cancellation). Returns false if
    /// the job is not in the queue.
    pub fn remove(&mut self, tenant: &str, priority: Priority, job: JobId) -> bool {
        let removed = self.bands[priority.band()].remove(tenant, job);
        if removed {
            self.len -= 1;
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> JobId {
        JobId::from_raw(raw)
    }

    #[test]
    fn higher_priority_band_always_dispatches_first() {
        let mut q = JobQueue::new();
        q.push("t", Priority::Low, id(1));
        q.push("t", Priority::Normal, id(2));
        q.push("t", Priority::High, id(3));
        q.push("t", Priority::High, id(4));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(id(3)));
        assert_eq!(q.pop(), Some(id(4)));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), Some(id(1)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn tenants_within_a_band_are_served_round_robin() {
        let mut q = JobQueue::new();
        // Tenant a floods; tenant b submits two jobs afterwards.
        for i in 0..4 {
            q.push("a", Priority::Normal, id(i));
        }
        q.push("b", Priority::Normal, id(10));
        q.push("b", Priority::Normal, id(11));
        let order: Vec<JobId> = std::iter::from_fn(|| q.pop()).collect();
        // a and b alternate until b drains, then a finishes its backlog.
        assert_eq!(
            order,
            vec![id(0), id(10), id(1), id(11), id(2), id(3)],
            "flooding tenant a must not starve tenant b"
        );
    }

    #[test]
    fn per_tenant_order_is_fifo() {
        let mut q = JobQueue::new();
        q.push("a", Priority::Normal, id(1));
        q.push("a", Priority::Normal, id(2));
        q.push("a", Priority::Normal, id(3));
        assert_eq!(q.pop(), Some(id(1)));
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), Some(id(3)));
    }

    #[test]
    fn remove_unlinks_the_job_and_fixes_rotation() {
        let mut q = JobQueue::new();
        q.push("a", Priority::Normal, id(1));
        q.push("b", Priority::Normal, id(2));
        assert_eq!(q.tenant_depth("a"), 1);
        assert!(q.remove("a", Priority::Normal, id(1)));
        assert!(!q.remove("a", Priority::Normal, id(1)), "already gone");
        assert!(
            !q.remove("b", Priority::High, id(2)),
            "wrong band must not match"
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenant_depth("a"), 0);
        // Rotation no longer contains tenant a: pop serves b then drains.
        assert_eq!(q.pop(), Some(id(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_from_middle_keeps_other_jobs_of_the_tenant() {
        let mut q = JobQueue::new();
        q.push("a", Priority::Low, id(1));
        q.push("a", Priority::Low, id(2));
        q.push("a", Priority::Low, id(3));
        assert!(q.remove("a", Priority::Low, id(2)));
        assert_eq!(q.pop(), Some(id(1)));
        assert_eq!(q.pop(), Some(id(3)));
        assert_eq!(q.pop(), None);
    }
}
