//! The typed service error.

use crate::job::JobId;
use qcm::QcmError;
use std::fmt;

/// Errors of the mining job service.
///
/// Load shedding is a first-class outcome, not a string: an
/// [`ServiceError::Overloaded`] rejection is returned *synchronously* at
/// submit time (fail fast), so callers can back off or shed to another
/// replica instead of queueing unboundedly.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control rejected the job: the queue is full or the tenant
    /// exceeded its quota. Retry later or on another instance.
    Overloaded {
        /// Human-readable description of the exceeded limit.
        reason: String,
    },
    /// The job's mining configuration failed validation (the underlying
    /// `Session` builder error).
    InvalidJob(QcmError),
    /// No job with this id was ever submitted to this service.
    UnknownJob(JobId),
    /// The job was cancelled while still queued, so it never produced a
    /// result. (A job cancelled *mid-run* is not an error: it completes with
    /// a partial result labelled `RunOutcome::Cancelled`.)
    Cancelled(JobId),
    /// The job's run failed inside the engine.
    JobFailed {
        /// The failed job.
        job: JobId,
        /// Engine error description.
        message: String,
    },
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { reason } => write!(f, "overloaded: {reason}"),
            ServiceError::InvalidJob(e) => write!(f, "invalid job: {e}"),
            ServiceError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServiceError::Cancelled(id) => {
                write!(f, "job {id} was cancelled before it started")
            }
            ServiceError::JobFailed { job, message } => {
                write!(f, "job {job} failed: {message}")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidJob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QcmError> for ServiceError {
    fn from(e: QcmError) -> Self {
        ServiceError::InvalidJob(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Overloaded {
            reason: "queue full".into(),
        };
        assert!(e.to_string().contains("queue full"));
        assert!(ServiceError::UnknownJob(JobId::from_raw(7))
            .to_string()
            .contains('7'));
        assert!(ServiceError::Cancelled(JobId::from_raw(3))
            .to_string()
            .contains("cancelled"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shut"));
        assert!(ServiceError::JobFailed {
            job: JobId::from_raw(1),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn invalid_job_wraps_and_exposes_the_qcm_error() {
        let e: ServiceError = QcmError::InvalidConfig("gamma out of range".into()).into();
        assert!(matches!(e, ServiceError::InvalidJob(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gamma"));
        assert!(ServiceError::ShuttingDown.source().is_none());
    }
}
