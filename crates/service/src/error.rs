//! The typed service error and its stable wire taxonomy.

use crate::job::JobId;
use qcm::prelude::{ApiError, ErrorCode};
use qcm::QcmError;
use std::fmt;

/// Errors of the mining job service.
///
/// Load shedding is a first-class outcome, not a string: an
/// [`ServiceError::Overloaded`] or [`ServiceError::QuotaExceeded`] rejection
/// is returned *synchronously* at submit time (fail fast), so callers can
/// back off or shed to another replica instead of queueing unboundedly.
///
/// Every variant maps to a stable machine-readable [`ErrorCode`] via
/// [`ServiceError::code`]; the HTTP listener and the CLI both derive their
/// status / exit codes from that one table, so the wire taxonomy cannot
/// drift between transports. The enum is `#[non_exhaustive]` — new failure
/// modes may appear in later releases, and clients must match with a
/// wildcard arm.
#[non_exhaustive]
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control rejected the job: the global queue is full. Retry
    /// later or on another instance.
    Overloaded {
        /// Jobs waiting in the queue at rejection time.
        queued: usize,
        /// The configured [`crate::AdmissionControl::max_queued`] limit.
        limit: usize,
    },
    /// Admission control rejected the job: this tenant is over its
    /// unfinished-job quota. Other tenants are unaffected.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
        /// The tenant's unfinished (queued + running) jobs at rejection time.
        unfinished: usize,
        /// The configured [`crate::AdmissionControl::per_tenant_quota`].
        quota: usize,
    },
    /// The job's mining configuration failed validation (the underlying
    /// `Session` builder error).
    InvalidJob(QcmError),
    /// No job with this id was ever submitted to this service.
    UnknownJob(JobId),
    /// The job was cancelled while still queued, so it never produced a
    /// result. (A job cancelled *mid-run* is not an error: it completes with
    /// a partial result labelled `RunOutcome::Cancelled`.)
    Cancelled(JobId),
    /// The job's run failed inside the engine.
    JobFailed {
        /// The failed job.
        job: JobId,
        /// Engine error description.
        message: String,
    },
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
}

impl ServiceError {
    /// The stable machine-readable code of this error — the single source
    /// of its wire string, HTTP status, and CLI exit code.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServiceError::Overloaded { .. } => ErrorCode::Overloaded,
            ServiceError::QuotaExceeded { .. } => ErrorCode::QuotaExceeded,
            ServiceError::InvalidJob(_) => ErrorCode::BadRequest,
            ServiceError::UnknownJob(_) => ErrorCode::UnknownJob,
            ServiceError::Cancelled(_) => ErrorCode::JobCancelled,
            ServiceError::JobFailed { .. } => ErrorCode::JobFailed,
            ServiceError::ShuttingDown => ErrorCode::ShuttingDown,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queued, limit } => {
                write!(
                    f,
                    "overloaded: queue is full ({queued} jobs queued, limit {limit})"
                )
            }
            ServiceError::QuotaExceeded {
                tenant,
                unfinished,
                quota,
            } => write!(
                f,
                "tenant {tenant:?} has {unfinished} unfinished jobs (quota {quota})"
            ),
            ServiceError::InvalidJob(e) => write!(f, "invalid job: {e}"),
            ServiceError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServiceError::Cancelled(id) => {
                write!(f, "job {id} was cancelled before it started")
            }
            ServiceError::JobFailed { job, message } => {
                write!(f, "job {job} failed: {message}")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidJob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QcmError> for ServiceError {
    fn from(e: QcmError) -> Self {
        ServiceError::InvalidJob(e)
    }
}

impl From<ServiceError> for ApiError {
    fn from(e: ServiceError) -> Self {
        ApiError::new(e.code(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_informative() {
        let e = ServiceError::Overloaded {
            queued: 4,
            limit: 4,
        };
        assert!(e.to_string().contains("queue is full"));
        assert!(ServiceError::UnknownJob(JobId::from_raw(7))
            .to_string()
            .contains('7'));
        assert!(ServiceError::Cancelled(JobId::from_raw(3))
            .to_string()
            .contains("cancelled"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shut"));
        assert!(ServiceError::JobFailed {
            job: JobId::from_raw(1),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(ServiceError::QuotaExceeded {
            tenant: "greedy".into(),
            unfinished: 3,
            quota: 3
        }
        .to_string()
        .contains("greedy"));
    }

    #[test]
    fn every_variant_has_a_stable_code() {
        assert_eq!(
            ServiceError::Overloaded {
                queued: 1,
                limit: 1
            }
            .code(),
            ErrorCode::Overloaded
        );
        assert_eq!(
            ServiceError::QuotaExceeded {
                tenant: "t".into(),
                unfinished: 1,
                quota: 1
            }
            .code(),
            ErrorCode::QuotaExceeded
        );
        assert_eq!(
            ServiceError::InvalidJob(QcmError::InvalidConfig("x".into())).code(),
            ErrorCode::BadRequest
        );
        assert_eq!(
            ServiceError::UnknownJob(JobId::from_raw(1)).code(),
            ErrorCode::UnknownJob
        );
        assert_eq!(
            ServiceError::Cancelled(JobId::from_raw(1)).code(),
            ErrorCode::JobCancelled
        );
        assert_eq!(
            ServiceError::JobFailed {
                job: JobId::from_raw(1),
                message: String::new()
            }
            .code(),
            ErrorCode::JobFailed
        );
        assert_eq!(ServiceError::ShuttingDown.code(), ErrorCode::ShuttingDown);
        // Both shed codes answer 429 on the HTTP surface.
        assert_eq!(ErrorCode::Overloaded.http_status(), 429);
        assert_eq!(ErrorCode::QuotaExceeded.http_status(), 429);
    }

    #[test]
    fn converts_into_the_wire_api_error() {
        let api: ApiError = ServiceError::ShuttingDown.into();
        assert_eq!(api.code, ErrorCode::ShuttingDown);
        assert!(api.message.contains("shut"));
    }

    #[test]
    fn invalid_job_wraps_and_exposes_the_qcm_error() {
        let e: ServiceError = QcmError::InvalidConfig("gamma out of range".into()).into();
        assert!(matches!(e, ServiceError::InvalidJob(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gamma"));
        assert!(ServiceError::ShuttingDown.source().is_none());
    }
}
