//! # qcm-service — multi-tenant mining job service
//!
//! The paper's engine mines maximal quasi-cliques as one batch run; a
//! production deployment instead faces a *stream* of queries from many
//! tenants, most of them repeats. This crate turns the `qcm::Session` front
//! door into an embeddable, thread-based job service:
//!
//! * [`MiningService`] — the service itself: `submit → JobId`, `status`,
//!   `cancel`, deadline-bounded `poll_fetch` / non-blocking `try_fetch`
//!   (the unbounded blocking `fetch` is deprecated), and streaming delivery
//!   through the standard `qcm::ResultSink`.
//! * [`JobQueue`] — priority bands with per-tenant round-robin, so one
//!   flooding tenant delays only its own jobs.
//! * A [`WorkerPool`][MiningService::start]: OS threads that execute each
//!   job as a `qcm::Session` run (serial or parallel backend) with the
//!   job's deadline and a per-job `CancelToken` wired through, so deadline
//!   hits and cancellations produce *partial, well-labelled* results instead
//!   of errors or runaway compute.
//! * [`ResultCache`] — completed answers keyed by
//!   [`QueryKey`](qcm_core::QueryKey) (graph content hash + γ + τ_size +
//!   pruning config) with LRU + TTL eviction: a repeated query is answered
//!   without re-mining, in microseconds.
//! * [`AdmissionControl`] — bounded queue, bounded concurrency and
//!   per-tenant quotas; an overloaded service rejects *synchronously* with
//!   the typed [`ServiceError::Overloaded`] instead of queueing unboundedly.
//! * [`ServiceMetrics`] / [`MetricsSnapshot`] — queue depth, in-flight
//!   count, cache hit rate, and p50/p99 job latency over a sliding window.
//!
//! The CLI front end exposes the same lifecycle as `qcm serve`
//! (line-delimited request/response over stdin/stdout); the `job_service`
//! example drives a mixed hot/cold workload across tenants.
//!
//! ## Example
//!
//! ```
//! use qcm_service::{JobRequest, MiningService, ServiceConfig};
//! use qcm_sync::Arc;
//! use std::time::Duration;
//!
//! let dataset = qcm::gen::datasets::tiny_test_dataset(7);
//! let graph = Arc::new(dataset.graph.clone());
//!
//! let service = MiningService::start(ServiceConfig::default());
//! let gamma = dataset.spec.gamma;
//! let min_size = dataset.spec.min_size;
//! let wait = Duration::from_secs(60);
//!
//! // Cold query: mined by the worker pool, awaited via long-poll.
//! let job = service.submit(JobRequest::new(graph.clone(), gamma, min_size))?;
//! let cold = service.poll_fetch(job, wait)?.expect("tiny graph mines fast");
//! assert!(!cold.cache_hit);
//! assert!(cold.is_complete());
//!
//! // Identical query again: served from the result cache.
//! let job = service.submit(JobRequest::new(graph, gamma, min_size))?;
//! let hot = service.poll_fetch(job, wait)?.expect("cache hits are instant");
//! assert!(hot.cache_hit);
//! assert_eq!(hot.maximal(), cold.maximal());
//! assert_eq!(service.metrics().cache_hits, 1);
//!
//! service.shutdown();
//! # Ok::<(), qcm_service::ServiceError>(())
//! ```
//!
//! ## Semantics worth knowing
//!
//! * **Deadlines are execution budgets.** A job's deadline starts counting
//!   when a worker picks it up; a deadline hit completes the job with a
//!   partial result labelled `RunOutcome::DeadlineExceeded` — not an error.
//! * **Cancellation is two different things.** Cancelling a *queued* job
//!   removes it before it ever starts (no result; `poll_fetch` returns
//!   [`ServiceError::Cancelled`]). Cancelling a *running* job fires its
//!   `CancelToken`; the miner unwinds cooperatively and the job ends
//!   `Cancelled` *with* the partial result found so far.
//! * **Only complete answers are cached.** Partial results are returned to
//!   their own job but never served to later identical queries.
//! * **The backend is not part of the cache key.** Serial and parallel runs
//!   of the same query produce identical maximal sets (enforced by the
//!   workspace equivalence tests), so either may serve the other's repeats.

pub mod admission;
pub mod cache;
pub mod error;
pub mod job;
pub mod metrics;
pub mod queue;
pub mod service;

pub use admission::AdmissionControl;
pub use cache::ResultCache;
pub use error::ServiceError;
pub use job::{JobId, JobRequest, JobResult, JobStatus, MinedAnswer, Priority};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use queue::JobQueue;
pub use service::{MiningService, ServiceConfig};
