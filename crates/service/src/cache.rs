//! The result cache: completed answers keyed by query fingerprint.
//!
//! Repeated queries — the "hot" traffic of a production deployment — are
//! served straight from memory without re-mining. Entries are keyed by
//! [`QueryKey`] (graph content hash + γ + τ_size + pruning configuration) and
//! evicted least-recently-used once the cache is full, or lazily once their
//! time-to-live expires. Only [`RunOutcome::Complete`](qcm_core::RunOutcome)
//! answers are ever inserted: a partial (deadline/cancel) result is correct
//! only for the job that produced it and must never be served as the answer
//! to the query.

use crate::job::MinedAnswer;
use qcm_core::QueryKey;
use qcm_obs::clock::Instant;
use qcm_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Debug)]
struct Entry {
    answer: Arc<MinedAnswer>,
    inserted: Instant,
    last_used: u64,
}

/// An LRU + TTL cache of completed mining answers.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    ttl: Option<Duration>,
    entries: HashMap<QueryKey, Entry>,
    /// Logical clock for recency: bumped on every get/insert.
    tick: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` answers, each valid for `ttl`
    /// (`None` = no expiry). `capacity == 0` disables caching entirely.
    pub fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        ResultCache {
            capacity,
            ttl,
            entries: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of live (non-expired) answers. Expired entries are dropped by
    /// this call, so the count is exact.
    pub fn len(&mut self) -> usize {
        self.purge_expired();
        self.entries.len()
    }

    /// True if the cache holds no live answers.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Looks up a query, bumping its recency. An expired entry is removed and
    /// reported as a miss.
    pub fn get(&mut self, key: &QueryKey) -> Option<Arc<MinedAnswer>> {
        if self
            .entries
            .get(key)
            .is_some_and(|e| self.is_expired(e.inserted))
        {
            self.entries.remove(key);
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.answer.clone())
    }

    /// Inserts a completed answer, evicting expired entries first and then
    /// the least-recently-used one if still over capacity.
    ///
    /// # Panics
    /// Debug-asserts that the answer is complete — caching partial answers is
    /// a correctness bug, see the [module docs](self).
    pub fn insert(&mut self, key: QueryKey, answer: Arc<MinedAnswer>) {
        debug_assert!(
            answer.outcome.is_complete(),
            "only complete answers may be cached"
        );
        if self.capacity == 0 {
            return;
        }
        self.purge_expired();
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
            }
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                answer,
                inserted: Instant::now(),
                last_used: self.tick,
            },
        );
    }

    fn is_expired(&self, inserted: Instant) -> bool {
        self.ttl.is_some_and(|ttl| inserted.elapsed() >= ttl)
    }

    fn purge_expired(&mut self) {
        if let Some(ttl) = self.ttl {
            self.entries.retain(|_, e| e.inserted.elapsed() < ttl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_core::{MiningParams, PruneConfig, QuasiCliqueSet, RunOutcome};

    fn key(graph: u64) -> QueryKey {
        QueryKey::new(graph, MiningParams::new(0.9, 5), PruneConfig::all_enabled())
    }

    fn answer() -> Arc<MinedAnswer> {
        Arc::new(MinedAnswer {
            maximal: QuasiCliqueSet::new(),
            raw_reported: 0,
            outcome: RunOutcome::Complete,
            mining_time: Duration::from_millis(1),
        })
    }

    #[test]
    fn get_hits_and_misses() {
        let mut cache = ResultCache::new(4, None);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), answer());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(key(1), answer());
        cache.insert(key(2), answer());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), answer());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be gone");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict_others() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(key(1), answer());
        cache.insert(key(2), answer());
        cache.insert(key(2), answer());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_some());
    }

    #[test]
    fn ttl_expires_entries() {
        let mut cache = ResultCache::new(4, Some(Duration::ZERO));
        cache.insert(key(1), answer());
        // Zero TTL: expired by the time of the lookup.
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.len(), 0);

        let mut cache = ResultCache::new(4, Some(Duration::from_secs(3600)));
        cache.insert(key(1), answer());
        assert!(cache.get(&key(1)).is_some(), "well within TTL");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0, None);
        cache.insert(key(1), answer());
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.is_empty());
    }
}
