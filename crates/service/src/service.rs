//! The mining job service: submission, scheduling, execution, results.

use crate::admission::AdmissionControl;
use crate::cache::ResultCache;
use crate::error::ServiceError;
use crate::job::{JobId, JobRequest, JobResult, JobStatus, MinedAnswer, ParamsInput, Priority};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::queue::JobQueue;
use qcm::{CancelToken, IndexSpec, PreparedGraph, ResultSink, RunOutcome, Session};
use qcm_core::QueryKey;
use qcm_graph::Graph;
use qcm_obs::clock::Instant;
use qcm_sync::atomic::Ordering;
use qcm_sync::thread::JoinHandle;
use qcm_sync::{Arc, Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::time::Duration;

/// Static configuration of a [`MiningService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (clamped to at least 1).
    pub workers: usize,
    /// Admission limits (queue bound, concurrency bound, tenant quotas).
    pub admission: AdmissionControl,
    /// Result-cache capacity in answers (0 disables caching).
    pub cache_capacity: usize,
    /// Result-cache time-to-live (`None` = answers never expire).
    pub cache_ttl: Option<Duration>,
    /// How many terminal jobs to retain for late `status`/`fetch` calls.
    /// Beyond this the oldest are evicted (and report
    /// [`ServiceError::UnknownJob`]), bounding the service's memory over a
    /// long life.
    pub max_finished_jobs: usize,
    /// Start with dispatch paused: jobs are admitted and queued but no worker
    /// picks them up until [`MiningService::resume`]. Useful for tests and
    /// for pre-loading a queue before opening the floodgates.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            admission: AdmissionControl::default(),
            cache_capacity: 128,
            cache_ttl: None,
            max_finished_jobs: 1024,
            start_paused: false,
        }
    }
}

/// Everything a job carries through its lifecycle.
struct JobEntry {
    tenant: String,
    priority: Priority,
    status: JobStatus,
    /// The validated session; taken by the worker that runs the job.
    session: Option<Session>,
    /// The input graph; taken by the worker (and dropped afterwards so a
    /// finished job does not pin the graph in memory).
    graph: Option<Arc<Graph>>,
    /// Optional streaming sink; taken by the worker.
    sink: Option<Box<dyn ResultSink + Send>>,
    key: QueryKey,
    cancel: CancelToken,
    submitted_at: Instant,
    result: Option<Arc<MinedAnswer>>,
    cache_hit: bool,
    /// Engine failure message, when `status == Failed`.
    error: Option<String>,
}

/// Mutable service state behind the one service lock.
struct State {
    queue: JobQueue,
    jobs: HashMap<JobId, JobEntry>,
    cache: ResultCache,
    /// Unfinished (queued + running) jobs per tenant — an O(1) counter, not a
    /// scan, because it sits on every submit's hot path under the lock.
    tenant_unfinished: HashMap<String, usize>,
    /// Terminal jobs in completion order; once it outgrows
    /// `max_finished_jobs`, the oldest entries are dropped from `jobs`.
    finished: std::collections::VecDeque<JobId>,
    max_finished_jobs: usize,
    next_id: u64,
    running: usize,
    paused: bool,
    stop: bool,
}

impl State {
    fn tenant_unfinished(&self, tenant: &str) -> usize {
        self.tenant_unfinished.get(tenant).copied().unwrap_or(0)
    }

    fn tenant_job_started(&mut self, tenant: &str) {
        *self
            .tenant_unfinished
            .entry(tenant.to_string())
            .or_insert(0) += 1;
    }

    fn tenant_job_finished(&mut self, tenant: &str) {
        match self.tenant_unfinished.get_mut(tenant) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.tenant_unfinished.remove(tenant);
            }
            None => debug_assert!(
                false,
                "tenant {tenant:?} finished more jobs than it started"
            ),
        }
    }

    /// Records a job as terminal and evicts the oldest terminal entries
    /// beyond the retention bound, so a long-lived service does not
    /// accumulate every result ever produced. An evicted job becomes
    /// [`ServiceError::UnknownJob`] to late `status`/`fetch` calls.
    fn retire(&mut self, job: JobId) {
        self.finished.push_back(job);
        while self.finished.len() > self.max_finished_jobs {
            if let Some(old) = self.finished.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when work may be available (push, resume, freed slot, stop).
    work_cv: Condvar,
    /// Signalled when any job reaches a terminal state.
    done_cv: Condvar,
    metrics: ServiceMetrics,
    admission: AdmissionControl,
    /// Prepared graphs (graph + neighborhood index), keyed by graph
    /// fingerprint and index policy, so the index is built **once per graph**
    /// and reused by every subsequent job over it — including cache misses
    /// with different mining parameters. Separate lock from `state`: index
    /// construction is `O(|V| + |E|)` and must not stall submissions.
    prepared: Mutex<PreparedCache>,
}

/// A small bounded FIFO cache of [`PreparedGraph`]s.
#[derive(Default)]
struct PreparedCache {
    map: HashMap<(u64, IndexSpec), PreparedGraph>,
    order: std::collections::VecDeque<(u64, IndexSpec)>,
}

impl PreparedCache {
    /// At most this many distinct (graph, policy) indexes are retained; a
    /// service typically hosts a handful of hot graphs.
    const CAPACITY: usize = 16;

    /// A cached hit is only reused when it demonstrably wraps the caller's
    /// graph: the same `Arc` (the common resubmission case), or **full
    /// structural equality** otherwise. The structural compare is a few
    /// `Vec` memcmps — far cheaper than the index build it saves — and makes
    /// it impossible for a 64-bit fingerprint collision between different
    /// graphs to be served the wrong index/graph.
    fn get(&self, key: (u64, IndexSpec), graph: &Arc<Graph>) -> Option<PreparedGraph> {
        let hit = self.map.get(&key)?;
        let cached = hit.graph();
        let same_graph = Arc::ptr_eq(cached, graph) || cached.as_ref() == graph.as_ref();
        same_graph.then(|| hit.clone())
    }

    fn insert(&mut self, key: (u64, IndexSpec), prepared: PreparedGraph) {
        // Last write wins. For the benign two-workers-one-cold-graph race the
        // entries are equivalent; for a genuine fingerprint collision this
        // keeps the *latest* graph's index cached (the loser rebuilds on its
        // next job instead of rebuilding forever).
        if self.map.insert(key, prepared).is_some() {
            return; // key already tracked in `order`
        }
        self.order.push_back(key);
        while self.map.len() > Self::CAPACITY {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

impl Shared {
    /// Locks the state, recovering from poisoning: a panic in caller-supplied
    /// sink code must not brick the whole service.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock()
    }

    /// The prepared (indexed) form of `graph`, built on first use per
    /// (fingerprint, policy) and shared across jobs. The `O(|V| + |E|)`
    /// index build happens **outside** the cache lock, so a cold large graph
    /// never stalls workers whose graphs are already cached; two workers
    /// racing on the same cold graph both build and the first insert wins.
    fn prepared_for(&self, hash: u64, session: &Session, graph: &Arc<Graph>) -> PreparedGraph {
        let key = (hash, session.index_spec());
        let lock = || self.prepared.lock();
        if let Some(hit) = lock().get(key, graph) {
            return hit;
        }
        let prepared = session.prepare(graph.clone());
        lock().insert(key, prepared.clone());
        prepared
    }
}

/// An embeddable, thread-based, multi-tenant mining job service.
///
/// See the [crate docs](crate) for the architecture overview and an
/// end-to-end example.
pub struct MiningService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl MiningService {
    /// Starts the service with its worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: JobQueue::new(),
                jobs: HashMap::new(),
                cache: ResultCache::new(config.cache_capacity, config.cache_ttl),
                tenant_unfinished: HashMap::new(),
                finished: std::collections::VecDeque::new(),
                max_finished_jobs: config.max_finished_jobs.max(1),
                next_id: 1,
                running: 0,
                paused: config.start_paused,
                stop: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics: ServiceMetrics::default(),
            admission: config.admission,
            prepared: Mutex::new(PreparedCache::default()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                qcm_sync::thread::Builder::new()
                    .name(format!("qcm-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a service worker thread")
            })
            .collect();
        MiningService { shared, workers }
    }

    /// Submits a job.
    ///
    /// Validates the configuration, applies admission control and consults
    /// the result cache — all synchronously. On a cache hit the job is
    /// complete before `submit` returns (its [`JobResult::cache_hit`] is
    /// true); otherwise it is queued for the worker pool.
    ///
    /// # Errors
    /// [`ServiceError::InvalidJob`] for a configuration the `Session` builder
    /// rejects, [`ServiceError::Overloaded`] when admission control sheds the
    /// job, [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, ServiceError> {
        let mut builder = Session::builder()
            .prune(request.prune)
            .backend(request.backend);
        builder = match request.params {
            ParamsInput::Float { gamma, min_size } => builder.gamma(gamma).min_size(min_size),
            ParamsInput::Exact(params) => builder.params(params),
        };
        if let Some(deadline) = request.deadline {
            builder = builder.deadline(deadline);
        }
        let cancel = CancelToken::new();
        let session = builder.cancel_token(cancel.clone()).build()?;
        // Hash the graph before taking the lock: O(|V| + |E|) work must not
        // serialise the whole service.
        let graph_hash = request
            .fingerprint
            .unwrap_or_else(|| request.graph.content_hash());
        let key = QueryKey::new(graph_hash, *session.params(), request.prune);

        let mut sink = request.sink;
        let (id, hit_answer) = {
            let mut state = self.shared.lock();
            if state.stop {
                return Err(ServiceError::ShuttingDown);
            }
            // The cache is consulted *before* admission control: a hit
            // consumes no queue slot, no worker and no tenant quota, so hot
            // repeat traffic — exactly what the cache exists to keep serving
            // under load — must not be shed while the queue is full.
            let hit = state.cache.get(&key);
            if hit.is_none() {
                if let Err(rejection) = self.shared.admission.admit(
                    state.queue.len(),
                    &request.tenant,
                    state.tenant_unfinished(&request.tenant),
                ) {
                    // ordering: Relaxed — service stats counter; totals are read via
                    // snapshot(), which tolerates skew.
                    self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(rejection);
                }
            }
            let id = JobId::from_raw(state.next_id);
            state.next_id += 1;
            // ordering: Relaxed — service stats counter; totals are read via
            // snapshot(), which tolerates skew.
            self.shared
                .metrics
                .submitted
                .fetch_add(1, Ordering::Relaxed);

            if let Some(answer) = hit {
                // Served from cache: the job is born completed.
                // ordering: Relaxed — service stats counter; totals are read via
                // snapshot(), which tolerates skew.
                self.shared
                    .metrics
                    .cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                // ordering: Relaxed — service stats counter; totals are read via
                // snapshot(), which tolerates skew.
                self.shared
                    .metrics
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.record_latency(Duration::ZERO);
                state.jobs.insert(
                    id,
                    JobEntry {
                        tenant: request.tenant,
                        priority: request.priority,
                        status: JobStatus::Completed,
                        session: None,
                        graph: None,
                        sink: None,
                        key,
                        cancel,
                        submitted_at: Instant::now(),
                        result: Some(answer.clone()),
                        cache_hit: true,
                        error: None,
                    },
                );
                state.retire(id);
                (id, Some(answer))
            } else {
                // ordering: Relaxed — service stats counter; totals are read via
                // snapshot(), which tolerates skew.
                self.shared
                    .metrics
                    .cache_misses
                    .fetch_add(1, Ordering::Relaxed);
                state.jobs.insert(
                    id,
                    JobEntry {
                        tenant: request.tenant.clone(),
                        priority: request.priority,
                        status: JobStatus::Queued,
                        session: Some(session),
                        graph: Some(request.graph),
                        sink: sink.take(),
                        key,
                        cancel,
                        submitted_at: Instant::now(),
                        result: None,
                        cache_hit: false,
                        error: None,
                    },
                );
                state.queue.push(&request.tenant, request.priority, id);
                state.tenant_job_started(&request.tenant);
                self.shared.work_cv.notify_one();
                (id, None)
            }
        };
        if let Some(answer) = hit_answer {
            // Deliver the streaming view of a cache hit outside the lock:
            // sink code is caller-supplied and may block.
            if let Some(sink) = sink.as_mut() {
                for members in answer.maximal.iter() {
                    sink.on_maximal(members);
                }
            }
            self.shared.done_cv.notify_all();
        }
        Ok(id)
    }

    /// The current lifecycle state of a job.
    pub fn status(&self, job: JobId) -> Result<JobStatus, ServiceError> {
        let state = self.shared.lock();
        state
            .jobs
            .get(&job)
            .map(|e| e.status)
            .ok_or(ServiceError::UnknownJob(job))
    }

    /// The tenant a job is accounted against. Front ends use this to scope
    /// job reads/cancels to the authenticated tenant — job ids are
    /// sequential, so without the check any caller could enumerate them.
    pub fn tenant_of(&self, job: JobId) -> Result<String, ServiceError> {
        let state = self.shared.lock();
        state
            .jobs
            .get(&job)
            .map(|e| e.tenant.clone())
            .ok_or(ServiceError::UnknownJob(job))
    }

    /// Cancels a job and returns its status after the call.
    ///
    /// A queued job is removed before it ever starts (terminal immediately,
    /// no result). A running job has its [`CancelToken`] fired: the miner
    /// unwinds cooperatively and the job completes shortly after with a
    /// partial result labelled [`RunOutcome::Cancelled`] — poll
    /// [`MiningService::status`] or block in [`MiningService::fetch`] for the
    /// transition. Cancelling a terminal job is a no-op.
    pub fn cancel(&self, job: JobId) -> Result<JobStatus, ServiceError> {
        let mut state = self.shared.lock();
        let entry = state
            .jobs
            .get_mut(&job)
            .ok_or(ServiceError::UnknownJob(job))?;
        match entry.status {
            JobStatus::Queued => {
                entry.status = JobStatus::Cancelled;
                entry.session = None;
                entry.graph = None;
                entry.sink = None;
                let (tenant, priority) = (entry.tenant.clone(), entry.priority);
                let latency = entry.submitted_at.elapsed();
                let removed = state.queue.remove(&tenant, priority, job);
                debug_assert!(removed, "queued job must be in the queue");
                state.tenant_job_finished(&tenant);
                state.retire(job);
                // ordering: Relaxed — service stats counter; totals are read via
                // snapshot(), which tolerates skew.
                self.shared
                    .metrics
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.record_latency(latency);
                drop(state);
                self.shared.done_cv.notify_all();
                Ok(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                entry.cancel.cancel();
                Ok(JobStatus::Running)
            }
            terminal => Ok(terminal),
        }
    }

    /// Blocks *indefinitely* until the job reaches a terminal state and
    /// returns its result.
    ///
    /// Deprecated: an unbounded wait pins the calling thread for as long as
    /// the job takes, which a network front end cannot afford (a long-poll
    /// handler must return to its connection pool). Use
    /// [`MiningService::poll_fetch`] with an explicit deadline instead.
    ///
    /// # Errors
    /// [`ServiceError::UnknownJob`] for an id this service never issued,
    /// [`ServiceError::Cancelled`] for a job cancelled while still queued
    /// (it has no result), [`ServiceError::JobFailed`] when the run failed in
    /// the engine. A job cancelled *mid-run* or stopped by its deadline
    /// returns `Ok` with a partial result — inspect [`JobResult::outcome`].
    #[deprecated(
        since = "0.3.0",
        note = "unbounded blocking pins the caller; use poll_fetch(job, wait) with an explicit \
                deadline"
    )]
    pub fn fetch(&self, job: JobId) -> Result<JobResult, ServiceError> {
        let mut state = self.shared.lock();
        loop {
            match Self::terminal_result(&state, job) {
                Some(result) => return result,
                None => {
                    state = self.shared.done_cv.wait(state);
                }
            }
        }
    }

    /// Waits up to `wait` for the job to reach a terminal state.
    ///
    /// Returns `Ok(Some(result))` once terminal, `Ok(None)` when the
    /// deadline expires first (the job keeps running — poll again). This is
    /// the long-poll primitive of the HTTP surface: `GET
    /// /v1/jobs/{id}?wait_ms=` parks here instead of pinning a worker on the
    /// deprecated blocking [`fetch`](MiningService::fetch). `Duration::ZERO`
    /// is an instantaneous status probe.
    ///
    /// # Errors
    /// Same taxonomy as [`fetch`](MiningService::fetch): `UnknownJob`,
    /// `Cancelled` (cancelled while queued), `JobFailed`.
    pub fn poll_fetch(
        &self,
        job: JobId,
        wait: Duration,
    ) -> Result<Option<JobResult>, ServiceError> {
        let deadline = Instant::now() + wait;
        let mut state = self.shared.lock();
        loop {
            if let Some(result) = Self::terminal_result(&state, job) {
                return result.map(Some);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            // Re-armed each lap: done_cv is notified for *any* terminal job,
            // so a wakeup here says nothing about *this* job yet.
            let (guard, _timed_out) = self.shared.done_cv.wait_timeout(state, deadline - now);
            state = guard;
        }
    }

    /// Non-blocking fetch: `Ok(None)` while the job is still queued or
    /// running. Equivalent to [`poll_fetch`](MiningService::poll_fetch) with
    /// a zero wait, without touching the clock.
    pub fn try_fetch(&self, job: JobId) -> Result<Option<JobResult>, ServiceError> {
        let state = self.shared.lock();
        Self::terminal_result(&state, job).transpose()
    }

    fn terminal_result(state: &State, job: JobId) -> Option<Result<JobResult, ServiceError>> {
        let Some(entry) = state.jobs.get(&job) else {
            return Some(Err(ServiceError::UnknownJob(job)));
        };
        if !entry.status.is_terminal() {
            return None;
        }
        Some(match (&entry.result, entry.status) {
            (Some(answer), _) => Ok(JobResult {
                job,
                tenant: entry.tenant.clone(),
                cache_hit: entry.cache_hit,
                answer: answer.clone(),
            }),
            (None, JobStatus::Failed) => Err(ServiceError::JobFailed {
                job,
                message: entry.error.clone().unwrap_or_else(|| "unknown".into()),
            }),
            (None, _) => Err(ServiceError::Cancelled(job)),
        })
    }

    /// A point-in-time metrics snapshot (counters, gauges, latency
    /// percentiles).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut state = self.shared.lock();
        let queue_depth = state.queue.len();
        let in_flight = state.running;
        let cache_entries = state.cache.len();
        self.shared
            .metrics
            .snapshot(queue_depth, in_flight, cache_entries)
    }

    /// Pauses dispatch: running jobs continue, queued jobs wait.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
    }

    /// Resumes dispatch after [`MiningService::pause`] (or a paused start).
    pub fn resume(&self) {
        self.shared.lock().paused = false;
        self.shared.work_cv.notify_all();
    }

    /// Graceful shutdown: stops accepting submissions, drains the queue
    /// (every already-admitted job still runs) and joins the workers.
    pub fn shutdown(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, drain: bool) {
        {
            let mut state = self.shared.lock();
            state.stop = true;
            // A paused service must still be able to wind down.
            state.paused = false;
            if !drain {
                // Abort: drop queued jobs as cancelled, interrupt running ones.
                while let Some(id) = state.queue.pop() {
                    if let Some(entry) = state.jobs.get_mut(&id) {
                        entry.status = JobStatus::Cancelled;
                        entry.session = None;
                        entry.graph = None;
                        entry.sink = None;
                        let tenant = entry.tenant.clone();
                        state.tenant_job_finished(&tenant);
                        state.retire(id);
                        // ordering: Relaxed — service stats counter; totals are read via
                        // snapshot(), which tolerates skew.
                        self.shared
                            .metrics
                            .cancelled
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                for entry in state.jobs.values() {
                    if entry.status == JobStatus::Running {
                        entry.cancel.cancel();
                    }
                }
            }
        }
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MiningService {
    /// Dropping a live service aborts it: queued jobs are cancelled, running
    /// jobs are interrupted via their tokens, workers are joined. Use
    /// [`MiningService::shutdown`] for a draining stop.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop(false);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Wait for a dispatchable job (or for shutdown).
        let (id, session, graph, graph_hash, sink) = {
            let mut state = shared.lock();
            let job = loop {
                if state.stop && state.queue.is_empty() {
                    return;
                }
                let slot_free = state.running < shared.admission.max_in_flight;
                if !state.paused && slot_free {
                    if let Some(id) = state.queue.pop() {
                        break id;
                    }
                }
                state = shared.work_cv.wait(state);
            };
            state.running += 1;
            let entry = state
                .jobs
                .get_mut(&job)
                .expect("queued job must have an entry");
            debug_assert_eq!(entry.status, JobStatus::Queued);
            entry.status = JobStatus::Running;
            (
                job,
                entry.session.take().expect("queued job keeps its session"),
                entry.graph.take().expect("queued job keeps its graph"),
                entry.key.graph,
                entry.sink.take(),
            )
        };

        // Mine outside the lock. Parallel-backend jobs reuse the per-graph
        // neighborhood index (built once per fingerprint, shared across
        // cached jobs); serial jobs index their working subgraph internally
        // and would never consult the global index, so they skip the build.
        let prepared = match session.backend() {
            qcm::Backend::Serial => None,
            qcm::Backend::Parallel { .. } => {
                Some(shared.prepared_for(graph_hash, &session, &graph))
            }
        };
        let outcome = run_job(&session, &graph, prepared.as_ref(), sink);
        drop(graph);
        drop(prepared);

        // Publish the terminal state.
        {
            let mut state = shared.lock();
            state.running -= 1;
            // ordering: Relaxed — service stats counter; totals are read via
            // snapshot(), which tolerates skew.
            shared.metrics.jobs_mined.fetch_add(1, Ordering::Relaxed);
            let entry = state
                .jobs
                .get_mut(&id)
                .expect("running job must have an entry");
            let latency = entry.submitted_at.elapsed();
            let key = entry.key;
            let tenant = entry.tenant.clone();
            match outcome {
                Ok(answer) => {
                    let answer = Arc::new(answer);
                    entry.result = Some(answer.clone());
                    if answer.outcome == RunOutcome::Cancelled {
                        entry.status = JobStatus::Cancelled;
                        // ordering: Relaxed — service stats counter; totals are read via
                        // snapshot(), which tolerates skew.
                        shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                    } else {
                        entry.status = JobStatus::Completed;
                        // ordering: Relaxed — service stats counter; totals are read via
                        // snapshot(), which tolerates skew.
                        shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    // Only complete answers may serve other jobs.
                    if answer.outcome.is_complete() {
                        state.cache.insert(key, answer);
                    }
                }
                Err(message) => {
                    entry.status = JobStatus::Failed;
                    entry.error = Some(message);
                    // ordering: Relaxed — service stats counter; totals are read via
                    // snapshot(), which tolerates skew.
                    shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            state.tenant_job_finished(&tenant);
            state.retire(id);
            shared.metrics.record_latency(latency);
        }
        shared.done_cv.notify_all();
        // A slot freed up; every waiter must re-check (not notify_one: with
        // max_in_flight < workers a single token can land on a worker that
        // goes back to sleep, stranding the rest — and hanging shutdown's
        // join if the one skipped waiter was never woken again).
        shared.work_cv.notify_all();
    }
}

fn run_job(
    session: &Session,
    graph: &Arc<Graph>,
    prepared: Option<&PreparedGraph>,
    mut sink: Option<Box<dyn ResultSink + Send>>,
) -> Result<MinedAnswer, String> {
    // The run executes caller-supplied sink code; a panic there must fail
    // *this job* (JobStatus::Failed), not unwind the worker thread — an
    // unwinding worker would leak its `running` slot and leave the job stuck
    // in Running, blocking `fetch` forever.
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match (prepared, sink.as_mut()) {
            (Some(prepared), Some(sink)) => session.run_prepared_streaming(prepared, sink.as_mut()),
            (Some(prepared), None) => session.run_prepared(prepared),
            (None, Some(sink)) => session.run_streaming(graph, sink.as_mut()),
            (None, None) => session.run(graph),
        }
    }))
    .map_err(|panic| format!("job run panicked: {}", panic_message(panic.as_ref())))?
    .map_err(|e| e.to_string())?;
    Ok(MinedAnswer {
        maximal: report.maximal,
        raw_reported: report.raw_reported,
        outcome: report.outcome,
        mining_time: report.elapsed,
    })
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
