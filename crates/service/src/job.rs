//! Job identities, requests, states and results.

use qcm::core::{MiningParams, PruneConfig, QuasiCliqueSet, ResultSink, RunOutcome};
use qcm::Backend;
use qcm_graph::Graph;
use qcm_sync::Arc;
use std::fmt;
use std::time::Duration;

/// Opaque, service-unique job identifier, handed out by
/// [`crate::MiningService::submit`] and accepted by `status` / `cancel` /
/// `fetch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Reconstructs an id from its raw value (e.g. parsed from a protocol
    /// line). Ids are only meaningful to the service that issued them.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw numeric value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Scheduling priority of a job. Within one priority band tenants are served
/// round-robin; a higher band always preempts a lower one at dispatch time
/// (no preemption of already-running jobs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: dispatched only when no normal/high job is queued.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: dispatched before everything else.
    High,
}

impl Priority {
    /// Dispatch-order band index: high = 0, normal = 1, low = 2.
    pub(crate) fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parses the lowercase name used by the CLI protocol.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// Lifecycle state of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted and waiting for a worker.
    Queued,
    /// A worker is mining it right now.
    Running,
    /// Finished with a result (complete, or partial after a deadline /
    /// mid-run cancellation — see the result's [`RunOutcome`]).
    Completed,
    /// Cancelled. If the cancel arrived while the job was queued it never ran
    /// and has no result; if it arrived mid-run the job carries a partial
    /// result labelled [`RunOutcome::Cancelled`].
    Cancelled,
    /// The run failed inside the engine.
    Failed,
}

impl JobStatus {
    /// True once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        })
    }
}

/// γ/τ_size as supplied by the caller: a raw float validated at submit time,
/// or exact, pre-validated [`MiningParams`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum ParamsInput {
    Float { gamma: f64, min_size: usize },
    Exact(MiningParams),
}

/// One mining query, ready for [`crate::MiningService::submit`].
///
/// Built fluently; every setter is infallible and validation happens at
/// submit (returning [`crate::ServiceError::InvalidJob`]):
///
/// ```
/// use qcm_service::{JobRequest, Priority};
/// use qcm_sync::Arc;
/// use std::time::Duration;
///
/// let graph = Arc::new(qcm::gen::datasets::tiny_test_dataset(1).graph.clone());
/// let request = JobRequest::new(graph, 0.8, 6)
///     .tenant("analytics")
///     .priority(Priority::High)
///     .deadline(Duration::from_secs(30));
/// # let _ = request;
/// ```
pub struct JobRequest {
    pub(crate) graph: Arc<Graph>,
    pub(crate) params: ParamsInput,
    pub(crate) prune: PruneConfig,
    pub(crate) backend: Backend,
    pub(crate) tenant: String,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
    pub(crate) sink: Option<Box<dyn ResultSink + Send>>,
    pub(crate) fingerprint: Option<u64>,
}

impl JobRequest {
    /// A request to mine `graph` for maximal γ-quasi-cliques of at least
    /// `min_size` vertices, with default tenant (`"default"`), normal
    /// priority, all pruning rules and the serial backend (the worker pool
    /// provides the parallelism across jobs; see [`JobRequest::backend`] to
    /// parallelise within one job instead).
    pub fn new(graph: Arc<Graph>, gamma: f64, min_size: usize) -> Self {
        JobRequest {
            graph,
            params: ParamsInput::Float { gamma, min_size },
            prune: PruneConfig::all_enabled(),
            backend: Backend::Serial,
            tenant: "default".to_string(),
            priority: Priority::Normal,
            deadline: None,
            sink: None,
            fingerprint: None,
        }
    }

    /// Like [`JobRequest::new`] but with exact, pre-validated parameters (the
    /// rational γ is adopted without a float round trip).
    pub fn with_params(graph: Arc<Graph>, params: MiningParams) -> Self {
        let mut req = JobRequest::new(graph, 1.0, 2);
        req.params = ParamsInput::Exact(params);
        req
    }

    /// The tenant this job is accounted against (fair scheduling and quotas).
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Scheduling priority (default [`Priority::Normal`]).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Pruning-rule configuration (default: all enabled). Part of the cache
    /// key.
    pub fn prune(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Execution backend for this job (default [`Backend::Serial`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Per-job execution deadline, measured from the moment a worker starts
    /// the run (queue wait does not count). A job past its deadline completes
    /// with a *partial* result labelled [`RunOutcome::DeadlineExceeded`] — it
    /// is not an error.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Streams results into `sink` as the run progresses (candidates during
    /// the search, maximal sets as they are proven). On a cache hit the sink
    /// receives only the `on_maximal` calls, immediately at submit.
    pub fn stream(mut self, sink: Box<dyn ResultSink + Send>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Supplies a precomputed graph fingerprint
    /// ([`Graph::content_hash`]), skipping the `O(|V| + |E|)` hash at
    /// submit. The caller is responsible for it actually matching the graph —
    /// a wrong value silently poisons the result cache.
    pub fn fingerprint(mut self, fingerprint: u64) -> Self {
        self.fingerprint = Some(fingerprint);
        self
    }
}

/// The shared, immutable answer of one mined query.
///
/// Stored once in the result cache and handed out as an `Arc` to every job
/// that hits it, so serving a hot query never clones the result sets.
#[derive(Clone, Debug)]
pub struct MinedAnswer {
    /// The result sets (exactly the maximal quasi-cliques when
    /// [`MinedAnswer::outcome`] is [`RunOutcome::Complete`]).
    pub maximal: QuasiCliqueSet,
    /// Raw candidate reports produced by the run.
    pub raw_reported: u64,
    /// How the mining run ended. Only [`RunOutcome::Complete`] answers are
    /// ever cached; partial answers are returned to their own job only.
    pub outcome: RunOutcome,
    /// Wall-clock time of the original mining run (a cache hit reports the
    /// time the *original* mine took, not the ~zero serving time).
    pub mining_time: Duration,
}

/// The result of one job, as returned by [`crate::MiningService::fetch`].
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job this result belongs to.
    pub job: JobId,
    /// The tenant that submitted it.
    pub tenant: String,
    /// True if the answer was served from the result cache without mining.
    pub cache_hit: bool,
    /// The (possibly shared) answer.
    pub answer: Arc<MinedAnswer>,
}

impl JobResult {
    /// How the mining run ended.
    pub fn outcome(&self) -> RunOutcome {
        self.answer.outcome
    }

    /// True if the run explored the whole search space.
    pub fn is_complete(&self) -> bool {
        self.answer.outcome.is_complete()
    }

    /// The result sets.
    pub fn maximal(&self) -> &QuasiCliqueSet {
        &self.answer.maximal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_roundtrips_raw_value() {
        let id = JobId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn priority_bands_order_high_first() {
        assert!(Priority::High.band() < Priority::Normal.band());
        assert!(Priority::Normal.band() < Priority::Low.band());
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        assert_eq!(Priority::parse("normal"), Some(Priority::Normal));
        assert_eq!(Priority::parse("low"), Some(Priority::Low));
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::High.to_string(), "high");
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn terminal_states() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Completed.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert_eq!(JobStatus::Running.to_string(), "running");
    }
}
