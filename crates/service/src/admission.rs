//! Admission control: bounded queueing and per-tenant quotas.
//!
//! A service "serving heavy traffic" must shed load instead of queueing
//! unboundedly — an unbounded queue converts overload into unbounded memory
//! growth and unbounded latency for everyone. Admission is checked
//! synchronously at submit and rejects with the typed
//! [`ServiceError::Overloaded`] / [`ServiceError::QuotaExceeded`], so
//! callers learn *immediately* that they should back off — the HTTP surface
//! turns both into `429` + `Retry-After`.

use crate::error::ServiceError;

/// The admission limits of a [`crate::MiningService`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionControl {
    /// Maximum number of jobs waiting in the queue. Submits beyond this are
    /// rejected.
    pub max_queued: usize,
    /// Maximum number of jobs mined concurrently. The worker pool never runs
    /// more than this many jobs at once, even when more workers are idle
    /// (lets an operator bound CPU use below the pool size at runtime).
    pub max_in_flight: usize,
    /// Maximum number of unfinished (queued + running) jobs any single tenant
    /// may have. Submits beyond it are rejected for that tenant only.
    pub per_tenant_quota: usize,
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            max_queued: 64,
            max_in_flight: usize::MAX,
            per_tenant_quota: 16,
        }
    }
}

impl AdmissionControl {
    /// Decides whether a new job of `tenant` may be admitted given the
    /// current queue depth and the tenant's unfinished-job count.
    pub fn admit(
        &self,
        queued: usize,
        tenant: &str,
        tenant_unfinished: usize,
    ) -> Result<(), ServiceError> {
        if queued >= self.max_queued {
            return Err(ServiceError::Overloaded {
                queued,
                limit: self.max_queued,
            });
        }
        if tenant_unfinished >= self.per_tenant_quota {
            return Err(ServiceError::QuotaExceeded {
                tenant: tenant.to_string(),
                unfinished: tenant_unfinished,
                quota: self.per_tenant_quota,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control() -> AdmissionControl {
        AdmissionControl {
            max_queued: 2,
            max_in_flight: 1,
            per_tenant_quota: 3,
        }
    }

    #[test]
    fn admits_under_all_limits() {
        assert!(control().admit(0, "a", 0).is_ok());
        assert!(control().admit(1, "a", 2).is_ok());
    }

    #[test]
    fn rejects_when_queue_is_full() {
        let err = control().admit(2, "a", 0).unwrap_err();
        let ServiceError::Overloaded { queued, limit } = err else {
            panic!("expected Overloaded");
        };
        assert_eq!((queued, limit), (2, 2));
    }

    #[test]
    fn rejects_tenant_over_quota_without_blocking_others() {
        let err = control().admit(1, "greedy", 3).unwrap_err();
        let ServiceError::QuotaExceeded {
            tenant,
            unfinished,
            quota,
        } = err
        else {
            panic!("expected QuotaExceeded");
        };
        assert_eq!((tenant.as_str(), unfinished, quota), ("greedy", 3, 3));
        // Another tenant under quota is still admitted.
        assert!(control().admit(1, "modest", 0).is_ok());
    }
}
