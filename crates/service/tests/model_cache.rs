//! Model-checked schedules of the result cache under concurrent fetch.
//!
//! The service serialises [`ResultCache`] behind a `qcm_sync::Mutex` and
//! uses the check-miss-mine-insert pattern (the mine step runs outside
//! the lock). These scenarios explore ≥1 000 schedules each of that
//! pattern; failures replay with `QCM_MC_SEED=<seed>`.

#![cfg(feature = "model-check")]

use qcm_core::{MiningParams, PruneConfig, QuasiCliqueSet, QueryKey, RunOutcome};
use qcm_service::job::MinedAnswer;
use qcm_service::ResultCache;
use qcm_sync::atomic::{AtomicU32, Ordering};
use qcm_sync::model::{explore, explore_seeds, extra_seeds, ModelConfig};
use qcm_sync::{thread, Arc, Mutex};
use std::time::Duration;

const SCHEDULES: usize = 1_000;

fn run(name: &str, f: impl Fn() + Sync) {
    explore(name, SCHEDULES, ModelConfig::default(), &f);
    let extra = extra_seeds();
    if !extra.is_empty() {
        explore_seeds(name, &extra, ModelConfig::default(), &f);
    }
}

fn key(graph: u64) -> QueryKey {
    QueryKey::new(graph, MiningParams::new(0.9, 5), PruneConfig::all_enabled())
}

fn answer() -> Arc<MinedAnswer> {
    Arc::new(MinedAnswer {
        maximal: QuasiCliqueSet::new(),
        raw_reported: 0,
        outcome: RunOutcome::Complete,
        mining_time: Duration::from_millis(1),
    })
}

/// Two tenants race the check-miss-mine-insert pattern on the same
/// query. Double-mining is allowed (both can miss), but the cache must
/// converge: the answer ends up cached exactly once and every later
/// fetch hits.
#[test]
fn concurrent_fetch_or_mine_converges() {
    run("concurrent_fetch_or_mine_converges", || {
        let cache = Arc::new(Mutex::new(ResultCache::new(4, None)));
        let mined = Arc::new(AtomicU32::new(0));

        let tenants: Vec<_> = (0..2)
            .map(|_| {
                let cache = cache.clone();
                let mined = mined.clone();
                thread::spawn(move || {
                    let hit = cache.lock().get(&key(1)).is_some();
                    if !hit {
                        // "Mining" happens outside the cache lock.
                        // ordering: SeqCst — checked facade runs every atomic
                        // at SeqCst; only the count matters here.
                        mined.fetch_add(1, Ordering::SeqCst);
                        cache.lock().insert(key(1), answer());
                    }
                })
            })
            .collect();
        for t in tenants {
            t.join().unwrap();
        }

        let mined = mined.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&mined),
            "someone must mine on a cold cache; got {mined}"
        );
        let mut cache = cache.lock();
        let served = cache.get(&key(1)).expect("answer cached after the race");
        assert!(served.outcome.is_complete());
        assert_eq!(cache.len(), 1, "duplicate entries for one key");
    });
}

/// Concurrent inserts of distinct keys into a capacity-2 cache: the LRU
/// bound holds in every interleaving and a hit never serves anything
/// but a complete answer.
#[test]
fn lru_bound_holds_under_concurrent_inserts() {
    run("lru_bound_holds_under_concurrent_inserts", || {
        let cache = Arc::new(Mutex::new(ResultCache::new(2, None)));

        let writers: Vec<_> = [1u64, 2, 3]
            .into_iter()
            .map(|graph| {
                let cache = cache.clone();
                thread::spawn(move || {
                    cache.lock().insert(key(graph), answer());
                    // Re-fetch bumps recency; a hit must be complete.
                    if let Some(a) = cache.lock().get(&key(graph)) {
                        assert!(a.outcome.is_complete());
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }

        let mut cache = cache.lock();
        assert_eq!(cache.len(), 2, "LRU capacity bound violated");
        let survivors = [1u64, 2, 3]
            .into_iter()
            .filter(|g| cache.get(&key(*g)).is_some())
            .count();
        assert_eq!(survivors, 2, "evicted entry still resident, or extra loss");
    });
}

/// TTL correctness under racing insert and fetch: an expired entry
/// (zero TTL) is never served, no matter how the schedule interleaves
/// the writer and the reader.
#[test]
fn expired_entries_are_never_served() {
    run("expired_entries_are_never_served", || {
        let cache = Arc::new(Mutex::new(ResultCache::new(4, Some(Duration::ZERO))));

        let writer = thread::spawn({
            let cache = cache.clone();
            move || cache.lock().insert(key(1), answer())
        });
        let reader = thread::spawn({
            let cache = cache.clone();
            move || {
                assert!(
                    cache.lock().get(&key(1)).is_none(),
                    "expired entry served to a tenant"
                );
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
        assert!(
            cache.lock().is_empty(),
            "expired entries must purge on read"
        );
    });
}
