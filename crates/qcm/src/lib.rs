//! # qcm — maximal quasi-clique mining (facade crate)
//!
//! This crate re-exports the public API of the whole workspace so downstream
//! users can depend on a single crate:
//!
//! * [`graph`] — graph substrate ([`graph::Graph`], k-core, I/O);
//! * [`gen`] — synthetic dataset generators (including the stand-ins for the
//!   paper's eight evaluation graphs);
//! * [`core`] — the serial mining algorithm, pruning rules and baselines;
//! * [`engine`] — the reforged G-thinker-style task engine;
//! * [`parallel`] — the parallel miner (the paper's full system).
//!
//! ## Quick start
//!
//! ```
//! use qcm::prelude::*;
//! use std::sync::Arc;
//!
//! // Generate a small graph with two planted dense communities.
//! let dataset = qcm::gen::datasets::tiny_test_dataset(7);
//! let graph = Arc::new(dataset.graph.clone());
//! let params = MiningParams::new(dataset.spec.gamma, dataset.spec.min_size);
//!
//! // Serial reference run.
//! let serial = mine_serial(&graph, params);
//! // Parallel run on 4 threads.
//! let parallel = mine_parallel(&graph, params, 4);
//! assert_eq!(serial.maximal, parallel.maximal);
//! ```
//!
//! The runnable examples in `examples/` (quickstart, community detection,
//! protein complexes, parallel cluster, hyperparameter sweep) demonstrate the
//! API on realistic scenarios; the `qcm-bench` crate regenerates every table
//! and figure of the paper.

pub use qcm_core as core;
pub use qcm_engine as engine;
pub use qcm_gen as gen;
pub use qcm_graph as graph;
pub use qcm_parallel as parallel;

/// The most commonly used types and functions in one import.
pub mod prelude {
    pub use qcm_core::{
        mine_serial, quick_mine, Gamma, MiningOutput, MiningParams, MiningStats, PruneConfig,
        QuasiCliqueSet, SerialMiner,
    };
    pub use qcm_engine::{EngineConfig, EngineMetrics};
    pub use qcm_gen::{DatasetSpec, PlantedGraphSpec, SyntheticDataset};
    pub use qcm_graph::{Graph, GraphBuilder, GraphStats, VertexId};
    pub use qcm_parallel::{
        mine_parallel, DecompositionStrategy, ParallelMiner, ParallelMiningOutput,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_reexports_are_usable_together() {
        let dataset = crate::gen::datasets::tiny_test_dataset(3);
        let graph = Arc::new(dataset.graph.clone());
        let params = MiningParams::new(dataset.spec.gamma, dataset.spec.min_size);
        let serial = mine_serial(&graph, params);
        let parallel = mine_parallel(&graph, params, 2);
        assert_eq!(serial.maximal, parallel.maximal);
        assert!(
            !serial.maximal.is_empty(),
            "planted communities must be found"
        );
    }
}
