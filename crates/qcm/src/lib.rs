//! # qcm — maximal quasi-clique mining (facade crate)
//!
//! This crate is the front door of the workspace that reproduces *"Scalable
//! Mining of Maximal Quasi-Cliques: An Algorithm-System Codesign Approach"*
//! (PVLDB 2020). The one type to know is [`Session`]: a fluent, validated
//! mining configuration with typed errors ([`QcmError`]), deadlines and
//! cancellation ([`CancelToken`]), streaming delivery ([`ResultSink`]) and a
//! unified result ([`MiningReport`]) over both execution backends.
//!
//! ## Quick start
//!
//! ```
//! use qcm::prelude::*;
//! use qcm_sync::Arc;
//!
//! // Generate a small graph with two planted dense communities.
//! let dataset = qcm::gen::datasets::tiny_test_dataset(7);
//! let graph = Arc::new(dataset.graph.clone());
//!
//! // One session, two backends, identical results.
//! let serial = Session::builder()
//!     .gamma(dataset.spec.gamma)
//!     .min_size(dataset.spec.min_size)
//!     .build()?
//!     .run(&graph)?;
//! let parallel = Session::builder()
//!     .gamma(dataset.spec.gamma)
//!     .min_size(dataset.spec.min_size)
//!     .backend(Backend::parallel(4, 1))
//!     .build()?
//!     .run(&graph)?;
//! assert_eq!(serial.maximal, parallel.maximal);
//! assert!(serial.is_complete());
//! # Ok::<(), qcm::QcmError>(())
//! ```
//!
//! ## Deadlines, cancellation, streaming
//!
//! ```
//! use qcm::prelude::*;
//! use qcm_sync::Arc;
//! use std::time::Duration;
//!
//! let dataset = qcm::gen::datasets::tiny_test_dataset(7);
//! let graph = Arc::new(dataset.graph.clone());
//!
//! // A deadline-bound run returns a *partial*, well-labelled report.
//! let session = Session::builder()
//!     .gamma(dataset.spec.gamma)
//!     .min_size(dataset.spec.min_size)
//!     .deadline(Duration::ZERO)
//!     .build()?;
//! let report = session.run(&graph)?;
//! assert_eq!(report.outcome, RunOutcome::DeadlineExceeded);
//!
//! // Streaming: candidates and proven-maximal results are pushed into a
//! // caller-supplied ResultSink as the run progresses.
//! let session = Session::builder()
//!     .gamma(dataset.spec.gamma)
//!     .min_size(dataset.spec.min_size)
//!     .build()?;
//! let mut sink = CollectingSink::default();
//! let report = session.run_streaming(&graph, &mut sink)?;
//! assert_eq!(sink.maximal.len(), report.maximal.len());
//! # Ok::<(), qcm::QcmError>(())
//! ```
//!
//! `session.cancel_token()` hands out a clone-able [`CancelToken`] that stops
//! an in-flight run from another thread.
//!
//! ## Layers
//!
//! The underlying crates remain available for advanced use:
//!
//! * [`graph`] — graph substrate ([`graph::Graph`], k-core, I/O, stable
//!   content hashing);
//! * [`gen`] — synthetic dataset generators (including the stand-ins for the
//!   paper's eight evaluation graphs);
//! * [`core`] — the serial mining algorithm, pruning rules and baselines;
//! * [`engine`] — the reforged G-thinker-style task engine;
//! * [`parallel`] — the parallel miner (the paper's full system).
//!
//! Above this facade sits `qcm-service`: an embeddable multi-tenant mining
//! *job service* that executes submissions as [`Session`] runs on a worker
//! pool, memoises completed answers in a result cache keyed by [`QueryKey`]
//! (graph content hash + parameters + pruning config) and sheds load through
//! admission control. The CLI exposes it as `qcm serve`.
//!
//! The runnable examples in `examples/` (quickstart, community detection,
//! protein complexes, parallel cluster, hyperparameter sweep) demonstrate the
//! API on realistic scenarios; the `qcm-bench` crate regenerates every table
//! and figure of the paper.
//!
//! ## Migrating from the 0.1 free functions
//!
//! The pre-`Session` entry points `mine_serial` / `mine_parallel` still
//! compile but are `#[deprecated]` shims: they build a single-use [`Session`]
//! internally and will be removed once downstream callers migrate. The
//! mapping is mechanical:
//!
//! ```text
//! mine_serial(&g, params)       →  Session::builder().params(params).build()?.run(&g)?
//! mine_parallel(&g, params, t)  →  Session::builder().params(params)
//!                                      .backend(Backend::parallel(t, 1))
//!                                      .build()?.run(&g)?
//! ```
//!
//! ## Distribution & fault testing
//!
//! `Backend::Parallel` carries a [`TransportKind`]: the default in-process
//! transport, a strict serialising variant, or
//! [`TransportKind::Sim`] — a deterministic discrete-event fault simulator
//! that replays a seeded 64-machine crash/straggler/partition scenario
//! byte-identically. See the README's "Distribution & fault testing" section
//! and `tests/fault_scenarios.rs`.

pub mod session;

pub use qcm_core as core;
pub use qcm_engine as engine;
pub use qcm_gen as gen;
pub use qcm_graph as graph;
pub use qcm_parallel as parallel;

pub use qcm_core::{
    CancelReason, CancelToken, CollectingSink, QcmError, QueryKey, ResultSink, RunOutcome,
};
pub use qcm_engine::{Fault, FaultEvent, SimConfig, TransportKind};
pub use qcm_graph::{IndexSpec, NeighborhoodIndex, Neighborhoods, VertexBitSet};
pub use qcm_obs::{SpanKind, Trace, TraceConfig};
pub use session::{Backend, BackendStats, MiningReport, PreparedGraph, Session, SessionBuilder};

use qcm_core::{MiningOutput, MiningParams};
use qcm_graph::Graph;
use qcm_parallel::ParallelMiningOutput;
use qcm_sync::Arc;

/// The most commonly used types and functions in one import.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::{mine_parallel, mine_serial};
    pub use crate::{
        Backend, BackendStats, CancelReason, CancelToken, CollectingSink, MiningReport, QcmError,
        ResultSink, RunOutcome, Session, SessionBuilder,
    };
    pub use crate::{Fault, FaultEvent, IndexSpec, PreparedGraph, SimConfig, TransportKind};
    pub use crate::{SpanKind, Trace, TraceConfig};
    pub use qcm_core::api::{
        ApiError, ErrorCode, GraphInfo, JobView, SubmitRequest, SubmitResponse, ERROR_CODE_TABLE,
    };
    pub use qcm_core::{
        quick_mine, Gamma, MiningOutput, MiningParams, MiningStats, PruneConfig, QuasiCliqueSet,
        QueryKey, SerialMiner,
    };
    pub use qcm_engine::{EngineConfig, EngineMetrics};
    pub use qcm_gen::{DatasetSpec, PlantedGraphSpec, SyntheticDataset};
    pub use qcm_graph::{Graph, GraphBuilder, GraphStats, VertexId};
    pub use qcm_parallel::{DecompositionStrategy, ParallelMiner, ParallelMiningOutput};
}

/// Single-threaded mining with the default configuration (a deprecated shim
/// over [`Session`] with [`Backend::Serial`]).
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().params(params).build()?.run(&graph)? instead"
)]
pub fn mine_serial(graph: &Graph, params: MiningParams) -> MiningOutput {
    let session = Session::builder()
        .params(params)
        .backend(Backend::Serial)
        .build()
        .expect("MiningParams invariants satisfy Session validation");
    let report = session.run_serial(graph, session.cancel_token(), None);
    let (stats, kcore_vertices) = match report.stats {
        BackendStats::Serial {
            stats,
            kcore_vertices,
        } => (stats, kcore_vertices),
        BackendStats::Parallel { .. } => unreachable!("serial run produced parallel stats"),
    };
    MiningOutput {
        maximal: report.maximal,
        raw_reported: report.raw_reported,
        stats,
        elapsed: report.elapsed,
        kcore_vertices,
        outcome: report.outcome,
    }
}

/// Parallel mining on one simulated machine (a deprecated shim over
/// [`Session`] with [`Backend::Parallel`]).
#[deprecated(
    since = "0.2.0",
    note = "use Session::builder().params(params).backend(Backend::parallel(threads, \
            1)).build()?.run(&graph)? instead"
)]
pub fn mine_parallel(
    graph: &Arc<Graph>,
    params: MiningParams,
    threads: usize,
) -> ParallelMiningOutput {
    let session = Session::builder()
        .params(params)
        .backend(Backend::parallel(threads.max(1), 1))
        .build()
        .expect("MiningParams invariants satisfy Session validation");
    let report = session.run_parallel(
        graph,
        None,
        threads.max(1),
        1,
        &TransportKind::InProc,
        session.cancel_token(),
        None,
    );
    let metrics = match report.stats {
        BackendStats::Parallel { metrics } => *metrics,
        BackendStats::Serial { .. } => unreachable!("parallel run produced serial stats"),
    };
    ParallelMiningOutput {
        maximal: report.maximal,
        raw_reported: report.raw_reported,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use qcm_sync::Arc;

    #[test]
    fn facade_reexports_are_usable_together() {
        let dataset = crate::gen::datasets::tiny_test_dataset(3);
        let graph = Arc::new(dataset.graph.clone());
        let base = Session::builder()
            .gamma(dataset.spec.gamma)
            .min_size(dataset.spec.min_size);
        let serial = base.clone().build().unwrap().run(&graph).unwrap();
        let parallel = base
            .backend(Backend::parallel(2, 1))
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(serial.maximal, parallel.maximal);
        assert!(
            !serial.maximal.is_empty(),
            "planted communities must be found"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_session() {
        let dataset = crate::gen::datasets::tiny_test_dataset(3);
        let graph = Arc::new(dataset.graph.clone());
        let params = MiningParams::new(dataset.spec.gamma, dataset.spec.min_size);
        let serial = crate::mine_serial(&graph, params);
        let parallel = crate::mine_parallel(&graph, params, 2);
        assert_eq!(serial.maximal, parallel.maximal);
        assert!(serial.outcome.is_complete());
        assert!(parallel.outcome().is_complete());
        let session = Session::builder()
            .params(params)
            .build()
            .unwrap()
            .run(&graph)
            .unwrap();
        assert_eq!(session.maximal, serial.maximal);
    }
}
