//! The unified front-door API: [`Session`].
//!
//! A [`Session`] is one validated mining configuration that can be run many
//! times, over any backend, with deadlines, cancellation and streaming
//! delivery:
//!
//! ```
//! use qcm::{Backend, Session};
//! use qcm_sync::Arc;
//!
//! let dataset = qcm::gen::datasets::tiny_test_dataset(7);
//! let graph = Arc::new(dataset.graph.clone());
//!
//! let session = Session::builder()
//!     .gamma(dataset.spec.gamma)
//!     .min_size(dataset.spec.min_size)
//!     .backend(Backend::parallel(4, 1))
//!     .build()
//!     .expect("valid configuration");
//! let report = session.run(&graph).unwrap();
//! assert!(report.outcome.is_complete());
//! assert!(!report.maximal.is_empty());
//! ```
//!
//! Configuration errors surface at [`SessionBuilder::build`] as
//! [`QcmError::InvalidConfig`] instead of panicking deep inside the miners; a
//! run that hits its [`SessionBuilder::deadline`] or whose
//! [`Session::cancel_token`] fires returns a *partial* [`MiningReport`]
//! labelled [`RunOutcome::DeadlineExceeded`] / [`RunOutcome::Cancelled`]
//! rather than blocking until completion.

use qcm_core::{
    CancelToken, CandidateForwarder, MiningParams, MiningStats, PruneConfig, QcmError,
    QuasiCliqueSet, ResultSink, RunOutcome, SerialMiner,
};
use qcm_engine::{EngineConfig, EngineMetrics, SimConfig, TransportFactory, TransportKind};
use qcm_graph::{Graph, IndexSpec, NeighborhoodIndex};
use qcm_obs::{SpanKind, Trace, TraceConfig};
use qcm_parallel::{DecompositionStrategy, ParallelMiner, SimMiner};
use qcm_sync::Arc;
use std::time::Duration;

/// Which execution engine a [`Session`] drives.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Backend {
    /// The single-threaded reference miner (Algorithm 2).
    #[default]
    Serial,
    /// The task-based miner on the reforged engine (the paper's full system),
    /// on `machines × threads` mining threads.
    Parallel {
        /// Mining threads per simulated machine.
        threads: usize,
        /// Simulated machines (each owns a vertex-table partition, a global
        /// big-task queue and a remote-vertex cache).
        machines: usize,
        /// How messages move between machines: the zero-copy in-process
        /// transport (default), its strict serialising variant, or the
        /// deterministic fault simulator ([`TransportKind::Sim`], which runs
        /// the job in virtual time under a seeded fault scenario).
        transport: TransportKind,
    },
}

impl Backend {
    /// The parallel backend with the default in-process transport — the
    /// common case, and the shape the old two-field `Backend::Parallel`
    /// literal built.
    pub fn parallel(threads: usize, machines: usize) -> Self {
        Backend::Parallel {
            threads,
            machines,
            transport: TransportKind::default(),
        }
    }
}

/// Per-backend statistics of a [`MiningReport`].
#[derive(Clone, Debug)]
pub enum BackendStats {
    /// Statistics of a [`Backend::Serial`] run.
    Serial {
        /// Aggregated pruning/search counters.
        stats: MiningStats,
        /// Vertices surviving the k-core preprocessing.
        kcore_vertices: usize,
    },
    /// Metrics of a [`Backend::Parallel`] run.
    Parallel {
        /// Engine metrics (tasks, spilling, stealing, per-task log, …).
        metrics: Box<EngineMetrics>,
    },
}

/// The unified result of a [`Session`] run.
#[derive(Clone, Debug)]
pub struct MiningReport {
    /// The result sets. Exactly the maximal quasi-cliques when
    /// [`MiningReport::outcome`] is [`RunOutcome::Complete`]. For an
    /// interrupted run these are the valid quasi-cliques found before the
    /// interruption — maximal within the explored portion of the search
    /// space, but some may be non-maximal in the full graph (a completed run
    /// could replace them with supersets).
    pub maximal: QuasiCliqueSet,
    /// Raw (pre-post-processing) reports produced by the run.
    pub raw_reported: u64,
    /// Wall-clock time of the mining phase.
    pub elapsed: Duration,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Backend-specific statistics.
    pub stats: BackendStats,
    /// The span trace of this run, when the session was built with
    /// [`SessionBuilder::tracing`] (and the process-wide recorder was
    /// free). Export with [`qcm_obs::chrome::render`].
    pub trace: Option<Trace>,
}

impl MiningReport {
    /// True if the run explored the whole search space.
    pub fn is_complete(&self) -> bool {
        self.outcome.is_complete()
    }

    /// Engine metrics, when the report came from a parallel run.
    pub fn engine_metrics(&self) -> Option<&EngineMetrics> {
        match &self.stats {
            BackendStats::Parallel { metrics } => Some(metrics),
            BackendStats::Serial { .. } => None,
        }
    }

    /// Serial search statistics, when the report came from a serial run.
    pub fn serial_stats(&self) -> Option<&MiningStats> {
        match &self.stats {
            BackendStats::Serial { stats, .. } => Some(stats),
            BackendStats::Parallel { .. } => None,
        }
    }

    /// Converts an interrupted report into the matching [`QcmError`]
    /// (discarding the partial results); a complete report passes through.
    /// For callers that treat a deadline hit as a failure rather than a
    /// partial answer.
    pub fn into_result(self) -> Result<MiningReport, QcmError> {
        match QcmError::from_outcome(self.outcome) {
            None => Ok(self),
            Some(err) => Err(err),
        }
    }
}

/// γ as supplied to the builder: a raw float (validated at build time) or an
/// already-exact rational adopted from a [`MiningParams`] — kept apart so
/// `.params(p).min_size(n)` never round-trips the rational through `f64`.
#[derive(Clone, Copy, Debug)]
enum GammaSpec {
    Float(f64),
    Exact(qcm_core::Gamma),
}

/// Fluent, validating builder for [`Session`]. Obtained from
/// [`Session::builder`]; every setter is infallible, all validation happens in
/// [`SessionBuilder::build`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    gamma: GammaSpec,
    min_size: usize,
    backend: Backend,
    prune: PruneConfig,
    strategy: DecompositionStrategy,
    deadline: Option<Duration>,
    tau_split: usize,
    tau_time: Duration,
    balance_period: Option<Duration>,
    cancel: Option<CancelToken>,
    index: IndexSpec,
    transport: Option<TransportKind>,
    tracing: Option<TraceConfig>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        let engine_defaults = EngineConfig::default();
        SessionBuilder {
            gamma: GammaSpec::Float(0.9),
            min_size: 10,
            backend: Backend::Serial,
            prune: PruneConfig::all_enabled(),
            strategy: DecompositionStrategy::TimeDelayed,
            deadline: None,
            tau_split: engine_defaults.tau_split,
            tau_time: engine_defaults.tau_time,
            balance_period: None,
            cancel: None,
            index: IndexSpec::Auto,
            transport: None,
            tracing: None,
        }
    }
}

impl SessionBuilder {
    /// Minimum degree ratio γ ∈ (0, 1] (default 0.9).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = GammaSpec::Float(gamma);
        self
    }

    /// Minimum result size τ_size ≥ 2 (default 10).
    pub fn min_size(mut self, min_size: usize) -> Self {
        self.min_size = min_size;
        self
    }

    /// Sets γ and τ_size from an existing [`MiningParams`] (exact — the
    /// rational γ is adopted without a float round-trip, even if τ_size is
    /// later overridden with [`SessionBuilder::min_size`]). A later
    /// [`SessionBuilder::gamma`] call replaces the rational γ.
    pub fn params(mut self, params: MiningParams) -> Self {
        self.gamma = GammaSpec::Exact(params.gamma);
        self.min_size = params.min_size;
        self
    }

    /// Execution backend (default [`Backend::Serial`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Pruning-rule configuration (default: all rules enabled).
    pub fn prune(mut self, prune: PruneConfig) -> Self {
        self.prune = prune;
        self
    }

    /// Task-decomposition strategy for the parallel backend (default
    /// time-delayed, per the paper).
    pub fn strategy(mut self, strategy: DecompositionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Soft wall-clock budget: when it passes, the run stops cooperatively
    /// and the report is labelled [`RunOutcome::DeadlineExceeded`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Big-task threshold τ_split (parallel backend).
    pub fn tau_split(mut self, tau_split: usize) -> Self {
        self.tau_split = tau_split;
        self
    }

    /// Decomposition timeout τ_time (parallel backend).
    pub fn tau_time(mut self, tau_time: Duration) -> Self {
        self.tau_time = tau_time;
        self
    }

    /// Period of the inter-machine load balancer (parallel backend with
    /// more than one machine).
    pub fn balance_period(mut self, period: Duration) -> Self {
        self.balance_period = Some(period);
        self
    }

    /// Uses an external cancellation token instead of the session-owned one,
    /// e.g. one token shared by a batch of sessions.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Hybrid bitset neighborhood-index policy (default [`IndexSpec::Auto`]).
    ///
    /// The index accelerates the mining hot path (`O(1)` edge queries on
    /// high-degree vertices, word-parallel degree counting) without changing
    /// results; [`IndexSpec::Disabled`] reproduces the pure binary-search
    /// behaviour. See [`Session::prepare`] to build the global index once and
    /// reuse it across runs.
    pub fn neighborhood_index(mut self, index: IndexSpec) -> Self {
        self.index = index;
        self
    }

    /// Selects the inter-machine transport of the parallel backend,
    /// overriding whatever the [`SessionBuilder::backend`] call carried.
    /// Requires [`Backend::Parallel`]; [`SessionBuilder::build`] rejects the
    /// combination with [`Backend::Serial`].
    ///
    /// [`TransportKind::Sim`] runs the job on the deterministic fault
    /// simulator: virtual time, seeded latency/drops, scripted crashes. Sim
    /// runs ignore wall-clock deadlines (bounded by
    /// [`SimConfig::max_virtual_us`] instead) and do not stream raw
    /// candidates to a [`ResultSink`] (maximal results are still delivered).
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Enables span tracing for this session's runs: each run records the
    /// `run → decompose → task → mine_phase → steal/pull/spill` hierarchy
    /// into bounded per-thread buffers and attaches the captured
    /// [`Trace`] to [`MiningReport::trace`].
    ///
    /// The recorder is process-wide with a single active recording; when
    /// another traced run is already in flight, this run proceeds untraced
    /// (`trace: None`). Sessions without tracing pay one relaxed atomic
    /// load per span site.
    pub fn tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Validates the configuration and builds the [`Session`].
    ///
    /// # Errors
    /// [`QcmError::InvalidConfig`] when γ ∉ (0, 1], τ_size < 2, or the
    /// parallel backend is configured with zero threads or machines.
    pub fn build(self) -> Result<Session, QcmError> {
        if self.min_size < 2 {
            return Err(QcmError::InvalidConfig(format!(
                "min_size must be at least 2, got {}",
                self.min_size
            )));
        }
        let params = match self.gamma {
            // An adopted Gamma already upholds the (0, 1] invariant.
            GammaSpec::Exact(gamma) => MiningParams {
                gamma,
                min_size: self.min_size,
            },
            GammaSpec::Float(gamma) => {
                if !gamma.is_finite() || gamma <= 0.0 || gamma > 1.0 {
                    return Err(QcmError::InvalidConfig(format!(
                        "gamma must be in (0, 1], got {gamma}"
                    )));
                }
                MiningParams::new(gamma, self.min_size)
            }
        };
        let mut backend = self.backend;
        if let Some(kind) = self.transport {
            match &mut backend {
                Backend::Parallel { transport, .. } => *transport = kind,
                Backend::Serial => {
                    return Err(QcmError::InvalidConfig(
                        "transport selection requires the parallel backend".into(),
                    ));
                }
            }
        }
        if let Backend::Parallel {
            threads, machines, ..
        } = &backend
        {
            if *threads == 0 {
                return Err(QcmError::InvalidConfig(
                    "parallel backend needs at least one thread per machine".into(),
                ));
            }
            if *machines == 0 {
                return Err(QcmError::InvalidConfig(
                    "parallel backend needs at least one machine".into(),
                ));
            }
        }
        Ok(Session {
            params,
            prune: self.prune,
            backend,
            strategy: self.strategy,
            deadline: self.deadline,
            tau_split: self.tau_split,
            tau_time: self.tau_time,
            balance_period: self.balance_period,
            // Not unwrap_or_default(): the Default token is the never-firing
            // one, while a session-owned token must be cancellable.
            #[allow(clippy::unwrap_or_default)]
            cancel: self.cancel.unwrap_or_else(CancelToken::new),
            index: self.index,
            tracing: self.tracing,
        })
    }
}

/// A validated mining session: one configuration, runnable many times over
/// any graph, with cancellation, deadlines and streaming delivery.
///
/// See the [module documentation](self) for an end-to-end example.
#[derive(Clone, Debug)]
pub struct Session {
    params: MiningParams,
    prune: PruneConfig,
    backend: Backend,
    strategy: DecompositionStrategy,
    deadline: Option<Duration>,
    tau_split: usize,
    tau_time: Duration,
    balance_period: Option<Duration>,
    cancel: CancelToken,
    index: IndexSpec,
    tracing: Option<TraceConfig>,
}

/// A graph bundled with its neighborhood index, built **once** and reusable
/// across any number of [`Session`] runs (and, at the service layer, across
/// cached jobs over the same graph).
///
/// Building the index is `O(|V| + Σ_{hubs} d)` and allocates up to ~2× the
/// CSR size; for one-off runs [`Session::run`] handles it internally, but a
/// server answering repeated queries over the same graph should prepare once
/// and call [`Session::run_prepared`].
#[derive(Clone, Debug)]
pub struct PreparedGraph {
    graph: Arc<Graph>,
    index: Arc<NeighborhoodIndex>,
}

impl PreparedGraph {
    /// Builds the index over `graph` per `spec`.
    pub fn build(graph: Arc<Graph>, spec: IndexSpec) -> Self {
        let index = Arc::new(NeighborhoodIndex::build(graph.clone(), spec));
        PreparedGraph { graph, index }
    }

    /// Adopts an already-built index (must wrap the same `Arc`'d graph).
    pub fn from_parts(graph: Arc<Graph>, index: Arc<NeighborhoodIndex>) -> Self {
        assert!(
            Arc::ptr_eq(index.graph(), &graph),
            "PreparedGraph index must wrap the same graph"
        );
        PreparedGraph { graph, index }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The shared neighborhood index.
    pub fn index(&self) -> &Arc<NeighborhoodIndex> {
        &self.index
    }
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The validated mining parameters (γ, τ_size).
    pub fn params(&self) -> &MiningParams {
        &self.params
    }

    /// The configured backend.
    pub fn backend(&self) -> Backend {
        self.backend.clone()
    }

    /// A handle to cancel this session's runs from another thread. Firing it
    /// makes in-flight and future `run`s stop cooperatively and return
    /// partial reports labelled [`RunOutcome::Cancelled`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The configured neighborhood-index policy.
    pub fn index_spec(&self) -> IndexSpec {
        self.index
    }

    /// Builds the session's neighborhood index over `graph` once, for reuse
    /// across many [`Session::run_prepared`] calls.
    pub fn prepare(&self, graph: Arc<Graph>) -> PreparedGraph {
        PreparedGraph::build(graph, self.index)
    }

    /// Mines `graph` and returns the unified report. Interruption
    /// (cancellation / deadline) is reported in [`MiningReport::outcome`],
    /// not as an error — chain [`MiningReport::into_result`] to treat partial
    /// runs as failures.
    pub fn run(&self, graph: &Arc<Graph>) -> Result<MiningReport, QcmError> {
        self.run_impl(graph, None, None)
    }

    /// Like [`Session::run`], but reuses the prepared graph's index instead
    /// of building one for the run.
    pub fn run_prepared(&self, prepared: &PreparedGraph) -> Result<MiningReport, QcmError> {
        self.run_impl(&prepared.graph, Some(&prepared.index), None)
    }

    /// Like [`Session::run_streaming`], but reuses the prepared graph's
    /// index.
    pub fn run_prepared_streaming(
        &self,
        prepared: &PreparedGraph,
        sink: &mut dyn ResultSink,
    ) -> Result<MiningReport, QcmError> {
        self.run_impl(&prepared.graph, Some(&prepared.index), Some(sink))
    }

    /// Mines `graph`, pushing results into `sink` as the run progresses:
    /// every raw candidate through [`ResultSink::on_candidate`] (live for the
    /// serial backend, drained per-run for the parallel one) and each final
    /// result through [`ResultSink::on_maximal`] as it is proven maximal by
    /// the post-processing phase. The returned report is identical to what
    /// [`Session::run`] would produce.
    pub fn run_streaming(
        &self,
        graph: &Arc<Graph>,
        sink: &mut dyn ResultSink,
    ) -> Result<MiningReport, QcmError> {
        self.run_impl(graph, None, Some(sink))
    }

    fn run_impl(
        &self,
        graph: &Arc<Graph>,
        shared_index: Option<&Arc<NeighborhoodIndex>>,
        mut sink: Option<&mut dyn ResultSink>,
    ) -> Result<MiningReport, QcmError> {
        // Arm the per-run token: session cancellation plus this run's
        // deadline, composed into one poll.
        let run_token = self.cancel.with_deadline(self.deadline);
        // One process-wide recording at a time: if another traced run is
        // in flight, this one proceeds untraced rather than blocking.
        let recording = match &self.tracing {
            Some(config) => qcm_obs::start_recording(config),
            None => false,
        };
        let run_span = recording.then(|| qcm_obs::span(SpanKind::Run));
        let report = match &self.backend {
            Backend::Serial => self.run_serial(graph.as_ref(), run_token, sink.as_deref_mut()),
            Backend::Parallel {
                threads,
                machines,
                transport,
            } => self.run_parallel(
                graph,
                shared_index,
                *threads,
                *machines,
                transport,
                run_token,
                sink.as_deref_mut(),
            ),
        };
        drop(run_span);
        let mut report = report;
        if recording {
            report.trace = Some(qcm_obs::finish_recording());
        }
        if let Some(sink) = sink {
            for members in report.maximal.iter() {
                sink.on_maximal(members);
            }
        }
        Ok(report)
    }

    pub(crate) fn run_serial<'a, 'b>(
        &self,
        graph: &Graph,
        cancel: CancelToken,
        sink: Option<&'a mut (dyn ResultSink + 'b)>,
    ) -> MiningReport {
        let miner = SerialMiner::with_config(self.params, self.prune)
            .with_index(self.index)
            .with_cancel(cancel);
        let output = match sink {
            None => miner.mine(graph),
            Some(sink) => {
                let mut forwarder = CandidateForwarder::new(sink);
                miner.mine_with_observer(graph, &mut forwarder)
            }
        };
        MiningReport {
            maximal: output.maximal,
            raw_reported: output.raw_reported,
            elapsed: output.elapsed,
            outcome: output.outcome,
            stats: BackendStats::Serial {
                stats: output.stats,
                kcore_vertices: output.kcore_vertices,
            },
            trace: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_parallel<'a, 'b>(
        &self,
        graph: &Arc<Graph>,
        shared_index: Option<&Arc<NeighborhoodIndex>>,
        threads: usize,
        machines: usize,
        transport: &TransportKind,
        cancel: CancelToken,
        sink: Option<&'a mut (dyn ResultSink + 'b)>,
    ) -> MiningReport {
        if let TransportKind::Sim(sim) = transport {
            return self.run_sim(graph, shared_index, threads, machines, sim.clone());
        }
        let factory = match transport {
            TransportKind::InProc => TransportFactory::in_proc(),
            TransportKind::InProcStrict => TransportFactory::strict(),
            TransportKind::Sim(_) => unreachable!("handled above"),
        };
        let mut config = EngineConfig::cluster(machines, threads)
            .with_decomposition(self.tau_split, self.tau_time)
            .with_cancel(cancel)
            .with_index(self.index)
            .with_transport(factory);
        if let Some(index) = shared_index {
            config = config.with_shared_index(index.clone());
        }
        if let Some(period) = self.balance_period {
            config.balance_period = period;
        }
        let miner = ParallelMiner::new(self.params, config)
            .with_strategy(self.strategy)
            .with_prune_config(self.prune);
        let output = match sink {
            None => miner.mine(graph.clone()),
            Some(sink) => {
                let mut forwarder = CandidateForwarder::new(sink);
                miner.mine_with_observer(graph.clone(), &mut forwarder)
            }
        };
        let elapsed = output.metrics.elapsed;
        let outcome = output.outcome();
        MiningReport {
            maximal: output.maximal,
            raw_reported: output.raw_reported,
            elapsed,
            outcome,
            stats: BackendStats::Parallel {
                metrics: Box::new(output.metrics),
            },
            trace: None,
        }
    }

    /// Runs the job on the deterministic fault simulator
    /// ([`TransportKind::Sim`]). Thread counts are not modelled and
    /// wall-clock cancellation is ignored — the run is bounded by the
    /// scenario's virtual-time horizon; a scenario that loses work
    /// permanently yields [`RunOutcome::Faulted`] with the surviving valid
    /// results.
    fn run_sim(
        &self,
        graph: &Arc<Graph>,
        shared_index: Option<&Arc<NeighborhoodIndex>>,
        _threads: usize,
        machines: usize,
        sim: SimConfig,
    ) -> MiningReport {
        let mut config = EngineConfig::cluster(machines, 1)
            .with_decomposition(self.tau_split, self.tau_time)
            .with_index(self.index);
        if let Some(index) = shared_index {
            config = config.with_shared_index(index.clone());
        }
        let miner = SimMiner::new(self.params, config, sim).with_prune_config(self.prune);
        let output = miner.mine(graph.clone());
        MiningReport {
            maximal: output.maximal,
            raw_reported: output.raw_reported,
            elapsed: output.metrics.elapsed,
            outcome: output.outcome,
            stats: BackendStats::Parallel {
                metrics: Box::new(output.metrics),
            },
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4() -> Arc<Graph> {
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (1, 5),
            (5, 6),
            (2, 6),
            (3, 7),
            (7, 8),
            (3, 8),
        ];
        Arc::new(Graph::from_edges(9, edges.iter().copied()).unwrap())
    }

    #[test]
    fn builder_rejects_invalid_gamma() {
        for gamma in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = Session::builder().gamma(gamma).build().unwrap_err();
            assert!(matches!(err, QcmError::InvalidConfig(_)), "gamma {gamma}");
        }
    }

    #[test]
    fn builder_rejects_degenerate_sizes_and_shapes() {
        assert!(matches!(
            Session::builder().min_size(1).build().unwrap_err(),
            QcmError::InvalidConfig(_)
        ));
        assert!(matches!(
            Session::builder()
                .backend(Backend::parallel(0, 1))
                .build()
                .unwrap_err(),
            QcmError::InvalidConfig(_)
        ));
        assert!(matches!(
            Session::builder()
                .backend(Backend::parallel(2, 0))
                .build()
                .unwrap_err(),
            QcmError::InvalidConfig(_)
        ));
    }

    #[test]
    fn params_keeps_exact_rational_gamma_across_min_size_override() {
        // γ = 2/3 has no exact 1/1_000_000-grid representation, so a float
        // round-trip would silently change the mining thresholds.
        let exact = qcm_core::Gamma::from_ratio(2, 3);
        let params = MiningParams {
            gamma: exact,
            min_size: 4,
        };
        let session = Session::builder()
            .params(params)
            .min_size(5)
            .build()
            .unwrap();
        assert_eq!(session.params().gamma, exact);
        assert_eq!(session.params().min_size, 5);
        // A later .gamma() call replaces the rational with the float path.
        let session = Session::builder()
            .params(params)
            .gamma(0.5)
            .build()
            .unwrap();
        assert_eq!(session.params().gamma, qcm_core::Gamma::new(0.5));
    }

    #[test]
    fn serial_and_parallel_backends_agree_on_figure4() {
        let g = figure4();
        let serial = Session::builder()
            .gamma(0.6)
            .min_size(5)
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        let parallel = Session::builder()
            .gamma(0.6)
            .min_size(5)
            .backend(Backend::parallel(4, 1))
            .build()
            .unwrap()
            .run(&g)
            .unwrap();
        assert_eq!(serial.maximal, parallel.maximal);
        assert_eq!(serial.maximal.len(), 1);
        assert!(serial.serial_stats().is_some());
        assert!(serial.engine_metrics().is_none());
        assert!(parallel.engine_metrics().is_some());
        assert!(parallel.serial_stats().is_none());
    }

    #[test]
    fn cancelled_session_returns_partial_labelled_report() {
        let g = figure4();
        let session = Session::builder().gamma(0.6).min_size(5).build().unwrap();
        session.cancel_token().cancel();
        let report = session.run(&g).unwrap();
        assert_eq!(report.outcome, RunOutcome::Cancelled);
        assert!(!report.is_complete());
        assert!(matches!(
            report.into_result().unwrap_err(),
            QcmError::Cancelled
        ));
    }

    #[test]
    fn zero_deadline_is_reported_as_deadline_exceeded() {
        let g = figure4();
        for backend in [Backend::Serial, Backend::parallel(2, 1)] {
            let report = Session::builder()
                .gamma(0.6)
                .min_size(5)
                .backend(backend.clone())
                .deadline(Duration::ZERO)
                .build()
                .unwrap()
                .run(&g)
                .unwrap();
            assert_eq!(report.outcome, RunOutcome::DeadlineExceeded, "{backend:?}");
            assert!(matches!(
                report.into_result().unwrap_err(),
                QcmError::DeadlineExceeded
            ));
        }
    }

    #[test]
    fn streaming_delivers_candidates_and_maximal_results() {
        let g = figure4();
        let session = Session::builder().gamma(0.9).min_size(4).build().unwrap();
        let mut sink = qcm_core::CollectingSink::default();
        let report = session.run_streaming(&g, &mut sink).unwrap();
        assert_eq!(sink.candidates, report.raw_reported);
        assert_eq!(sink.maximal.len(), report.maximal.len());
        for members in &sink.maximal {
            assert!(report.maximal.contains(members));
        }
    }
}
