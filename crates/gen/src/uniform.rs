//! Uniform (Erdős–Rényi style) random graph generators.
//!
//! These are the simplest background models: `G(n, p)` includes every edge
//! independently with probability `p`, `G(n, m)` samples exactly `m` distinct
//! edges uniformly. They are used as low-skew baselines in tests and as the
//! background noise layer of the planted-community generator.

use qcm_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a `G(n, p)` random graph: each of the `n(n-1)/2` possible edges
/// is present independently with probability `p`.
///
/// Runs in `O(n²)`; intended for small/medium `n` (tests, planted blocks).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, (p * n as f64 * n as f64 / 2.0) as usize);
    builder.set_min_vertices(n);
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if rng.gen_bool(p) {
                builder.add_edge_raw(i, j);
            }
        }
    }
    builder.build()
}

/// Generates a `G(n, m)` random graph with exactly `m` distinct edges sampled
/// uniformly at random (capped at the maximum possible `n(n-1)/2`).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    builder.set_min_vertices(n);
    if n < 2 {
        return builder.build();
    }
    while chosen.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if chosen.insert(key) {
            builder.add_edge_raw(key.0, key.1);
        }
    }
    builder.build()
}

/// Generates a ring lattice: `n` vertices in a cycle, each connected to its
/// `k` nearest neighbors on each side. Useful as a deterministic, low-variance
/// test fixture (every vertex has degree exactly `2k` for `n > 2k`).
pub fn ring_lattice(n: usize, k: usize) -> Graph {
    let mut builder = GraphBuilder::with_capacity(n, n * k);
    builder.set_min_vertices(n);
    if n == 0 {
        return builder.build();
    }
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            if i != j {
                builder.add_edge_raw(i as u32, j as u32);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_zero_and_one_extremes() {
        let g0 = gnp(10, 0.0, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(10, 1.0, 1);
        assert_eq!(g1.num_edges(), 45);
        g1.validate().unwrap();
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(50, 0.1, 42);
        let b = gnp(50, 0.1, 42);
        assert_eq!(a, b);
        let c = gnp(50, 0.1, 43);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn gnp_rejects_bad_probability() {
        gnp(5, 1.5, 0);
    }

    #[test]
    fn gnm_produces_exact_edge_count() {
        let g = gnm(30, 100, 7);
        assert_eq!(g.num_edges(), 100);
        g.validate().unwrap();
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm(5, 1000, 7);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_handles_tiny_graphs() {
        assert_eq!(gnm(0, 10, 1).num_edges(), 0);
        assert_eq!(gnm(1, 10, 1).num_edges(), 0);
    }

    #[test]
    fn ring_lattice_degrees_are_uniform() {
        let g = ring_lattice(20, 3);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 60);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn ring_lattice_small_n() {
        let g = ring_lattice(3, 2);
        // Triangle: each vertex connected to both others, duplicates removed.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(ring_lattice(0, 2).num_vertices(), 0);
    }
}
