//! Planted quasi-clique generator.
//!
//! To reproduce the "Result #" column of Table 2 and the correctness oracle
//! tests, we need graphs that *provably contain* dense communities whose
//! internal degree ratio straddles a chosen γ. This module plants
//! near-cliques into an arbitrary background graph:
//!
//! * each planted community is a vertex block of a chosen size whose internal
//!   edges are filled until every member has internal degree
//!   ≥ ⌈γ⁺·(size−1)⌉ for a plant density γ⁺ (usually slightly above the
//!   mining γ so the block survives the pruning rules);
//! * the background's degree skew controls how expensive the mining tasks
//!   touching each block are.
//!
//! The generator reports the planted blocks so tests can assert that the
//! miner recovers (supersets of) them.

use qcm_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Description of one planted community.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedCommunity {
    /// The member vertices (sorted by id).
    pub members: Vec<VertexId>,
    /// Minimum internal degree guaranteed for every member.
    pub min_internal_degree: usize,
}

/// Specification of a planted-community graph.
#[derive(Clone, Debug)]
pub struct PlantedGraphSpec {
    /// Number of vertices in the background graph.
    pub num_vertices: usize,
    /// Average degree of the background (Chung–Lu power-law layer).
    pub background_avg_degree: f64,
    /// Power-law exponent of the background degree distribution.
    pub background_beta: f64,
    /// Cap on the expected background degree (controls hub size).
    pub background_max_degree: f64,
    /// Sizes of the communities to plant.
    pub community_sizes: Vec<usize>,
    /// Internal density of each planted community, as a fraction in [0, 1]:
    /// every member ends up adjacent to at least `⌈density·(size-1)⌉` other
    /// members.
    pub community_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedGraphSpec {
    fn default() -> Self {
        PlantedGraphSpec {
            num_vertices: 1000,
            background_avg_degree: 6.0,
            background_beta: 2.5,
            background_max_degree: 80.0,
            community_sizes: vec![20, 15, 12],
            community_density: 0.95,
            seed: 0,
        }
    }
}

/// Generates a graph according to `spec`: a power-law background plus planted
/// dense communities. Returns the graph and the planted community
/// descriptions.
pub fn plant_quasi_cliques(spec: &PlantedGraphSpec) -> (Graph, Vec<PlantedCommunity>) {
    let background = crate::powerlaw::power_law_graph(
        spec.num_vertices,
        spec.background_avg_degree,
        spec.background_beta,
        spec.background_max_degree,
        spec.seed,
    );
    plant_into(
        &background,
        &spec.community_sizes,
        spec.community_density,
        spec.seed ^ 0x9e37_79b9,
    )
}

/// Plants dense communities of the given sizes into an existing background
/// graph. Members are chosen uniformly at random without replacement across
/// communities (so communities are vertex-disjoint), and internal edges are
/// added until every member reaches the target internal degree.
pub fn plant_into(
    background: &Graph,
    community_sizes: &[usize],
    density: f64,
    seed: u64,
) -> (Graph, Vec<PlantedCommunity>) {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let n = background.num_vertices();
    let total_needed: usize = community_sizes.iter().sum();
    assert!(
        total_needed <= n,
        "cannot plant {total_needed} community vertices into a graph with {n} vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    pool.shuffle(&mut rng);

    let mut builder = GraphBuilder::with_capacity(n, background.num_edges() + total_needed * 8);
    builder.set_min_vertices(n);
    for (u, v) in background.edges() {
        builder.add_edge(u, v);
    }

    let mut communities = Vec::with_capacity(community_sizes.len());
    let mut cursor = 0usize;
    for &size in community_sizes {
        let mut members: Vec<u32> = pool[cursor..cursor + size].to_vec();
        cursor += size;
        members.sort_unstable();
        let target = ((density * (size as f64 - 1.0)).ceil() as usize).min(size.saturating_sub(1));

        // Dense block adjacency: start from the background edges already
        // inside the block, then greedily connect the currently
        // lowest-internal-degree member to the lowest-degree non-neighbor
        // until every member reaches the target. The greedy pairing keeps the
        // block's degree distribution flat, so every member clears the target
        // with near-minimal extra edges.
        let mut adjacency = vec![vec![false; size]; size];
        for i in 0..size {
            for j in (i + 1)..size {
                if background.has_edge(VertexId::new(members[i]), VertexId::new(members[j])) {
                    adjacency[i][j] = true;
                    adjacency[j][i] = true;
                }
            }
        }
        let mut internal: Vec<usize> = (0..size)
            .map(|i| adjacency[i].iter().filter(|&&b| b).count())
            .collect();
        let mut order: Vec<usize> = (0..size).collect();
        loop {
            order.sort_unstable_by_key(|&i| internal[i]);
            let lo = order[0];
            if internal[lo] >= target {
                break;
            }
            let partner = order
                .iter()
                .copied()
                .find(|&cand| cand != lo && !adjacency[lo][cand]);
            let Some(p) = partner else { break };
            adjacency[lo][p] = true;
            adjacency[p][lo] = true;
            internal[lo] += 1;
            internal[p] += 1;
            builder.add_edge_raw(members[lo], members[p]);
        }
        communities.push(PlantedCommunity {
            members: members.iter().map(|&m| VertexId::new(m)).collect(),
            min_internal_degree: target,
        });
    }
    (builder.build(), communities)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_communities_reach_target_density() {
        let spec = PlantedGraphSpec {
            num_vertices: 300,
            community_sizes: vec![15, 10],
            community_density: 0.9,
            seed: 3,
            ..Default::default()
        };
        let (g, communities) = plant_quasi_cliques(&spec);
        g.validate().unwrap();
        assert_eq!(communities.len(), 2);
        for c in &communities {
            let size = c.members.len();
            let target = ((0.9 * (size as f64 - 1.0)).ceil()) as usize;
            assert_eq!(c.min_internal_degree, target);
            for &v in &c.members {
                let internal = c
                    .members
                    .iter()
                    .filter(|&&u| u != v && g.has_edge(u, v))
                    .count();
                assert!(
                    internal >= target,
                    "vertex {v} has internal degree {internal} < target {target}"
                );
            }
        }
    }

    #[test]
    fn planted_communities_are_disjoint() {
        let spec = PlantedGraphSpec {
            num_vertices: 200,
            community_sizes: vec![12, 12, 12],
            seed: 9,
            ..Default::default()
        };
        let (_, communities) = plant_quasi_cliques(&spec);
        let mut all: Vec<VertexId> = communities
            .iter()
            .flat_map(|c| c.members.iter().copied())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn planting_is_deterministic() {
        let spec = PlantedGraphSpec {
            num_vertices: 150,
            community_sizes: vec![10],
            seed: 77,
            ..Default::default()
        };
        let (g1, c1) = plant_quasi_cliques(&spec);
        let (g2, c2) = plant_quasi_cliques(&spec);
        assert_eq!(g1, g2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn plant_into_preserves_background_edges() {
        let background = crate::uniform::gnp(60, 0.05, 4);
        let (g, _) = plant_into(&background, &[8], 1.0, 5);
        for (u, v) in background.edges() {
            assert!(g.has_edge(u, v), "background edge ({u},{v}) lost");
        }
        assert!(g.num_edges() >= background.num_edges());
    }

    #[test]
    fn density_one_plants_a_clique() {
        let background = crate::uniform::gnp(40, 0.02, 8);
        let (g, communities) = plant_into(&background, &[6], 1.0, 2);
        let c = &communities[0];
        for (i, &u) in c.members.iter().enumerate() {
            for &v in &c.members[i + 1..] {
                assert!(g.has_edge(u, v), "clique edge ({u},{v}) missing");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn plant_into_rejects_oversized_request() {
        let background = crate::uniform::gnp(10, 0.1, 1);
        plant_into(&background, &[8, 8], 0.9, 1);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn plant_into_rejects_bad_density() {
        let background = crate::uniform::gnp(10, 0.1, 1);
        plant_into(&background, &[5], 1.5, 1);
    }
}
