//! # qcm-gen — synthetic graph generators
//!
//! The paper evaluates on eight real graphs downloaded from GEO, SNAP and
//! KONECT (Table 1). Those files are not available in this offline
//! reproduction, so this crate provides generators that produce *stand-in*
//! graphs with the structural properties that drive quasi-clique mining cost:
//!
//! * a sparse, heavy-tailed background (Chung–Lu / preferential-attachment
//!   style degree skew) — this is what makes some spawned tasks huge and
//!   others trivial (Figures 1–3 of the paper);
//! * planted dense near-cliques whose internal edge density straddles the
//!   mining threshold γ — these are the communities the miner is supposed to
//!   find (the "Result #" column of Table 2);
//! * controllable size so the experiment harness can run every table on a
//!   single machine in minutes while preserving the qualitative shapes.
//!
//! The [`datasets`] module exposes one constructor per paper dataset
//! (`cx_gse1730()`, `youtube()`, …) returning a [`SyntheticDataset`] with the
//! generated graph plus the γ/τ_size/τ_split/τ_time parameters the paper used
//! for that dataset (scaled where necessary).
//!
//! All generators take an explicit RNG seed and are fully deterministic.

pub mod datasets;
pub mod planted;
pub mod powerlaw;
pub mod uniform;

pub use datasets::{DatasetSpec, SyntheticDataset};
pub use planted::{plant_into, plant_quasi_cliques, PlantedCommunity, PlantedGraphSpec};
pub use powerlaw::{chung_lu, preferential_attachment};
pub use uniform::{gnm, gnp, ring_lattice};
