//! Synthetic stand-ins for the paper's evaluation datasets.
//!
//! Table 1 of the paper lists eight real graphs. They are not redistributable
//! inside this offline reproduction, so each gets a *synthetic stand-in* with
//! the same qualitative structure at a (documented) reduced scale:
//!
//! | Paper dataset | Paper \|V\| / \|E\|     | Stand-in \|V\| (approx) | Scale factor |
//! |---------------|--------------------------|--------------------------|--------------|
//! | CX_GSE1730    | 998 / 5,096              | ~1,000                   | 1×           |
//! | CX_GSE10158   | 1,621 / 7,079            | ~1,600                   | 1×           |
//! | Ca-GrQc       | 5,242 / 14,496           | ~5,200                   | 1×           |
//! | Enron         | 36,692 / 183,831         | ~8,000                   | ~4.5×        |
//! | DBLP          | 317,080 / 1,049,866      | ~20,000                  | ~16×         |
//! | Amazon        | 334,863 / 925,872        | ~20,000                  | ~17×         |
//! | Hyves         | 1,402,673 / 2,777,419    | ~40,000                  | ~35×         |
//! | YouTube       | 1,134,890 / 2,987,624    | ~40,000                  | ~28×         |
//!
//! Every stand-in combines (a) a power-law background whose average degree
//! matches the real graph, (b) planted dense communities sized so that the
//! paper's (γ, τ_size) parameters yield a non-trivial but bounded result
//! count, and (c) for the "slow" datasets (Enron, Hyves, YouTube) an extra
//! *hard core* — a moderately dense random block that survives k-core
//! pruning and creates the long-tailed task times of Figures 1–3.
//!
//! The mining parameters attached to each stand-in are the paper's Table 2
//! parameters, with τ_size reduced where the scaled background could no
//! longer support communities of the original size.

use crate::planted::{plant_into, PlantedCommunity};
use crate::powerlaw::power_law_graph;
use qcm_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Full specification of a synthetic stand-in dataset, including the mining
/// parameters the experiment harness should use for it (mirroring Table 2).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (matches the paper's Table 1 naming).
    pub name: &'static str,
    /// Number of vertices of the background graph.
    pub num_vertices: usize,
    /// Target average degree of the background.
    pub avg_degree: f64,
    /// Power-law exponent of the background degree distribution.
    pub beta: f64,
    /// Cap on expected background degree.
    pub max_degree: f64,
    /// Sizes of planted dense communities.
    pub planted_sizes: Vec<usize>,
    /// Internal density of planted communities.
    pub planted_density: f64,
    /// Optional hard core: (number of vertices, edge probability). Creates the
    /// expensive, long-running tasks of Figures 1–3.
    pub hard_core: Option<(usize, f64)>,
    /// Minimum degree threshold γ used by the paper for this dataset.
    pub gamma: f64,
    /// Minimum size threshold τ_size used by the paper (scaled if needed).
    pub min_size: usize,
    /// Task-split threshold τ_split from Table 2.
    pub tau_split: usize,
    /// Timeout τ_time from Table 2, in milliseconds (scaled: the paper's
    /// seconds become milliseconds at our reduced dataset scale).
    pub tau_time_ms: u64,
    /// RNG seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

/// A generated stand-in dataset: the graph, the planted ground-truth
/// communities, and the spec it was generated from.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The generation spec (also carries the mining parameters).
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: Graph,
    /// Ground-truth planted communities (each is a γ⁺-dense block).
    pub planted: Vec<PlantedCommunity>,
}

impl DatasetSpec {
    /// Generates the dataset from this spec.
    pub fn generate(&self) -> SyntheticDataset {
        let background = power_law_graph(
            self.num_vertices,
            self.avg_degree,
            self.beta,
            self.max_degree,
            self.seed,
        );
        let background = match self.hard_core {
            Some((size, p)) => overlay_hard_core(&background, size, p, self.seed ^ 0xABCD),
            None => background,
        };
        let (graph, planted) = plant_into(
            &background,
            &self.planted_sizes,
            self.planted_density,
            self.seed ^ 0x5eed,
        );
        SyntheticDataset {
            spec: self.clone(),
            graph,
            planted,
        }
    }
}

/// Overlays a moderately dense `G(size, p)` block onto randomly chosen
/// vertices of `background`. The block's density is chosen *below* the mining
/// γ so it produces few results but a large surviving search space — the
/// source of the paper's expensive tasks.
fn overlay_hard_core(background: &Graph, size: usize, p: f64, seed: u64) -> Graph {
    let n = background.num_vertices();
    let size = size.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<u32> = (0..n as u32).collect();
    pool.shuffle(&mut rng);
    let members = &pool[..size];
    let mut builder = GraphBuilder::with_capacity(n, background.num_edges() + size * size / 4);
    builder.set_min_vertices(n);
    for (u, v) in background.edges() {
        builder.add_edge(u, v);
    }
    for i in 0..size {
        for j in (i + 1)..size {
            if rng.gen_bool(p) {
                builder.add_edge_raw(members[i], members[j]);
            }
        }
    }
    builder.build()
}

/// Returns the vertices of the hard core of a dataset, if any, for tests that
/// need to inspect it. (Re-derives the same shuffled prefix as
/// `overlay_hard_core`.)
pub fn hard_core_members(spec: &DatasetSpec) -> Option<Vec<VertexId>> {
    let (size, _) = spec.hard_core?;
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xABCD);
    let mut pool: Vec<u32> = (0..spec.num_vertices as u32).collect();
    pool.shuffle(&mut rng);
    let mut members: Vec<VertexId> = pool[..size.min(spec.num_vertices)]
        .iter()
        .map(|&v| VertexId::new(v))
        .collect();
    members.sort_unstable();
    Some(members)
}

/// CX_GSE1730 stand-in: small gene-coexpression-like network, γ=0.9, τ_size≈30
/// in the paper; the stand-in plants communities of ~size 12 and mines with
/// τ_size=10 (the 1× scale keeps |V| but the synthetic background cannot
/// support 30-vertex 0.9-dense blocks without dominating the graph).
pub fn cx_gse1730() -> DatasetSpec {
    DatasetSpec {
        name: "CX_GSE1730",
        num_vertices: 1_000,
        avg_degree: 10.2,
        beta: 2.6,
        max_degree: 90.0,
        planted_sizes: vec![12, 12, 11, 10],
        planted_density: 0.95,
        hard_core: None,
        gamma: 0.9,
        min_size: 10,
        tau_split: 200,
        tau_time_ms: 20,
        seed: 1730,
    }
}

/// CX_GSE10158 stand-in: γ=0.8, paper τ_size=28 → stand-in τ_size=10.
pub fn cx_gse10158() -> DatasetSpec {
    DatasetSpec {
        name: "CX_GSE10158",
        num_vertices: 1_600,
        avg_degree: 8.8,
        beta: 2.6,
        max_degree: 110.0,
        planted_sizes: vec![13, 12, 11, 10, 10],
        planted_density: 0.88,
        hard_core: None,
        gamma: 0.8,
        min_size: 10,
        tau_split: 500,
        tau_time_ms: 20,
        seed: 10158,
    }
}

/// Ca-GrQc stand-in: collaboration network, γ=0.8, τ_size=10 (paper values).
pub fn ca_grqc() -> DatasetSpec {
    DatasetSpec {
        name: "Ca-GrQc",
        num_vertices: 5_200,
        avg_degree: 5.5,
        beta: 2.4,
        max_degree: 85.0,
        planted_sizes: vec![14, 12, 12, 11, 10, 10],
        planted_density: 0.85,
        hard_core: None,
        gamma: 0.8,
        min_size: 10,
        tau_split: 1_000,
        tau_time_ms: 10,
        seed: 14496,
    }
}

/// Enron stand-in: email network with a dense core, γ=0.9, paper τ_size=23 →
/// stand-in τ_size=12. The hard core reproduces Enron's expensive tasks.
pub fn enron() -> DatasetSpec {
    DatasetSpec {
        name: "Enron",
        num_vertices: 8_000,
        avg_degree: 10.0,
        beta: 2.2,
        max_degree: 140.0,
        planted_sizes: vec![15, 14, 13, 12, 12],
        planted_density: 0.95,
        hard_core: Some((42, 0.62)),
        gamma: 0.9,
        min_size: 12,
        tau_split: 100,
        tau_time_ms: 1,
        seed: 36692,
    }
}

/// DBLP stand-in: γ=0.8, paper τ_size=70 → stand-in τ_size=14 (collaboration
/// cliques scale with the reduced graph).
pub fn dblp() -> DatasetSpec {
    DatasetSpec {
        name: "DBLP",
        num_vertices: 20_000,
        avg_degree: 6.6,
        beta: 2.6,
        max_degree: 120.0,
        planted_sizes: vec![16, 15, 14],
        planted_density: 0.9,
        hard_core: None,
        gamma: 0.8,
        min_size: 14,
        tau_split: 100,
        tau_time_ms: 10,
        seed: 317080,
    }
}

/// Amazon stand-in: co-purchase network, γ=0.5, τ_size=12 (paper values).
pub fn amazon() -> DatasetSpec {
    DatasetSpec {
        name: "Amazon",
        num_vertices: 20_000,
        avg_degree: 5.5,
        beta: 2.9,
        max_degree: 60.0,
        planted_sizes: vec![13, 12, 12],
        planted_density: 0.6,
        hard_core: None,
        gamma: 0.5,
        min_size: 12,
        tau_split: 500,
        tau_time_ms: 10,
        seed: 334863,
    }
}

/// Hyves stand-in: social network, γ=0.9, paper τ_size=22 → stand-in
/// τ_size=12; hard core reproduces the "hard cores so expensive to mine"
/// observation of Table 4.
pub fn hyves() -> DatasetSpec {
    DatasetSpec {
        name: "Hyves",
        num_vertices: 40_000,
        avg_degree: 4.0,
        beta: 2.3,
        max_degree: 200.0,
        planted_sizes: vec![15, 14, 13, 12, 12, 12],
        planted_density: 0.95,
        hard_core: Some((42, 0.64)),
        gamma: 0.9,
        min_size: 12,
        tau_split: 50,
        tau_time_ms: 1,
        seed: 1402673,
    }
}

/// YouTube stand-in: the paper's hardest dataset (3.12 h on 16 machines),
/// γ=0.9, paper τ_size=18 → stand-in τ_size=12; the hard core is larger than
/// Hyves' so YouTube remains the slowest stand-in.
pub fn youtube() -> DatasetSpec {
    DatasetSpec {
        name: "YouTube",
        num_vertices: 40_000,
        avg_degree: 5.3,
        beta: 2.2,
        max_degree: 220.0,
        planted_sizes: vec![16, 14, 13, 12, 12],
        planted_density: 0.95,
        hard_core: Some((48, 0.64)),
        gamma: 0.9,
        min_size: 12,
        tau_split: 100,
        tau_time_ms: 1,
        seed: 1134890,
    }
}

/// All eight stand-in specs in the order of Table 1.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        cx_gse1730(),
        cx_gse10158(),
        ca_grqc(),
        enron(),
        dblp(),
        amazon(),
        hyves(),
        youtube(),
    ]
}

/// The spec behind [`tiny_test_dataset`]: a 200-vertex background with two
/// planted communities; mining finishes in milliseconds. Exposed separately
/// so the CLI (`qcm generate --dataset tiny-test`) and CI smoke scripts can
/// materialise it to disk.
pub fn tiny_test_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        name: "tiny-test",
        num_vertices: 200,
        avg_degree: 5.0,
        beta: 2.5,
        max_degree: 30.0,
        planted_sizes: vec![8, 7],
        planted_density: 0.95,
        hard_core: None,
        gamma: 0.8,
        min_size: 6,
        tau_split: 20,
        tau_time_ms: 5,
        seed,
    }
}

/// A tiny dataset for unit/integration tests (see [`tiny_test_spec`]).
pub fn tiny_test_dataset(seed: u64) -> SyntheticDataset {
    tiny_test_spec(seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::k_core;

    #[test]
    fn all_specs_are_listed_in_table1_order() {
        let names: Vec<&str> = all_datasets().iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "CX_GSE1730",
                "CX_GSE10158",
                "Ca-GrQc",
                "Enron",
                "DBLP",
                "Amazon",
                "Hyves",
                "YouTube"
            ]
        );
    }

    #[test]
    fn small_datasets_generate_with_expected_sizes() {
        for spec in [cx_gse1730(), cx_gse10158()] {
            let ds = spec.generate();
            assert_eq!(ds.graph.num_vertices(), spec.num_vertices);
            assert!(ds.graph.num_edges() > spec.num_vertices); // denser than a tree
            assert_eq!(ds.planted.len(), spec.planted_sizes.len());
            ds.graph.validate().unwrap();
        }
    }

    #[test]
    fn planted_blocks_survive_kcore_pruning() {
        // The k-core shrink with k = ceil(gamma*(min_size-1)) must retain every
        // planted block, otherwise the miner could never report them.
        let spec = cx_gse1730();
        let ds = spec.generate();
        let k = (spec.gamma * (spec.min_size as f64 - 1.0)).ceil() as usize;
        let (_, mapping) = k_core(&ds.graph, k);
        for community in &ds.planted {
            for &v in &community.members {
                assert!(
                    mapping.binary_search(&v).is_ok(),
                    "planted vertex {v} was peeled by the {k}-core"
                );
            }
        }
    }

    #[test]
    fn hard_core_members_are_reproducible() {
        let spec = enron();
        let a = hard_core_members(&spec).unwrap();
        let b = hard_core_members(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.hard_core.unwrap().0);
        assert!(hard_core_members(&cx_gse1730()).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cx_gse10158().generate();
        let b = cx_gse10158().generate();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn tiny_test_dataset_is_fast_and_valid() {
        let ds = tiny_test_dataset(1);
        assert_eq!(ds.graph.num_vertices(), 200);
        assert_eq!(ds.planted.len(), 2);
        ds.graph.validate().unwrap();
    }
}
