//! Heavy-tailed (power-law) background graph generators.
//!
//! The paper's large evaluation graphs (YouTube, Hyves, DBLP, Amazon, Enron)
//! are social/interaction networks with strongly skewed degree distributions.
//! Degree skew is what makes the per-task workload of the miner so uneven:
//! the task spawned from a hub vertex has a huge two-hop neighborhood while
//! most tasks are tiny (Figures 1–2). Two generators reproduce that skew:
//!
//! * [`chung_lu`] — expected-degree model: vertex `i` gets weight `w_i`
//!   following a power law, and edge `(i,j)` appears with probability
//!   `min(1, w_i·w_j / Σw)`. Fast (O(m) expected via the Miller–Hagberg
//!   bucket trick is unnecessary at our scales; we use the quadratic-free
//!   weighted sampling below).
//! * [`preferential_attachment`] — Barabási–Albert style growth, giving a
//!   power-law tail with exponent ≈ 3 and a connected graph.

use qcm_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates power-law weights `w_i ∝ (i + i0)^(-1/(β-1))` scaled so that the
/// average equals `avg_degree`. `β` is the target power-law exponent
/// (typically 2.1–3.0 for social networks).
pub fn power_law_weights(n: usize, avg_degree: f64, beta: f64, max_degree: f64) -> Vec<f64> {
    assert!(beta > 1.0, "power-law exponent must exceed 1");
    if n == 0 {
        return Vec::new();
    }
    let exponent = 1.0 / (beta - 1.0);
    // i0 offsets the ranks so the largest weight is about `max_degree`.
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();
    let raw_sum: f64 = raw.iter().sum();
    let scale = avg_degree * n as f64 / raw_sum;
    raw.into_iter()
        .map(|w| (w * scale).min(max_degree))
        .collect()
}

/// Chung–Lu expected-degree random graph.
///
/// `weights[i]` is the expected degree of vertex `i`. Edges are sampled with
/// probability `min(1, w_i w_j / Σw)` using the standard "skip" acceleration:
/// for each `i`, candidate `j`s are visited in weight order with geometric
/// skips, giving expected `O(n + m)` work for sorted weights.
pub fn chung_lu(weights: &[f64], seed: u64) -> Graph {
    let n = weights.len();
    let mut builder = GraphBuilder::with_capacity(n, 0);
    builder.set_min_vertices(n);
    if n < 2 {
        return builder.build();
    }
    // Sort vertices by non-increasing weight; remember the permutation so the
    // output graph still uses the caller's vertex numbering.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        weights[b as usize]
            .partial_cmp(&weights[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let sorted_w: Vec<f64> = order.iter().map(|&v| weights[v as usize]).collect();
    let total_w: f64 = sorted_w.iter().sum();
    if total_w <= 0.0 {
        return builder.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        if sorted_w[i] <= 0.0 {
            continue;
        }
        let mut j = i + 1;
        let mut p =
            (sorted_w[i] * sorted_w[i + 1..].first().copied().unwrap_or(0.0) / total_w).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                // Geometric skip ahead.
                let r: f64 = rng.gen::<f64>();
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            let q = (sorted_w[i] * sorted_w[j] / total_w).min(1.0);
            if rng.gen::<f64>() < q / p {
                builder.add_edge_raw(order[i], order[j]);
            }
            p = q;
            j += 1;
        }
    }
    builder.build()
}

/// Convenience wrapper: Chung–Lu graph with a power-law expected degree
/// sequence of exponent `beta`, average degree `avg_degree` and maximum
/// expected degree `max_degree`.
pub fn power_law_graph(n: usize, avg_degree: f64, beta: f64, max_degree: f64, seed: u64) -> Graph {
    let weights = power_law_weights(n, avg_degree, beta, max_degree);
    chung_lu(&weights, seed)
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m + 1` vertices and attaches each new vertex to `m` existing vertices
/// chosen proportionally to their current degree.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment parameter m must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m);
    builder.set_min_vertices(n);
    if n == 0 {
        return builder.build();
    }
    let seed_size = (m + 1).min(n);
    // Repeated-endpoint list: sampling an index uniformly from this list is
    // equivalent to degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    for i in 0..seed_size as u32 {
        for j in (i + 1)..seed_size as u32 {
            builder.add_edge_raw(i, j);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in seed_size as u32..n as u32 {
        let mut targets = std::collections::HashSet::with_capacity(m);
        let mut guard = 0usize;
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != v {
                targets.insert(t);
            }
        }
        for &t in &targets {
            builder.add_edge_raw(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcm_graph::GraphStats;

    #[test]
    fn power_law_weights_average_matches_request() {
        let w = power_law_weights(1000, 6.0, 2.5, 200.0);
        let avg: f64 = w.iter().sum::<f64>() / w.len() as f64;
        // Capping at max_degree can pull the average down slightly.
        assert!(avg > 4.0 && avg < 6.5, "avg weight {avg}");
        assert!(w[0] >= w[999]);
        assert!(power_law_weights(0, 5.0, 2.5, 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn power_law_weights_rejects_bad_beta() {
        power_law_weights(10, 5.0, 1.0, 10.0);
    }

    #[test]
    fn chung_lu_produces_roughly_expected_density() {
        let n = 2000;
        let g = power_law_graph(n, 8.0, 2.3, 150.0, 11);
        g.validate().unwrap();
        let avg = g.avg_degree();
        assert!(avg > 3.0 && avg < 14.0, "average degree {avg} out of range");
        // Heavy tail: max degree should be several times the average.
        assert!(g.max_degree() as f64 > 3.0 * avg);
    }

    #[test]
    fn chung_lu_deterministic_and_seed_sensitive() {
        let w = power_law_weights(300, 5.0, 2.5, 60.0);
        let a = chung_lu(&w, 5);
        let b = chung_lu(&w, 5);
        let c = chung_lu(&w, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn chung_lu_edge_cases() {
        assert_eq!(chung_lu(&[], 1).num_vertices(), 0);
        assert_eq!(chung_lu(&[3.0], 1).num_vertices(), 1);
        assert_eq!(chung_lu(&[0.0, 0.0, 0.0], 1).num_edges(), 0);
    }

    #[test]
    fn preferential_attachment_basic_structure() {
        let g = preferential_attachment(500, 3, 99);
        g.validate().unwrap();
        assert_eq!(g.num_vertices(), 500);
        // Every non-seed vertex attaches with m edges, so m is (almost) a
        // lower bound on edge count.
        assert!(g.num_edges() >= 3 * (500 - 4));
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.num_components, 1, "BA graphs are connected");
        assert!(stats.max_degree > 20, "hubs should emerge");
    }

    #[test]
    fn preferential_attachment_small_n() {
        let g = preferential_attachment(3, 5, 1);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // capped at the seed clique
    }

    #[test]
    #[should_panic(expected = "m must be >= 1")]
    fn preferential_attachment_rejects_zero_m() {
        preferential_attachment(10, 0, 1);
    }
}
