//! Prometheus text-exposition exporter.
//!
//! Renders a [`Registry`] in the Prometheus text format (version 0.0.4):
//! a `# HELP` / `# TYPE` header per family, `name{labels} value` sample
//! lines, and for histograms the cumulative `_bucket{le=…}` series plus
//! `_sum` / `_count`. [`check_text`] is the well-formedness gate CI runs
//! over `qcm serve`'s `metrics prom` output.

use crate::registry::{Registry, Value};
use std::fmt::Write as _;

fn write_value(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 9e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders every metric in `registry` as Prometheus text exposition.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, help, kind, samples) in registry.snapshot() {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
        for (labels, value) in samples {
            match value {
                Value::Int(v) => {
                    let _ = writeln!(out, "{name}{labels} {v}");
                }
                Value::Float(v) => {
                    out.push_str(&name);
                    out.push_str(&labels);
                    out.push(' ');
                    write_value(&mut out, v);
                    out.push('\n');
                }
                Value::Hist {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    // `le` buckets are cumulative; the registry stores
                    // per-bucket counts.
                    let inner = labels.trim_start_matches('{').trim_end_matches('}');
                    let sep = if inner.is_empty() { "" } else { "," };
                    let mut acc = 0u64;
                    for (bound, bucket) in bounds.iter().zip(&counts) {
                        acc += bucket;
                        let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"{bound}\"}} {acc}");
                    }
                    acc += counts.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{name}_bucket{{{inner}{sep}le=\"+Inf\"}} {acc}");
                    out.push_str(&name);
                    out.push_str("_sum");
                    out.push_str(&labels);
                    out.push(' ');
                    write_value(&mut out, sum);
                    out.push('\n');
                    let _ = writeln!(out, "{name}_count{labels} {count}");
                }
            }
        }
    }
    out
}

/// Checks Prometheus text exposition for well-formedness: every sample
/// line must parse as `name[{labels}] value`, its metric must have been
/// declared by a preceding `# TYPE`, and the value must be a finite
/// number (or `+Inf`-bucket syntax inside labels, which this does not
/// affect). Returns the first offence.
pub fn check_text(text: &str) -> Result<(), String> {
    let mut declared: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
            }
            declared.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.find(['{', ' ']) {
            Some(i) if line.as_bytes()[i] == b'{' => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (&line[..i], line[close + 1..].trim())
            }
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(format!("line {lineno}: sample without a value")),
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {lineno}: bad metric name {name_part:?}"));
        }
        let base = name_part
            .strip_suffix("_bucket")
            .or_else(|| name_part.strip_suffix("_sum"))
            .or_else(|| name_part.strip_suffix("_count"))
            .unwrap_or(name_part);
        if !declared.iter().any(|d| d == name_part || d == base) {
            return Err(format!(
                "line {lineno}: sample {name_part:?} has no preceding # TYPE"
            ));
        }
        let numeric = value_part.parse::<f64>().map(|v| v.is_finite());
        if !matches!(numeric, Ok(true)) {
            return Err(format!(
                "line {lineno}: value {value_part:?} is not a finite number"
            ));
        }
    }
    if declared.is_empty() {
        return Err("no # TYPE declarations found".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_passes_its_own_checker() {
        let reg = Registry::new();
        reg.counter("qcm_jobs_total", "Jobs accepted.").inc_by(3);
        reg.gauge_with("qcm_queue_depth", "Waiting jobs.", &[("pool", "a")])
            .set(7.0);
        let h = reg.histogram_with(
            "qcm_latency_seconds",
            "Job latency.",
            &[("pool", "a")],
            &[0.1, 1.0],
        );
        h.observe(0.05);
        h.observe(5.0);
        let text = render(&reg);
        assert!(text.contains("# TYPE qcm_jobs_total counter"));
        assert!(text.contains("qcm_jobs_total 3"));
        assert!(text.contains("qcm_queue_depth{pool=\"a\"} 7"));
        assert!(text.contains("qcm_latency_seconds_bucket{pool=\"a\",le=\"0.1\"} 1"));
        assert!(text.contains("qcm_latency_seconds_bucket{pool=\"a\",le=\"+Inf\"} 2"));
        assert!(text.contains("qcm_latency_seconds_count{pool=\"a\"} 2"));
        check_text(&text).expect("rendered exposition must be well-formed");
    }

    #[test]
    fn checker_rejects_malformed_exposition() {
        assert!(check_text("").is_err(), "empty exposition");
        assert!(
            check_text("qcm_x 1\n").is_err(),
            "sample without # TYPE must fail"
        );
        assert!(
            check_text("# TYPE qcm_x counter\nqcm_x banana\n").is_err(),
            "non-numeric value must fail"
        );
        assert!(
            check_text("# TYPE qcm_x counter\nqcm-x 1\n").is_err(),
            "bad metric name must fail"
        );
        assert!(check_text("# TYPE qcm_x counter\nqcm_x 1\n").is_ok());
    }
}
