//! The workspace timing facade.
//!
//! Mirroring the `qcm-sync` concurrency facade, every crate below the CLI
//! takes its monotonic clock from here instead of `std::time`
//! (`qcm-lint` enforces it: `std::time::Instant` is permitted only in
//! `crates/obs`, `crates/bench` and `crates/cli`). A single interception
//! point keeps the door open for virtual clocks (the fault simulator) and
//! makes every timing site visible to the tracing layer.

pub use std::time::{Duration, Instant};

/// The current instant on the facade clock.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}
