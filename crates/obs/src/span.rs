//! Hierarchical spans recorded into per-thread single-writer buffers.
//!
//! One process-wide recording can be active at a time
//! ([`start_recording`] / [`finish_recording`]); while it is, RAII
//! [`SpanGuard`]s obtained from [`span`] / [`span_with`] append one
//! [`SpanEvent`] per closed span to the calling thread's buffer. The buffer
//! is written only by its owner thread and never wraps: once
//! [`TraceConfig::capacity_per_thread`] events are stored, further events
//! are *dropped* and counted, so a trace is either complete or says exactly
//! how incomplete it is ([`Trace::dropped`]).
//!
//! With no recording active the entire span machinery costs one relaxed
//! atomic load and a branch per [`span`] call — the mining hot path pays
//! nothing measurable for being instrumented.

use crate::clock::Instant;
use qcm_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use qcm_sync::{Arc, Mutex, OnceLock};
use std::cell::UnsafeCell;
use std::cell::{Cell, RefCell};

/// The span taxonomy, from coarsest to finest:
/// `run → decompose → task → mine_phase → steal/pull/spill`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One whole `Session` run (serial or parallel).
    Run,
    /// Materialising the subtasks of one decomposed big task.
    Decompose,
    /// One engine task being processed by a worker.
    Task,
    /// One bounded mining phase (per root vertex on the serial backend,
    /// per task timeslice on the parallel one).
    MinePhase,
    /// One intra-machine steal sweep that moved at least one task.
    Steal,
    /// One blocking remote-vertex fetch round.
    Pull,
    /// Spilling a big task to (or refilling it from) the spill store.
    Spill,
}

impl SpanKind {
    /// The stable lowercase name used by the exporters and the trace-smoke
    /// CI step.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Decompose => "decompose",
            SpanKind::Task => "task",
            SpanKind::MinePhase => "mine_phase",
            SpanKind::Steal => "steal",
            SpanKind::Pull => "pull",
            SpanKind::Spill => "spill",
        }
    }
}

/// One closed span. Timestamps are microseconds since the process trace
/// epoch (the first recording's start), so events from different threads
/// and machines share one timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What the span measured.
    pub kind: SpanKind,
    /// Start, µs since the trace epoch.
    pub start_us: u64,
    /// Duration in µs (0 for sub-microsecond spans).
    pub dur_us: u64,
    /// Machine lane (`pid` in the Chrome trace): the simulated machine id
    /// set via [`set_lane`], 0 outside the engine.
    pub lane: u32,
    /// Recording-local thread id (`tid` in the Chrome trace), assigned in
    /// registration order.
    pub tid: u32,
    /// Kind-specific payload (root vertex, task id, batch size, bytes, …).
    pub arg: u64,
}

impl SpanEvent {
    /// End of the span, µs since the trace epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

/// Per-`Session` tracing configuration
/// (`Session::builder().tracing(TraceConfig::default())`).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Bounded capacity of each thread's span buffer. Once a thread has
    /// recorded this many spans the rest are dropped (and counted) instead
    /// of reallocating or overwriting — the bounded-drop policy.
    pub capacity_per_thread: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 64Ki spans × ~48 B ≈ 3 MiB per thread: ample for the example
        // datasets while keeping a runaway run bounded.
        TraceConfig {
            capacity_per_thread: 65_536,
        }
    }
}

/// A finished recording: every captured span plus the exact number that
/// did not fit.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Captured spans, sorted by start time.
    pub spans: Vec<SpanEvent>,
    /// Spans dropped because a thread buffer was full.
    pub dropped: u64,
}

impl Trace {
    /// Number of captured spans of `kind`.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }
}

/// A bounded single-writer span buffer. Only the owning thread writes
/// (append-only, no wraparound); [`finish_recording`] reads it after
/// observing `len` with `Acquire`, which synchronises with the writer's
/// `Release` bump — every slot below the observed length is fully written.
struct ThreadBuf {
    slots: Box<[UnsafeCell<Option<SpanEvent>>]>,
    len: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: the only mutation is `push` on the owning thread; concurrent
// readers go through `drain_into`, which reads exclusively slots published
// by the Release/Acquire handshake on `len` (write-once, never recycled).
unsafe impl Sync for ThreadBuf {}
unsafe impl Send for ThreadBuf {}

impl ThreadBuf {
    fn new(capacity: usize) -> ThreadBuf {
        ThreadBuf {
            slots: (0..capacity.max(1))
                .map(|_| UnsafeCell::new(None))
                .collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event, or counts a drop when full. Must only be called
    /// by the buffer's owning thread.
    fn push(&self, event: SpanEvent) {
        // ordering: Relaxed — single writer; only this thread updates len.
        let len = self.len.load(Ordering::Relaxed);
        if len >= self.slots.len() {
            // ordering: Relaxed — a monotone statistic, read after the
            // recording is quiesced.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot `len` is unpublished (readers stop at the Acquire-
        // loaded length) and this thread is the only writer.
        unsafe {
            *self.slots[len].get() = Some(event);
        }
        // ordering: Release — publishes the slot write above to any reader
        // that Acquire-loads the new length.
        self.len.store(len + 1, Ordering::Release);
    }

    fn drain_into(&self, out: &mut Vec<SpanEvent>) -> u64 {
        // ordering: Acquire — pairs with the Release store in `push`; all
        // slots below `len` are fully initialised.
        let len = self.len.load(Ordering::Acquire).min(self.slots.len());
        for slot in &self.slots[..len] {
            // SAFETY: published slots are write-once; no writer touches
            // them again, so a shared read is race-free.
            if let Some(event) = unsafe { &*slot.get() } {
                out.push(*event);
            }
        }
        // ordering: Relaxed — see `push`; the writer thread has quiesced
        // (or its late drops are an acceptable undercount for one event).
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Whether a recording is active. The *only* state the disabled hot path
/// touches.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped by every [`start_recording`]; threads compare it against their
/// cached generation to re-register their buffer per recording.
static GENERATION: AtomicU64 = AtomicU64::new(0);

struct Recorder {
    bufs: Vec<Arc<ThreadBuf>>,
    capacity: usize,
    generation: u64,
}

static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    bufs: Vec::new(),
    capacity: 0,
    generation: 0,
});

/// The process trace epoch: all span timestamps count µs from here.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

thread_local! {
    /// This thread's buffer for the current recording generation.
    static LOCAL: RefCell<Option<(u64, u32, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
    /// Machine lane for Chrome-trace `pid` grouping (see [`set_lane`]).
    static LANE: Cell<u32> = const { Cell::new(0) };
}

/// Starts the process-wide recording. Returns `false` (and records
/// nothing) when another recording is already active — the caller's run
/// simply proceeds untraced.
pub fn start_recording(config: &TraceConfig) -> bool {
    let mut rec = RECORDER.lock();
    // ordering: Relaxed — the recorder lock already serialises start/finish;
    // the flag is only read lock-free by span sites.
    if ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    epoch(); // Pin the epoch before the first span can observe it.
    rec.bufs.clear();
    rec.capacity = config.capacity_per_thread;
    rec.generation += 1;
    // ordering: Release — a thread that sees the new generation must also
    // see the recorder state written above when it takes the lock.
    GENERATION.store(rec.generation, Ordering::Release);
    // ordering: Release — span sites that observe the flag must observe
    // the generation bump (paired with the Acquire load in `record`).
    ENABLED.store(true, Ordering::Release);
    true
}

/// Stops the recording and returns everything captured. Spans still open
/// on other threads when this is called are lost (not counted as drops);
/// the `Session` integration only finishes after its workers have joined.
pub fn finish_recording() -> Trace {
    let rec = RECORDER.lock();
    // ordering: Release — stops new spans; stragglers that raced past the
    // flag at most write into buffers we are about to drain.
    ENABLED.store(false, Ordering::Release);
    let mut trace = Trace::default();
    for buf in &rec.bufs {
        trace.dropped += buf.drain_into(&mut trace.spans);
    }
    trace
        .spans
        .sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
    trace
}

/// True while a recording is active.
pub fn recording_enabled() -> bool {
    // ordering: Relaxed — monitoring hint only.
    ENABLED.load(Ordering::Relaxed)
}

/// Tags the calling thread with a machine lane: its spans render under
/// `pid = machine` in the Chrome trace, so multi-machine runs read as one
/// timeline per machine. Engine workers call this once at startup.
pub fn set_lane(machine: u32) {
    LANE.with(|lane| lane.set(machine));
}

fn record(kind: SpanKind, start_us: u64, arg: u64) {
    let end_us = now_us();
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        // ordering: Acquire — pairs with the Release store in
        // `start_recording`: seeing a new generation implies the recorder
        // state behind the lock is initialised for it.
        let generation = GENERATION.load(Ordering::Acquire);
        if local.as_ref().map(|(g, _, _)| *g) != Some(generation) {
            let mut rec = RECORDER.lock();
            // ordering: Relaxed — double-check under the lock: the
            // recording may have finished while we waited.
            if !ENABLED.load(Ordering::Relaxed) || rec.generation != generation {
                return;
            }
            let buf = Arc::new(ThreadBuf::new(rec.capacity));
            let tid = rec.bufs.len() as u32;
            rec.bufs.push(buf.clone());
            *local = Some((generation, tid, buf));
        }
        let (_, tid, buf) = local.as_ref().expect("registered above");
        buf.push(SpanEvent {
            kind,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            lane: LANE.with(|lane| lane.get()),
            tid: *tid,
            arg,
        });
    });
}

/// An open span; records one [`SpanEvent`] when dropped (RAII). Nested
/// guards therefore emit children before their parent, and the exporters
/// recover the hierarchy from interval containment per thread.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    kind: SpanKind,
    start_us: u64,
    arg: u64,
    armed: bool,
}

impl SpanGuard {
    /// Replaces the kind-specific payload recorded at close.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// Disarms the guard: nothing is recorded at drop. For speculative
    /// spans (e.g. a steal sweep that turns out empty-handed).
    pub fn cancel(&mut self) {
        self.armed = false;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(self.kind, self.start_us, self.arg);
        }
    }
}

/// Opens a span of `kind`. When no recording is active this is one relaxed
/// load and a branch.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_with(kind, 0)
}

/// Opens a span of `kind` carrying a payload (root vertex, task id, …).
#[inline]
pub fn span_with(kind: SpanKind, arg: u64) -> SpanGuard {
    // ordering: Relaxed — the zero-cost disabled check; enabling mid-span
    // merely loses that span.
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            kind,
            start_us: 0,
            arg,
            armed: false,
        };
    }
    SpanGuard {
        kind,
        start_us: now_us(),
        arg,
        armed: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global, so tests that record must not
    /// overlap; `cargo test` runs them on parallel threads.
    pub(crate) static RECORDING_TESTS: Mutex<()> = Mutex::new(());

    /// Spin until the µs clock advances, so nested spans opened in a row
    /// get strictly increasing start timestamps.
    fn tick() {
        let t0 = now_us();
        while now_us() == t0 {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = RECORDING_TESTS.lock();
        assert!(!recording_enabled());
        drop(span(SpanKind::MinePhase));
        assert!(start_recording(&TraceConfig::default()));
        let trace = finish_recording();
        assert!(trace.spans.is_empty(), "span before start must be lost");
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn parent_closes_after_children_and_contains_them() {
        let _serial = RECORDING_TESTS.lock();
        assert!(start_recording(&TraceConfig::default()));
        {
            let _run = span(SpanKind::Run);
            tick();
            {
                let _task = span_with(SpanKind::Task, 7);
                tick();
                let _phase = span(SpanKind::MinePhase);
                tick();
                // Drop order: phase, task, then run.
            }
        }
        let trace = finish_recording();
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.spans.len(), 3);
        // Sorted by start time: run opened first, phase last.
        assert_eq!(trace.spans[0].kind, SpanKind::Run);
        assert_eq!(trace.spans[1].kind, SpanKind::Task);
        assert_eq!(trace.spans[1].arg, 7);
        assert_eq!(trace.spans[2].kind, SpanKind::MinePhase);
        // The parent interval contains each child's.
        let run = trace.spans[0];
        for child in &trace.spans[1..] {
            assert!(run.start_us <= child.start_us);
            assert!(child.end_us() <= run.end_us());
        }
        // RAII: children were *recorded* before the parent (same thread,
        // completion order), which is what makes containment recovery
        // well-defined.
        assert_eq!(trace.spans[1].tid, run.tid);
    }

    #[test]
    fn overflow_is_dropped_and_counted_exactly() {
        let _serial = RECORDING_TESTS.lock();
        assert!(start_recording(&TraceConfig {
            capacity_per_thread: 4,
        }));
        for i in 0..10u64 {
            drop(span_with(SpanKind::Steal, i));
        }
        let trace = finish_recording();
        assert_eq!(trace.spans.len(), 4, "bounded buffer must not grow");
        assert_eq!(trace.dropped, 6, "every overflow event must be counted");
        // The kept spans are the oldest (no wraparound/overwrite).
        let args: Vec<u64> = trace.spans.iter().map(|s| s.arg).collect();
        assert_eq!(args, vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_recordings_are_rejected() {
        let _serial = RECORDING_TESTS.lock();
        assert!(start_recording(&TraceConfig::default()));
        assert!(
            !start_recording(&TraceConfig::default()),
            "second recording must be refused while one is active"
        );
        let _ = finish_recording();
    }

    #[test]
    fn threads_get_distinct_tids_and_lanes() {
        let _serial = RECORDING_TESTS.lock();
        assert!(start_recording(&TraceConfig::default()));
        drop(span(SpanKind::Run));
        let worker = qcm_sync::thread::spawn(|| {
            set_lane(3);
            drop(span(SpanKind::Task));
        });
        worker.join().unwrap();
        let trace = finish_recording();
        assert_eq!(trace.spans.len(), 2);
        let run = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Run)
            .unwrap();
        let task = trace
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Task)
            .unwrap();
        assert_ne!(run.tid, task.tid);
        assert_eq!(task.lane, 3);
    }
}
