//! Chrome trace-event JSON exporter.
//!
//! Renders a [`Trace`] as the `traceEvents` JSON consumed by Perfetto and
//! `about://tracing`: one complete (`"ph":"X"`) event per span, with the
//! simulated machine as the process lane (`pid`) and the recording-local
//! thread id as `tid`, plus metadata events naming each machine lane. The
//! output is plain ASCII built by hand (span names are fixed identifiers,
//! values are integers), so no JSON library is needed to *write* it; tests
//! parse it back with the bench suite's hand-rolled `json` module.

use crate::span::Trace;
use std::fmt::Write as _;

/// Renders the trace as a Chrome trace-event JSON document.
pub fn render(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Name each machine lane once so Perfetto shows "machine N" headers.
    let mut lanes: Vec<u32> = trace.spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in lanes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{lane},\"tid\":0,\
             \"args\":{{\"name\":\"machine {lane}\"}}}}"
        );
    }
    for span in &trace.spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\
             \"tid\":{},\"args\":{{\"arg\":{}}}}}",
            span.kind.as_str(),
            span.start_us,
            span.dur_us,
            span.lane,
            span.tid,
            span.arg
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}}}",
        trace.dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanEvent, SpanKind};

    #[test]
    fn renders_lanes_and_complete_events() {
        let trace = Trace {
            spans: vec![
                SpanEvent {
                    kind: SpanKind::Run,
                    start_us: 0,
                    dur_us: 100,
                    lane: 0,
                    tid: 0,
                    arg: 0,
                },
                SpanEvent {
                    kind: SpanKind::Task,
                    start_us: 10,
                    dur_us: 20,
                    lane: 1,
                    tid: 2,
                    arg: 9,
                },
            ],
            dropped: 0,
        };
        let text = render(&trace);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"name\":\"machine 1\""));
        assert!(text.contains(
            "{\"name\":\"task\",\"ph\":\"X\",\"ts\":10,\"dur\":20,\"pid\":1,\
             \"tid\":2,\"args\":{\"arg\":9}}"
        ));
        assert!(text.ends_with("\"otherData\":{\"dropped_events\":0}}"));
    }
}
