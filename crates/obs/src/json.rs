//! Minimal JSON support for the workspace's machine-readable surfaces.
//!
//! The workspace vendors offline stand-ins instead of crates.io dependencies,
//! so there is no serde; the benchmark pipeline (`BENCH_*.json`,
//! `bench/baseline.json`) and the `qcm-http` wire format use this hand-rolled
//! value type instead. It covers exactly the JSON those surfaces emit and
//! accept (objects, arrays, strings, finite numbers, booleans, null) — enough
//! for the CI regression gate to parse any file the suite writes, and for the
//! HTTP listener to parse any request body a client sends.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the pipeline's counters fit).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. `BTreeMap` keeps serialisation deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the full input must be one value plus
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Serialises the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(x) => write_number(*x, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Number(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Number(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Number(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(x: &str) -> Json {
        Json::String(x.to_string())
    }
}

impl From<String> for Json {
    fn from(x: String) -> Json {
        Json::String(x)
    }
}

/// Convenience constructor for object literals.
pub fn object(entries: Vec<(&str, Json)>) -> Json {
    Json::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            what as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs are not needed by the pipeline's
                        // ASCII output; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is valid UTF-8 by
                // construction of `&str`).
                let text = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = text.chars().next().ok_or("empty char")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            other => return Err(format!("expected ',' or ']' (found {other:?})")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            other => return Err(format!("expected ',' or '}}' (found {other:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_pipeline_shapes() {
        let text = r#"{
            "schema": "qcm-bench/v1",
            "quick": true,
            "calibration_ms": 12.5,
            "workloads": [
                {"name": "edge_query_hubs", "wall_ms": 80.25, "edge_queries": 123456,
                 "speedup": 1.75, "note": "a \"quoted\" name", "missing": null}
            ]
        }"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("qcm-bench/v1")
        );
        assert_eq!(parsed.get("quick").and_then(Json::as_bool), Some(true));
        let workloads = parsed.get("workloads").and_then(Json::as_array).unwrap();
        assert_eq!(workloads.len(), 1);
        assert_eq!(
            workloads[0].get("edge_queries").and_then(Json::as_f64),
            Some(123_456.0)
        );
        assert_eq!(
            workloads[0].get("note").and_then(Json::as_str),
            Some("a \"quoted\" name")
        );
        assert_eq!(workloads[0].get("missing"), Some(&Json::Null));
        // Render → parse → identical tree.
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        let v = object(vec![("count", Json::from(42u64)), ("x", Json::from(1.5))]);
        assert_eq!(v.render(), "{\"count\":42,\"x\":1.5}");
    }
}
