//! The unified metrics registry.
//!
//! One typed `Counter` / `Gauge` / `Histogram` API with labels, behind
//! which the previously disjoint telemetry surfaces — `EngineMetrics`,
//! `ServiceMetrics` and the striped graph perf counters — publish their
//! snapshots (each owning crate provides a `publish(&Registry)` bridge).
//! The [Prometheus exporter](crate::prometheus) renders a registry as text
//! exposition; handles are cheap `Arc` clones, safe to update from any
//! thread.

use qcm_sync::atomic::{AtomicU64, Ordering};
use qcm_sync::{Arc, Mutex};
use std::collections::BTreeMap;

/// What a metric family measures (drives the Prometheus `# TYPE` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution over fixed buckets.
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        // ordering: Relaxed — independent statistic, no data published
        // through it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the total — for snapshot bridges that publish an
    /// externally-accumulated monotone count (e.g. `EngineMetrics`).
    pub fn set_total(&self, total: u64) {
        // ordering: Relaxed — see `inc_by`.
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — see `inc_by`.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (an `f64` stored as bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, value: f64) {
        // ordering: Relaxed — independent statistic.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — independent statistic.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
pub(crate) struct HistCore {
    /// Upper bounds of the finite buckets (ascending); `+Inf` is implicit.
    pub(crate) bounds: Vec<f64>,
    /// Cumulative-later counts per finite bucket (non-cumulative here;
    /// the exporter accumulates).
    pub(crate) counts: Vec<AtomicU64>,
    /// (sum, count) of all observations; a mutex because `f64` addition
    /// has no atomic — exposition-path cost only.
    pub(crate) sum_count: Mutex<(f64, u64)>,
}

/// A histogram handle with fixed buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        // ordering: Relaxed — independent statistic.
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut sc = self.0.sum_count.lock();
        sc.0 += value;
        sc.1 += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.sum_count.lock().1
    }
}

#[derive(Debug)]
enum Cell {
    Num(Arc<AtomicU64>),
    Hist(Arc<HistCore>),
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: &'static str,
    pub(crate) kind: MetricKind,
    /// Samples keyed by their rendered label set (`""` for none); the
    /// `BTreeMap` keeps exposition deterministic.
    samples: BTreeMap<String, Cell>,
}

/// The metric store. Registering the same (name, labels) twice returns a
/// handle to the same underlying cell, so bridges are idempotent.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Renders a label set in Prometheus syntax: `{k="v",…}` or `""`.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn num_cell(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicU64> {
        let mut families = self.families.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            samples: BTreeMap::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name} registered twice with different kinds"
        );
        match family
            .samples
            .entry(label_key(labels))
            .or_insert_with(|| Cell::Num(Arc::new(AtomicU64::new(0))))
        {
            Cell::Num(cell) => cell.clone(),
            Cell::Hist(_) => unreachable!("kind check above rejects mixing"),
        }
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labelled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        Counter(self.num_cell(name, help, MetricKind::Counter, labels))
    }

    /// Registers (or finds) an unlabelled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labelled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Gauge {
        Gauge(self.num_cell(name, help, MetricKind::Gauge, labels))
    }

    /// Registers (or finds) a histogram with the given finite bucket
    /// bounds (ascending; `+Inf` is implicit).
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut families = self.families.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: MetricKind::Histogram,
            samples: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Histogram,
            "metric {name} registered twice with different kinds"
        );
        match family.samples.entry(label_key(labels)).or_insert_with(|| {
            Cell::Hist(Arc::new(HistCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_count: Mutex::new((0.0, 0)),
            }))
        }) {
            Cell::Hist(core) => Histogram(core.clone()),
            Cell::Num(_) => unreachable!("kind check above rejects mixing"),
        }
    }

    /// A deterministic snapshot for the exporters.
    pub(crate) fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = self.families.lock();
        families
            .iter()
            .map(|(name, family)| {
                let samples = family
                    .samples
                    .iter()
                    .map(|(labels, cell)| {
                        let value = match cell {
                            // ordering: Relaxed — exposition snapshot;
                            // mutually-skewed counters are acceptable.
                            Cell::Num(v) => match family.kind {
                                MetricKind::Counter => Value::Int(v.load(Ordering::Relaxed)),
                                _ => Value::Float(f64::from_bits(v.load(Ordering::Relaxed))),
                            },
                            Cell::Hist(core) => {
                                let sc = core.sum_count.lock();
                                Value::Hist {
                                    bounds: core.bounds.clone(),
                                    counts: core
                                        .counts
                                        .iter()
                                        // ordering: Relaxed — see above.
                                        .map(|c| c.load(Ordering::Relaxed))
                                        .collect(),
                                    sum: sc.0,
                                    count: sc.1,
                                }
                            }
                        };
                        (labels.clone(), value)
                    })
                    .collect();
                (name.to_string(), family.help, family.kind, samples)
            })
            .collect()
    }
}

/// One exported family: `(name, help, kind, [(label_key, value)])`.
pub(crate) type FamilySnapshot = (String, &'static str, MetricKind, Vec<(String, Value)>);

/// A sampled metric value (exporter-side view).
#[derive(Clone, Debug)]
pub(crate) enum Value {
    Int(u64),
    Float(f64),
    Hist {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_typed() {
        let reg = Registry::new();
        let a = reg.counter("qcm_test_total", "help");
        let b = reg.counter("qcm_test_total", "help");
        a.inc_by(3);
        b.inc();
        assert_eq!(a.get(), 4, "same (name, labels) must share one cell");

        let g = reg.gauge_with("qcm_depth", "help", &[("machine", "0")]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        let other = reg.gauge_with("qcm_depth", "help", &[("machine", "1")]);
        assert_eq!(other.get(), 0.0, "distinct labels are distinct cells");
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram_with("qcm_lat", "help", &[], &[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        let snap = reg.snapshot();
        let (_, _, kind, samples) = &snap[0];
        assert_eq!(*kind, MetricKind::Histogram);
        match &samples[0].1 {
            Value::Hist {
                counts, sum, count, ..
            } => {
                assert_eq!(counts, &[2, 1, 1], "per-bucket (non-cumulative)");
                assert_eq!(*count, 4);
                assert!((sum - 56.2).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_is_a_programmer_error() {
        let reg = Registry::new();
        let _ = reg.counter("qcm_x", "help");
        let _ = reg.gauge("qcm_x", "help");
    }
}
