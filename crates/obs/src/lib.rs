//! `qcm-obs`: the workspace observability layer.
//!
//! One crate unifies what used to be four disjoint telemetry surfaces
//! (`EngineMetrics`, `ServiceMetrics`, the striped graph perf counters and
//! the transport fault-sim event log):
//!
//! * **[Spans](mod@span)** — hierarchical `run → decompose → task →
//!   mine_phase → steal/pull/spill` intervals recorded into bounded
//!   per-thread single-writer buffers with an exact drop counter. Enabled
//!   per `Session` via `Session::builder().tracing(TraceConfig)`; with no
//!   recording active every span site costs one relaxed load.
//! * **[Registry](registry)** — typed [`Counter`] / [`Gauge`] /
//!   [`Histogram`] handles with labels; the metric structs of the engine,
//!   service and graph crates publish their snapshots into it.
//! * **[Exporters](chrome)** — Chrome trace-event JSON
//!   ([`chrome::render`], loadable in Perfetto with one lane per simulated
//!   machine) and Prometheus text exposition ([`prometheus::render`] with
//!   a CI-grade well-formedness checker, [`prometheus::check_text`]).
//! * **[Clock facade](clock)** — the single `Instant` source for the
//!   mining crates (`qcm-lint` bans `std::time::Instant` elsewhere).
//!
//! Like the rest of the workspace this crate is hand-rolled over the
//! `qcm-sync` facade — no external dependencies.

pub mod chrome;
pub mod clock;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod span;
pub mod summary;

pub use json::Json;
pub use registry::{Counter, Gauge, Histogram, MetricKind, Registry};
pub use span::{
    finish_recording, recording_enabled, set_lane, span, span_with, start_recording, SpanEvent,
    SpanGuard, SpanKind, Trace, TraceConfig,
};
pub use summary::self_time_by_kind;
