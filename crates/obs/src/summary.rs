//! Per-phase self-time summaries over a recorded trace.
//!
//! *Self time* of a span is its duration minus the durations of its direct
//! children (spans of the same thread nested inside it), so summing self
//! times per [`SpanKind`] attributes every traced microsecond to exactly
//! one phase. The bench suite attaches this summary to each BENCH row.

use crate::span::{SpanEvent, SpanKind, Trace};
use std::collections::BTreeMap;

/// Total self time per span kind, in µs, keyed by [`SpanKind::as_str`].
/// Kinds with no spans are absent.
pub fn self_time_by_kind(trace: &Trace) -> BTreeMap<&'static str, u64> {
    let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut tids: Vec<u32> = trace.spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut spans: Vec<&SpanEvent> = trace.spans.iter().filter(|s| s.tid == tid).collect();
        // Parents sort before their children: earlier start first, and on
        // a tie the longer (enclosing) span first.
        spans.sort_by_key(|s| (s.start_us, std::cmp::Reverse(s.dur_us)));
        // Containment stack: (end_us, kind, dur_us, direct-child time).
        let mut stack: Vec<(u64, SpanKind, u64, u64)> = Vec::new();
        let close = |stack: &mut Vec<(u64, SpanKind, u64, u64)>,
                     totals: &mut BTreeMap<&'static str, u64>| {
            let (_, kind, dur, child) = stack.pop().expect("caller checks non-empty");
            *totals.entry(kind.as_str()).or_default() += dur.saturating_sub(child);
        };
        for span in spans {
            while stack.last().is_some_and(|&(end, ..)| end <= span.start_us) {
                close(&mut stack, &mut totals);
            }
            if let Some(top) = stack.last_mut() {
                // Direct child: grandchildren are subtracted inside the
                // child's own frame, not here.
                top.3 += span.dur_us;
            }
            stack.push((span.end_us(), span.kind, span.dur_us, 0));
        }
        while !stack.is_empty() {
            close(&mut stack, &mut totals);
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, start_us: u64, dur_us: u64, tid: u32) -> SpanEvent {
        SpanEvent {
            kind,
            start_us,
            dur_us,
            lane: 0,
            tid,
            arg: 0,
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        // run [0, 100) ⊃ task [10, 60) ⊃ mine_phase [20, 50); a second
        // thread contributes a flat steal [0, 5).
        let trace = Trace {
            spans: vec![
                ev(SpanKind::Run, 0, 100, 0),
                ev(SpanKind::Task, 10, 50, 0),
                ev(SpanKind::MinePhase, 20, 30, 0),
                ev(SpanKind::Steal, 0, 5, 1),
            ],
            dropped: 0,
        };
        let totals = self_time_by_kind(&trace);
        assert_eq!(
            totals["run"], 50,
            "100 − task(50); grandchild not double-counted"
        );
        assert_eq!(totals["task"], 20, "50 − mine_phase(30)");
        assert_eq!(totals["mine_phase"], 30);
        assert_eq!(totals["steal"], 5);
        let attributed: u64 = totals.values().sum();
        assert_eq!(
            attributed, 105,
            "every traced µs lands in exactly one phase"
        );
    }

    #[test]
    fn siblings_do_not_nest() {
        // Two back-to-back tasks under one run; the boundary task starting
        // exactly at the first one's end must not count as its child.
        let trace = Trace {
            spans: vec![
                ev(SpanKind::Run, 0, 100, 0),
                ev(SpanKind::Task, 0, 40, 0),
                ev(SpanKind::Task, 40, 40, 0),
            ],
            dropped: 0,
        };
        let totals = self_time_by_kind(&trace);
        assert_eq!(totals["task"], 80);
        assert_eq!(totals["run"], 20);
    }
}
